//! Umbrella crate for the AdaptivFloat reproduction workspace.
//!
//! Re-exports the member crates so that the top-level `examples/` and
//! `tests/` can reach every subsystem through one dependency:
//!
//! * [`adaptivfloat`] — the number formats and quantization algorithms
//!   (the paper's primary contribution).
//! * [`af_tensor`] — the dense tensor substrate.
//! * [`af_nn`] — autograd, layers, and quantization-aware training.
//! * [`af_models`] — the model zoo, synthetic datasets, and task metrics.
//! * [`af_hw`] — the INT / HFINT processing-element and accelerator models.
//!
//! # Examples
//!
//! ```
//! use adaptivfloat_repro::adaptivfloat::AdaptivFloat;
//! use adaptivfloat_repro::adaptivfloat::NumberFormat;
//!
//! let fmt = AdaptivFloat::new(8, 3)?;
//! let quantized = fmt.quantize_slice(&[0.1, -2.5, 7.9]);
//! assert_eq!(quantized.len(), 3);
//! # Ok::<(), adaptivfloat_repro::adaptivfloat::FormatError>(())
//! ```

pub use adaptivfloat;
pub use af_hw;
pub use af_models;
pub use af_nn;
pub use af_tensor;
