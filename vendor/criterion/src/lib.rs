//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses: `Criterion`, `criterion_group!`/`criterion_main!`,
//! `bench_function`, benchmark groups with `Throughput`, and
//! `Bencher::iter`.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This harness measures wall-clock medians over
//! `sample_size` samples (each auto-calibrated to a target batch time) and
//! prints one line per bench. When the `AF_BENCH_JSON` environment
//! variable names a file, a JSON object per bench is appended to it —
//! `scripts/bench_snapshot.sh` builds `BENCH_kernels.json` from those
//! records.
//!
//! Command-line behavior matches what cargo passes to `harness = false`
//! targets: `--bench` is accepted and ignored, `--test` switches to a
//! one-iteration smoke run (so `cargo test --benches` stays fast), and a
//! positional argument filters benches by substring.

#![deny(missing_docs)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement batch.
const TARGET_BATCH: Duration = Duration::from_millis(8);

/// The bench harness configuration and registry.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
            smoke: false,
        }
    }
}

impl Criterion {
    /// Set how many timed samples each bench collects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Apply command-line arguments (bench filter, `--test` smoke mode).
    /// Called by the `criterion_group!` expansion.
    pub fn configure_from_args(&mut self) {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => {}
                "--test" => self.smoke = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_bench(name.to_string(), None, f);
        self
    }

    /// Open a named group of benchmarks sharing a throughput setting.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_bench<F>(&mut self, name: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.smoke {
            f(&mut b);
            println!("{name}: ok (smoke)");
            return;
        }
        // Calibrate: grow the batch size until one batch takes long
        // enough to time reliably.
        loop {
            f(&mut b);
            if b.elapsed >= TARGET_BATCH / 2 || b.iters >= 1 << 28 {
                break;
            }
            let estimate =
                (TARGET_BATCH.as_nanos() * b.iters as u128 / b.elapsed.as_nanos().max(1)) as u64;
            b.iters = estimate.clamp(b.iters * 2, b.iters * 16);
        }
        let iters = b.iters;
        let mut samples_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let median = samples_ns[samples_ns.len() / 2];
        let mut line = format!(
            "{name:<52} time: [{}]  ({} samples x {iters} iters)",
            fmt_ns(median),
            self.sample_size
        );
        let mut elements = None;
        if let Some(Throughput::Elements(n)) = throughput {
            elements = Some(n);
            line.push_str(&format!("  thrpt: {:.3} ns/elem", median / n as f64));
        }
        println!("{line}");
        write_json_record(&name, median, elements, self.sample_size, iters);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

fn write_json_record(
    name: &str,
    median_ns: f64,
    elements: Option<u64>,
    samples: usize,
    iters: u64,
) {
    let Ok(path) = std::env::var("AF_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let ns_per_elem = elements
        .map(|n| format!("{:.6}", median_ns / n as f64))
        .unwrap_or_else(|| "null".to_string());
    let elements = elements
        .map(|n| n.to_string())
        .unwrap_or_else(|| "null".to_string());
    let record = format!(
        "{{\"name\":\"{}\",\"median_ns\":{:.3},\"elements\":{},\"ns_per_elem\":{},\"samples\":{},\"iters_per_sample\":{}}}\n",
        name.replace('"', "'"),
        median_ns,
        elements,
        ns_per_elem,
        samples,
        iters
    );
    if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
        let _ = file.write_all(record.as_bytes());
    }
}

/// A group of related benchmarks (shared name prefix and throughput).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work volume used to report throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count for the remaining benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        let throughput = self.throughput;
        self.criterion.run_bench(name, throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        let throughput = self.throughput;
        self.criterion.run_bench(name, throughput, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier of one bench inside a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work volume per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a bench group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
