//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, numeric range
//! strategies, and `prop::collection::vec`.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This implementation keeps the same test-source
//! syntax and generates random cases deterministically (seeded from the
//! test's module path and name), but does **not** shrink failing inputs —
//! the failing case is printed verbatim instead. Case count defaults to
//! 64 and can be raised with the `PROPTEST_CASES` environment variable.

#![deny(missing_docs)]

pub mod strategy;

/// Strategy combinators grouped under the `prop::` path proptest users
/// know (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size, `lo..hi`, or
    /// `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_incl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The per-test random source and its seeding.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from a test's fully qualified name so every property test
        /// gets a stable, distinct stream.
        pub fn seed_from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// How one generated case ended short of success.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert!`-family failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejection: the inputs don't apply; skip the case.
        Reject,
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests.
///
/// Each function body runs once per generated case; `prop_assert!`-family
/// macros abort the case with a message instead of panicking directly so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::seed_from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut case = 0;
                let mut rejected = 0usize;
                while case < cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            // Mirror proptest's global rejection cap so a
                            // too-strict prop_assume! fails loudly instead
                            // of spinning forever.
                            assert!(
                                rejected < 16 * cases.max(64),
                                "property `{}`: too many prop_assume! rejections ({})",
                                stringify!($name),
                                rejected,
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}\ninputs: {:#?}",
                                stringify!($name),
                                case + 1,
                                cases,
                                message,
                                ($(&$arg,)+),
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    lhs,
                    rhs,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    lhs,
                    rhs,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}
