//! The [`Strategy`] trait and the numeric range strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
