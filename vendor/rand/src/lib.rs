//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `Rng::gen_range` / `gen_bool`, `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched. This crate keeps the exact
//! call-site surface (trait names, module paths, method signatures) while
//! backing `StdRng` with xoshiro256++ seeded through SplitMix64. Streams
//! differ from upstream `rand`'s ChaCha-based `StdRng`, but every consumer
//! in this workspace only relies on determinism-under-seed and uniformity,
//! not on specific values.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform distribution over a bounded range.
///
/// The blanket `SampleRange` impls below tie the range's element type to
/// the sampled type, which is what lets call sites like
/// `let x: f32 = rng.gen_range(-1.0..1.0);` infer the literal type from
/// surrounding context (the same inference shape as upstream `rand`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `lo..hi`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        loop {
            // 24 random bits give every representable step of [0, 1).
            let frac = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            let v = lo + (hi - lo) * frac;
            if v < hi {
                return v;
            }
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f32, hi: f32, rng: &mut R) -> f32 {
        assert!(lo <= hi, "cannot sample empty range");
        let frac = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        (lo + (hi - lo) * frac).clamp(lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        loop {
            let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = lo + (hi - lo) * frac;
            if v < hi {
                return v;
            }
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample empty range");
        let frac = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        (lo + (hi - lo) * frac).clamp(lo, hi)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&i));
            let j = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&j));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
