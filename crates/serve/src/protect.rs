//! The protected weight store: each registered variant's quantized
//! weight codes held behind SEC-DED parity
//! ([`af_resilience::ProtectedCodes`]), with the clean f32 master copy
//! retained for rebuilds.
//!
//! The serving snapshot is always **built from what the storage
//! decodes to** (never from a separate quantization pass), so after a
//! scrub repairs a single-bit upset the storage decodes to exactly the
//! weights already being served — responses stay bit-identical. When a
//! double-bit upset makes a word uncorrectable, the owner re-encodes
//! the affected storage from the master copy
//! ([`rebuild_from_master`](ProtectedWeights::rebuild_from_master)) and
//! hot-swaps a fresh snapshot.

use adaptivfloat::{DecodePolicy, FormatError, FormatKind};
use af_models::FrozenMlp;
use af_resilience::{inject_protected_bits, EccStats, FaultMap, ProtectedCodes, StorageCodec};
use af_resilience::{ScrubReport, CODEWORD_BITS};

/// One layer's protected storage: the fitted codec, the SEC-DED
/// protected codes, and the retained f32 master copy.
#[derive(Debug, Clone)]
struct ProtectedLayer {
    codec: StorageCodec,
    codes: ProtectedCodes,
    master: Vec<f32>,
}

/// SEC-DED protected storage for every weight tensor of one variant.
#[derive(Debug, Clone)]
pub struct ProtectedWeights {
    format_label: String,
    layers: Vec<ProtectedLayer>,
    rebuilds: u64,
}

impl ProtectedWeights {
    /// Encode `model`'s weight tensors through `kind` at word size `n`
    /// into protected storage, retaining each tensor's f32 master copy.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the format cannot be
    /// built at `n`.
    pub fn build(
        model: &FrozenMlp,
        kind: FormatKind,
        n: u32,
    ) -> Result<ProtectedWeights, FormatError> {
        let format_label = format!("{}+secded", kind.build(n)?.name());
        let layers = (0..model.depth())
            .map(|l| {
                let (data, _shape) = model.weight_data(l);
                let codec = StorageCodec::fit(kind, n, data)?;
                Ok(ProtectedLayer {
                    codes: ProtectedCodes::protect(codec.encode_slice(data)),
                    codec,
                    master: data.to_vec(),
                })
            })
            .collect::<Result<Vec<_>, FormatError>>()?;
        Ok(ProtectedWeights {
            format_label,
            layers,
            rebuilds: 0,
        })
    }

    /// The weight-format label served snapshots carry, e.g.
    /// `"AdaptivFloat<8,3>+secded"`.
    pub fn format_label(&self) -> &str {
        &self.format_label
    }

    /// Number of protected weight tensors (model depth).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Raw 64-bit storage words behind layer `l` (each word carries
    /// [`CODEWORD_BITS`]`− 64` parity bits alongside).
    pub fn raw_words(&self, l: usize) -> usize {
        self.layers[l].codes.raw_words()
    }

    /// Total protected storage bits of layer `l` — the element count a
    /// width-1 [`FaultMap`] for [`inject_bits`](Self::inject_bits) must
    /// be sampled over.
    pub fn storage_bits(&self, l: usize) -> usize {
        self.raw_words(l) * CODEWORD_BITS as usize
    }

    /// Times an uncorrectable error forced a re-encode from the master.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Cumulative ECC counters summed over every layer's store.
    pub fn ecc_stats(&self) -> EccStats {
        let mut total = EccStats::default();
        for layer in &self.layers {
            total.absorb(&layer.codes.stats());
        }
        // Every layer is swept in the same pass; report pass count once.
        if let Some(layer) = self.layers.first() {
            total.scrub_passes = layer.codes.stats().scrub_passes;
        }
        total
    }

    /// Decode every layer from (possibly corrupted) storage: single-bit
    /// errors corrected in the read, uncorrectable words passed through
    /// raw, values decoded under the hardened policy. Returns the f32
    /// weights per layer and the aggregate report.
    pub fn decoded_weights(&self) -> (Vec<Vec<f32>>, ScrubReport) {
        let mut total = ScrubReport::default();
        let weights = self
            .layers
            .iter()
            .map(|layer| {
                let (snapshot, report) = layer.codes.decode();
                total.words_scanned += report.words_scanned;
                total.corrected += report.corrected;
                total.uncorrectable += report.uncorrectable;
                let (vals, _) = layer.codec.decode_slice(&snapshot, DecodePolicy::Harden);
                vals
            })
            .collect();
        (weights, total)
    }

    /// Sweep every layer's storage once, repairing correctable errors
    /// in place. Returns the aggregate report; a nonzero
    /// `uncorrectable` means the owner must
    /// [`rebuild_from_master`](Self::rebuild_from_master).
    pub fn scrub(&mut self) -> ScrubReport {
        let mut total = ScrubReport::default();
        for layer in &mut self.layers {
            let report = layer.codes.scrub();
            total.words_scanned += report.words_scanned;
            total.corrected += report.corrected;
            total.uncorrectable += report.uncorrectable;
        }
        total
    }

    /// Re-encode every layer's storage from its retained f32 master
    /// copy — the recovery path for uncorrectable errors. Cumulative
    /// ECC counters carry over (the error history survives the
    /// rebuild); the rebuild counter increments.
    pub fn rebuild_from_master(&mut self) {
        for layer in &mut self.layers {
            // Carry the history: a rebuilt store has seen every error
            // its predecessor counted.
            let stats = layer.codes.stats();
            layer.codes =
                ProtectedCodes::protect(layer.codec.encode_slice(&layer.master)).with_stats(stats);
        }
        self.rebuilds += 1;
    }

    /// Export every layer's storage for persistence: the fitted codec
    /// (whose frozen params a container serializes) and the protected
    /// codes *as stored* — latent single-bit faults and ECC history
    /// included, exactly what a durable store must preserve.
    pub fn export_layers(&self) -> Vec<(StorageCodec, ProtectedCodes)> {
        self.layers
            .iter()
            .map(|l| (l.codec.clone(), l.codes.clone()))
            .collect()
    }

    /// Rebuild a store from persisted parts: one `(codec, codes,
    /// master)` triple per layer, plus the label and rebuild counter the
    /// container preserved. The masters come from the caller's
    /// deterministic re-synthesis — they are not stored on disk.
    pub fn restore(
        format_label: &str,
        rebuilds: u64,
        parts: Vec<(StorageCodec, ProtectedCodes, Vec<f32>)>,
    ) -> ProtectedWeights {
        ProtectedWeights {
            format_label: format_label.to_string(),
            layers: parts
                .into_iter()
                .map(|(codec, codes, master)| ProtectedLayer {
                    codec,
                    codes,
                    master,
                })
                .collect(),
            rebuilds,
        }
    }

    /// Corrupt layer `l`'s protected storage with a width-1 bit-level
    /// fault map (see [`inject_protected_bits`]); the map must cover
    /// [`storage_bits`](Self::storage_bits)`(l)` elements. Returns bits
    /// struck.
    pub fn inject_bits(&mut self, l: usize, map: &FaultMap) -> usize {
        inject_protected_bits(&mut self.layers[l].codes, map)
    }

    /// Flip one raw storage bit of layer `l` (`bit` addresses the
    /// word's 72-bit codeword: 0–63 data, 64–71 parity) — the surgical
    /// fault the e2e tests use.
    pub fn flip_bit(&mut self, l: usize, word: usize, bit: u32) {
        self.layers[l].codes.flip_raw_bit(word, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_models::ModelFamily;

    fn model() -> FrozenMlp {
        FrozenMlp::synthesize(ModelFamily::ResNet, 11, &[10, 16, 4])
    }

    fn store() -> ProtectedWeights {
        ProtectedWeights::build(&model(), FormatKind::AdaptivFloat, 8).unwrap()
    }

    #[test]
    fn build_decodes_cleanly_and_deterministically() {
        let (a, ra) = store().decoded_weights();
        let (b, rb) = store().decoded_weights();
        assert_eq!((ra.corrected, ra.uncorrectable), (0, 0));
        assert_eq!(ra, rb);
        let bits =
            |w: &Vec<Vec<f32>>| -> Vec<u32> { w.iter().flatten().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(store().format_label(), "AdaptivFloat<8,3>+secded");
    }

    #[test]
    fn single_bit_fault_decodes_identically_and_scrubs_away() {
        let clean = store();
        let (want, _) = clean.decoded_weights();
        let mut hit = clean.clone();
        hit.flip_bit(0, 1, 9);
        // The corrected read already matches the clean weights…
        let (got, report) = hit.decoded_weights();
        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrectable, 0);
        let bits =
            |w: &Vec<Vec<f32>>| -> Vec<u32> { w.iter().flatten().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&got), bits(&want));
        // …and after a scrub the storage itself is clean again.
        assert_eq!(hit.scrub().corrected, 1);
        let (after, post) = hit.decoded_weights();
        assert_eq!((post.corrected, post.uncorrectable), (0, 0));
        assert_eq!(bits(&after), bits(&want));
        assert_eq!(hit.ecc_stats().corrected, 1);
    }

    #[test]
    fn double_bit_fault_forces_rebuild() {
        let mut hit = store();
        let (want, _) = hit.decoded_weights();
        hit.flip_bit(1, 0, 3);
        hit.flip_bit(1, 0, 40);
        let report = hit.scrub();
        assert_eq!(report.uncorrectable, 1);
        assert_eq!(hit.rebuilds(), 0);
        hit.rebuild_from_master();
        assert_eq!(hit.rebuilds(), 1);
        let (after, post) = hit.decoded_weights();
        assert_eq!((post.corrected, post.uncorrectable), (0, 0));
        let bits =
            |w: &Vec<Vec<f32>>| -> Vec<u32> { w.iter().flatten().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&after), bits(&want));
        // Error history survives the rebuild.
        assert_eq!(hit.ecc_stats().detected_uncorrectable, 1);
    }
}
