//! # af-serve — the quantized inference serving engine
//!
//! Turns the workspace's quantization kernels, LUT codebooks, and
//! scoped-thread runtime into an end-to-end inference stack, built only
//! on `std` (`TcpListener`, threads, channels). Four layers:
//!
//! 1. **Model registry** ([`registry`]) — loads [`af_models::FrozenMlp`]
//!    snapshots, quantizes their weights once per `(FormatKind, n)`
//!    variant at registration, calibrates activation ranges, pre-warms
//!    the LUT codebooks (`adaptivfloat::lut::prewarm`), and hands out
//!    immutable `Arc`-shared snapshots — hot-swapping a variant never
//!    blocks an in-flight request.
//! 2. **Dynamic micro-batching** ([`batcher`], [`queue`]) — requests
//!    accumulate per variant until `max_batch` or a `max_wait` deadline
//!    fires, then evaluate as one blocked-matmul pass. Invariant:
//!    batched outputs are **bit-identical** to single-request
//!    evaluation (row-independent ascending-k accumulation; pinned by
//!    `af-models/tests/frozen_batch.rs` and `tests/serve_e2e.rs`).
//! 3. **Admission & backpressure** — each variant owns a bounded queue;
//!    a full queue sheds load with an explicit `429` instead of growing
//!    latency without bound, and per-request deadlines turn into `504`s
//!    rather than zombie work.
//! 4. **Protocol** ([`http`], [`server`], [`client`]) — a minimal
//!    HTTP/1.1 handler (`GET /healthz`, `GET /stats`,
//!    `POST /v1/infer/<variant>` with a length-delimited little-endian
//!    `f32` body) plus a persistent-connection [`client::Client`] with
//!    bounded deadline-aware retry ([`RetryPolicy`]).
//! 5. **Protected storage & self-healing** ([`protect`], [`scrub`]) —
//!    variants registered with [`VariantSpec::protected`] keep their
//!    frozen weight codes behind SEC-DED parity
//!    ([`af_resilience::ProtectedCodes`]); a background scrubber
//!    repairs single-bit upsets in place, uncorrectable words trigger a
//!    rebuild from the retained f32 master plus a hot swap, and a
//!    supervisor restarts panicked lane workers (in-flight batch fails
//!    with `500`, never hangs).
//!
//! 6. **Durable store & crash recovery** ([`durable`]) — a
//!    [`DurableStore`] journals every registry mutation through
//!    [`af_store`]'s write-ahead log and persists each variant as an
//!    ECC-protected container, so a `kill -9` mid-traffic recovers to
//!    **bit-identical** serving (weights from stored codes, activation
//!    plans from stored calibrated ranges — zero requantization) with
//!    generation counters intact.
//!
//! The in-process path ([`Engine::infer`](batcher::Engine::infer)) and
//! the TCP path share every layer below the protocol, so tests can
//! drive either.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batcher;
pub mod client;
pub mod durable;
pub mod http;
pub mod protect;
pub mod queue;
pub mod registry;
pub mod scrub;
pub mod server;
pub mod stats;

pub use batcher::{Engine, EngineConfig, ServeError};
pub use client::{Client, ClientError, RetryPolicy};
pub use durable::{DurableOpen, DurableStore, RecoveryReport};
pub use protect::ProtectedWeights;
pub use registry::{
    ModelRegistry, ModelVariant, RegistryJournal, RestoredParts, ScrubOutcome, VariantSpec,
};
pub use scrub::{ScrubSummary, Scrubber};
pub use server::Server;
pub use stats::{ServeStats, StatsSnapshot};
