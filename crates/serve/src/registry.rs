//! The model registry: where model variants are built **once** — weight
//! quantization, activation calibration, LUT prewarm — and then served
//! as immutable `Arc`-shared snapshots.
//!
//! Registration is the expensive path (runs PTQ over every weight
//! tensor, a calibration forward pass, and the codebook builds); the
//! serve path is a read-locked map lookup returning an
//! [`Arc<ModelVariant>`]. Re-registering an id is a **hot swap**: the
//! map entry is replaced under a brief write lock, while in-flight
//! batches keep evaluating against the `Arc` they already cloned.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use adaptivfloat::{FormatError, FormatKind};
use af_models::{FrozenMlp, ModelFamily};

/// Everything needed to build one servable model variant.
#[derive(Debug, Clone)]
pub struct VariantSpec {
    /// Registry key, e.g. `"transformer/adaptivfloat8"`.
    pub id: String,
    /// Which weight-distribution family to synthesize.
    pub family: ModelFamily,
    /// Layer widths, input first (`dims[0]` = request feature width).
    pub dims: Vec<usize>,
    /// Synthesis seed (deterministic snapshots under equal specs).
    pub seed: u64,
    /// Weight PTQ format, or `None` to serve FP32 weights.
    pub weight_format: Option<(FormatKind, u32)>,
    /// Calibrated activation-quantization format, or `None`.
    pub act_format: Option<(FormatKind, u32)>,
}

impl VariantSpec {
    /// An FP32 reference variant.
    pub fn fp32(id: &str, family: ModelFamily, seed: u64, dims: &[usize]) -> VariantSpec {
        VariantSpec {
            id: id.to_string(),
            family,
            dims: dims.to_vec(),
            seed,
            weight_format: None,
            act_format: None,
        }
    }

    /// A fully quantized variant: weights *and* activations through
    /// `kind` at word size `n` (the paper's Table 3 configuration).
    pub fn quantized(
        id: &str,
        family: ModelFamily,
        kind: FormatKind,
        n: u32,
        seed: u64,
        dims: &[usize],
    ) -> VariantSpec {
        VariantSpec {
            id: id.to_string(),
            family,
            dims: dims.to_vec(),
            seed,
            weight_format: Some((kind, n)),
            act_format: Some((kind, n)),
        }
    }
}

/// One registered, immutable, servable snapshot.
#[derive(Debug)]
pub struct ModelVariant {
    /// Registry key.
    pub id: String,
    /// The frozen inference network.
    pub model: FrozenMlp,
    /// Codebook-path layers warmed at registration time.
    pub warmed_codebooks: usize,
    /// Quantization plans frozen while building this snapshot (one per
    /// weight tensor plus one per activation layer).
    pub plans_built: usize,
    /// Of the codebook-backed activation plans, how many found their
    /// codebook already warm in the process-wide cache (shared with an
    /// earlier registration) instead of building it.
    pub plan_cache_hits: usize,
    /// Bumped on every hot swap of this id (0 for the first build).
    pub generation: u64,
}

/// Rows of calibration inputs used when a variant quantizes activations.
const CALIB_ROWS: usize = 64;

/// The id → snapshot map. Cheap to share (`Arc<ModelRegistry>`); the
/// serve path takes only the read lock.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Arc<ModelVariant>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Build and publish a variant. Quantizes weights once, calibrates
    /// activation ranges on a deterministic batch, pre-warms LUT
    /// codebooks, and swaps the snapshot in atomically. Returns the
    /// published snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if a requested format
    /// cannot be built at its word size.
    pub fn register(&self, spec: &VariantSpec) -> Result<Arc<ModelVariant>, FormatError> {
        let mut model = FrozenMlp::synthesize(spec.family, spec.seed, &spec.dims);
        let mut plans_built = 0usize;
        let mut plan_cache_hits = 0usize;
        if let Some((kind, n)) = spec.weight_format {
            model = model.quantize_weights(kind, n)?;
            plans_built += model.depth();
        }
        if let Some((kind, n)) = spec.act_format {
            let calib = FrozenMlp::synth_inputs(spec.seed ^ 0xCA11_B8A7, CALIB_ROWS, spec.dims[0]);
            // Freezing the activation plans resolves their codebooks
            // against the process-wide cache: each miss takes the cache's
            // write lock exactly once, so the lock-acquisition delta is
            // the number of fresh builds, and the rest were cache hits.
            let builds_before = adaptivfloat::lut::write_lock_acquisitions();
            model = model.with_act_quant(kind, n, &calib)?;
            let fresh_builds = adaptivfloat::lut::write_lock_acquisitions() - builds_before;
            plans_built += model.depth();
            plan_cache_hits += model.prewarm_codebooks().saturating_sub(fresh_builds);
        }
        let warmed_codebooks = model.prewarm_codebooks();
        let mut map = self.inner.write().expect("registry poisoned");
        let generation = map.get(&spec.id).map_or(0, |v| v.generation + 1);
        let variant = Arc::new(ModelVariant {
            id: spec.id.clone(),
            model,
            warmed_codebooks,
            plans_built,
            plan_cache_hits,
            generation,
        });
        map.insert(spec.id.clone(), Arc::clone(&variant));
        Ok(variant)
    }

    /// Fetch the current snapshot for `id` (read lock + `Arc` clone).
    pub fn get(&self, id: &str) -> Option<Arc<ModelVariant>> {
        self.inner
            .read()
            .expect("registry poisoned")
            .get(id)
            .map(Arc::clone)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .inner
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").len()
    }

    /// Whether no variants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> VariantSpec {
        VariantSpec::quantized(
            id,
            ModelFamily::ResNet,
            FormatKind::Uniform,
            8,
            5,
            &[16, 32, 8],
        )
    }

    #[test]
    fn register_builds_quantized_warm_snapshot() {
        let reg = ModelRegistry::new();
        let v = reg.register(&spec("resnet/uniform8")).unwrap();
        assert_eq!(v.model.format_name(), "Uniform<8>");
        assert_eq!(v.model.act_format_name().as_deref(), Some("Uniform<8>"));
        assert!(v.warmed_codebooks > 0, "LUT formats must warm codebooks");
        assert_eq!(v.generation, 0);
        assert_eq!(reg.ids(), vec!["resnet/uniform8".to_string()]);
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn plan_counters_track_builds_and_cache_reuse() {
        let reg = ModelRegistry::new();
        let a = reg.register(&spec("a")).unwrap();
        // Two dense layers, weights + activations both planned.
        assert_eq!(a.plans_built, 4);
        // A second variant under the same spec resolves the same
        // codebooks: every codebook-backed activation plan is a hit.
        let b = reg.register(&spec("b")).unwrap();
        assert_eq!(b.plans_built, 4);
        assert_eq!(b.plan_cache_hits, b.warmed_codebooks);
        assert!(b.warmed_codebooks > 0);
    }

    #[test]
    fn hot_swap_replaces_snapshot_without_touching_old_arc() {
        let reg = ModelRegistry::new();
        let old = reg.register(&spec("m")).unwrap();
        let x = FrozenMlp::synth_inputs(1, 1, 16);
        let before = old.model.evaluate(x.row(0));
        // Swap in a different seed — a new snapshot under the same id.
        let mut s2 = spec("m");
        s2.seed = 6;
        let new = reg.register(&s2).unwrap();
        assert_eq!(new.generation, 1);
        assert!(!Arc::ptr_eq(&old, &new));
        // The old Arc (an in-flight batch) still evaluates identically.
        let after: Vec<u32> = old
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let before: Vec<u32> = before.iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after);
        // New lookups see the swapped snapshot.
        let current = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&current, &new));
    }

    #[test]
    fn deterministic_under_equal_spec() {
        let (ra, rb) = (ModelRegistry::new(), ModelRegistry::new());
        let (a, b) = (
            ra.register(&spec("m")).unwrap(),
            rb.register(&spec("m")).unwrap(),
        );
        let x = FrozenMlp::synth_inputs(2, 1, 16);
        let ya: Vec<u32> = a
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let yb: Vec<u32> = b
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(ya, yb);
    }
}
