//! The model registry: where model variants are built **once** — weight
//! quantization, activation calibration, LUT prewarm — and then served
//! as immutable `Arc`-shared snapshots.
//!
//! Registration is the expensive path (runs PTQ over every weight
//! tensor, a calibration forward pass, and the codebook builds); the
//! serve path is a read-locked map lookup returning an
//! [`Arc<ModelVariant>`]. Re-registering an id is a **hot swap**: the
//! map entry is replaced under a brief write lock, while in-flight
//! batches keep evaluating against the `Arc` they already cloned.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use adaptivfloat::{FormatError, FormatKind};
use af_models::{FrozenMlp, ModelFamily};

use crate::protect::ProtectedWeights;

/// Everything needed to build one servable model variant.
#[derive(Debug, Clone)]
pub struct VariantSpec {
    /// Registry key, e.g. `"transformer/adaptivfloat8"`.
    pub id: String,
    /// Which weight-distribution family to synthesize.
    pub family: ModelFamily,
    /// Layer widths, input first (`dims[0]` = request feature width).
    pub dims: Vec<usize>,
    /// Synthesis seed (deterministic snapshots under equal specs).
    pub seed: u64,
    /// Weight PTQ format, or `None` to serve FP32 weights.
    pub weight_format: Option<(FormatKind, u32)>,
    /// Calibrated activation-quantization format, or `None`.
    pub act_format: Option<(FormatKind, u32)>,
    /// Whether the variant's weight codes live behind SEC-DED protected
    /// storage (requires `weight_format`). The served snapshot is then
    /// built from what the storage decodes to, a scrubber can repair
    /// single-bit upsets in place, and uncorrectable errors trigger a
    /// rebuild from the retained f32 master plus a hot swap.
    pub protected: bool,
    /// Whether the variant serves batches through the fused
    /// quantized-domain GEMM (packed weight codes decoded inside the
    /// matmul kernel — bit-identical answers, `n/8` of the weight
    /// traffic). Requires an AdaptivFloat or Uniform `weight_format` at
    /// `n ∈ {4, 8}`, and is mutually exclusive with `protected` (whose
    /// snapshots are rebuilt from decoded storage and so carry no
    /// encoding recipe).
    pub fused: bool,
}

impl VariantSpec {
    /// An FP32 reference variant.
    pub fn fp32(id: &str, family: ModelFamily, seed: u64, dims: &[usize]) -> VariantSpec {
        VariantSpec {
            id: id.to_string(),
            family,
            dims: dims.to_vec(),
            seed,
            weight_format: None,
            act_format: None,
            protected: false,
            fused: false,
        }
    }

    /// A fully quantized variant: weights *and* activations through
    /// `kind` at word size `n` (the paper's Table 3 configuration).
    pub fn quantized(
        id: &str,
        family: ModelFamily,
        kind: FormatKind,
        n: u32,
        seed: u64,
        dims: &[usize],
    ) -> VariantSpec {
        VariantSpec {
            id: id.to_string(),
            family,
            dims: dims.to_vec(),
            seed,
            weight_format: Some((kind, n)),
            act_format: Some((kind, n)),
            protected: false,
            fused: false,
        }
    }

    /// Put this variant's weight codes behind SEC-DED protected storage.
    ///
    /// # Panics
    ///
    /// [`ModelRegistry::register`] panics if the spec has no weight
    /// format — there are no stored codes to protect under FP32.
    pub fn protected(mut self) -> VariantSpec {
        self.protected = true;
        self
    }

    /// Serve this variant's batches through the fused quantized-domain
    /// GEMM (packed weight codes, decoded inside the matmul kernel).
    ///
    /// # Panics
    ///
    /// [`ModelRegistry::register`] panics if the spec is also
    /// `protected`, has no weight format, or its format/word size is
    /// outside what the packed kernel supports (AdaptivFloat or
    /// Uniform at `n ∈ {4, 8}`).
    pub fn fused(mut self) -> VariantSpec {
        self.fused = true;
        self
    }
}

/// One registered, immutable, servable snapshot.
#[derive(Debug)]
pub struct ModelVariant {
    /// Registry key.
    pub id: String,
    /// The frozen inference network.
    pub model: FrozenMlp,
    /// Codebook-path layers warmed at registration time.
    pub warmed_codebooks: usize,
    /// Quantization plans frozen while building this snapshot (one per
    /// weight tensor plus one per activation layer).
    pub plans_built: usize,
    /// Of the codebook-backed activation plans, how many found their
    /// codebook already warm in the process-wide cache (shared with an
    /// earlier registration) instead of building it.
    pub plan_cache_hits: usize,
    /// Bumped on every hot swap of this id (0 for the first build).
    pub generation: u64,
    /// SEC-DED protected weight storage, when the spec asked for it.
    /// Shared across hot swaps of the same id: the scrubber repairs
    /// this store while served snapshots come and go around it.
    pub protected: Option<Arc<Mutex<ProtectedWeights>>>,
    /// The spec this variant was built from — retained so storage
    /// refreshes and rebuilds can reconstruct the snapshot (biases,
    /// activation calibration) without the original caller.
    pub spec: VariantSpec,
}

/// What one scrub of a protected variant found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Single-bit errors repaired in place.
    pub corrected: usize,
    /// Detected-uncorrectable words (each forces the rebuild below).
    pub uncorrectable: usize,
    /// Whether storage was re-encoded from the f32 master and the
    /// served snapshot hot-swapped.
    pub rebuilt: bool,
    /// The variant's generation after the scrub (bumped iff `rebuilt`).
    pub generation: u64,
}

/// Rows of calibration inputs used when a variant quantizes activations.
const CALIB_ROWS: usize = 64;

/// Observer for registry mutations — the seam a durable store plugs
/// into so every register, scrub, hot swap, and unregister is journaled
/// before the next one can happen. Hooks are invoked *after* the
/// registry releases its write lock (an implementation may call back
/// into read-side registry methods), and must not panic: persistence
/// failures are the implementor's to count and report.
pub trait RegistryJournal: Send + Sync + std::fmt::Debug {
    /// A variant was built and published (first build or re-register).
    fn on_register(&self, variant: &ModelVariant);
    /// A scrub pass finished over a protected variant.
    fn on_scrub(&self, id: &str, outcome: &ScrubOutcome);
    /// A hot swap republished `id`'s snapshot at `generation`.
    fn on_swap(&self, id: &str, generation: u64);
    /// `id` was removed from the registry.
    fn on_unregister(&self, id: &str);
}

/// The pieces of a variant reconstructed from durable storage, handed
/// to [`ModelRegistry::install`]. Unlike a fresh
/// [`register`](ModelRegistry::register), every counter is supplied by
/// the caller (recovered from disk) and nothing is journaled.
#[derive(Debug)]
pub struct RestoredParts {
    /// The spec the variant was originally built from.
    pub spec: VariantSpec,
    /// The restored snapshot (weights decoded from stored codes).
    pub model: FrozenMlp,
    /// Recovered counter: codebook-path layers warm at build time.
    pub warmed_codebooks: usize,
    /// Recovered counter: plans frozen building the original snapshot.
    pub plans_built: usize,
    /// Recovered counter: codebook cache hits at original build.
    pub plan_cache_hits: usize,
    /// Recovered hot-swap generation — restart must not reset it.
    pub generation: u64,
    /// Restored protected storage, when the spec used it.
    pub protected: Option<Arc<Mutex<ProtectedWeights>>>,
}

/// The id → snapshot map. Cheap to share (`Arc<ModelRegistry>`); the
/// serve path takes only the read lock.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Arc<ModelVariant>>>,
    journal: RwLock<Option<Arc<dyn RegistryJournal>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    /// Attach a journal. Mutations from this point on flow through it;
    /// anything already registered (e.g. variants installed during
    /// recovery, which the journal's own log produced) is not replayed.
    pub fn set_journal(&self, journal: Arc<dyn RegistryJournal>) {
        *self.journal.write().expect("journal lock poisoned") = Some(journal);
    }

    fn journal(&self) -> Option<Arc<dyn RegistryJournal>> {
        self.journal
            .read()
            .expect("journal lock poisoned")
            .as_ref()
            .map(Arc::clone)
    }

    /// Build and publish a variant. Quantizes weights once, calibrates
    /// activation ranges on a deterministic batch, pre-warms LUT
    /// codebooks, and swaps the snapshot in atomically. Returns the
    /// published snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if a requested format
    /// cannot be built at its word size.
    ///
    /// # Panics
    ///
    /// Panics if the spec asks for protected storage without a weight
    /// format (FP32 variants have no stored codes to protect).
    pub fn register(&self, spec: &VariantSpec) -> Result<Arc<ModelVariant>, FormatError> {
        let mut model = FrozenMlp::synthesize(spec.family, spec.seed, &spec.dims);
        let mut plans_built = 0usize;
        let mut plan_cache_hits = 0usize;
        let mut protected: Option<Arc<Mutex<ProtectedWeights>>> = None;
        if spec.protected {
            let (kind, n) = spec
                .weight_format
                .expect("protected storage requires a weight format");
            // Encode into protected storage first, then build the served
            // weights from what the storage decodes to — the storage is
            // authoritative, so a scrub-repaired store decodes to
            // exactly the weights already being served.
            let store = ProtectedWeights::build(&model, kind, n)?;
            let (weights, _) = store.decoded_weights();
            model = model.with_weight_data(weights, store.format_label());
            plans_built += model.depth();
            protected = Some(Arc::new(Mutex::new(store)));
        } else if let Some((kind, n)) = spec.weight_format {
            model = model.quantize_weights(kind, n)?;
            plans_built += model.depth();
        }
        if spec.fused {
            assert!(
                !spec.protected,
                "fused GEMM and protected storage are mutually exclusive \
                 (protected snapshots rebuild from decoded storage)"
            );
            // Panics with a precise message if the weight format is
            // missing or unsupported — registration is the build step,
            // so a bad spec should fail loudly here, not at serve time.
            model = model.with_fused_gemm();
        }
        if let Some((kind, n)) = spec.act_format {
            let calib = FrozenMlp::synth_inputs(spec.seed ^ 0xCA11_B8A7, CALIB_ROWS, spec.dims[0]);
            // Freezing the activation plans resolves their codebooks
            // against the process-wide cache: each miss takes the cache's
            // write lock exactly once, so the lock-acquisition delta is
            // the number of fresh builds, and the rest were cache hits.
            let builds_before = adaptivfloat::lut::write_lock_acquisitions();
            model = model.with_act_quant(kind, n, &calib)?;
            let fresh_builds = adaptivfloat::lut::write_lock_acquisitions() - builds_before;
            plans_built += model.depth();
            plan_cache_hits += model.prewarm_codebooks().saturating_sub(fresh_builds);
        }
        let warmed_codebooks = model.prewarm_codebooks();
        let mut map = self.inner.write().expect("registry poisoned");
        let generation = map.get(&spec.id).map_or(0, |v| v.generation + 1);
        let variant = Arc::new(ModelVariant {
            id: spec.id.clone(),
            model,
            warmed_codebooks,
            plans_built,
            plan_cache_hits,
            generation,
            protected,
            spec: spec.clone(),
        });
        map.insert(spec.id.clone(), Arc::clone(&variant));
        drop(map);
        if let Some(journal) = self.journal() {
            journal.on_register(&variant);
        }
        Ok(variant)
    }

    /// Publish a variant reconstructed from durable storage, preserving
    /// its recovered generation and counters. Recovery-only: nothing is
    /// journaled (the journal's own records produced this state), and
    /// any existing entry under the id is replaced.
    pub fn install(&self, parts: RestoredParts) -> Arc<ModelVariant> {
        let variant = Arc::new(ModelVariant {
            id: parts.spec.id.clone(),
            model: parts.model,
            warmed_codebooks: parts.warmed_codebooks,
            plans_built: parts.plans_built,
            plan_cache_hits: parts.plan_cache_hits,
            generation: parts.generation,
            protected: parts.protected,
            spec: parts.spec,
        });
        self.inner
            .write()
            .expect("registry poisoned")
            .insert(variant.id.clone(), Arc::clone(&variant));
        variant
    }

    /// Remove `id` from the registry (journaled). In-flight batches
    /// keep the `Arc` they hold. Returns whether anything was removed.
    pub fn unregister(&self, id: &str) -> bool {
        let removed = self
            .inner
            .write()
            .expect("registry poisoned")
            .remove(id)
            .is_some();
        if removed {
            if let Some(journal) = self.journal() {
                journal.on_unregister(id);
            }
        }
        removed
    }

    /// Rebuild `id`'s served snapshot from its (possibly scrubbed)
    /// protected storage and hot-swap it in, bumping the generation.
    /// Returns the new snapshot, or `None` if `id` is unknown or
    /// unprotected. In-flight batches keep the `Arc` they hold.
    pub fn refresh_from_storage(&self, id: &str) -> Option<Arc<ModelVariant>> {
        let current = self.get(id)?;
        let store = Arc::clone(current.protected.as_ref()?);
        let spec = current.spec.clone();
        // Decode under the store lock, build the snapshot outside it.
        let (weights, label) = {
            let guard = store.lock().expect("protected store poisoned");
            let (weights, _) = guard.decoded_weights();
            (weights, guard.format_label().to_string())
        };
        let mut model = FrozenMlp::synthesize(spec.family, spec.seed, &spec.dims)
            .with_weight_data(weights, &label);
        if let Some((kind, n)) = spec.act_format {
            let calib = FrozenMlp::synth_inputs(spec.seed ^ 0xCA11_B8A7, CALIB_ROWS, spec.dims[0]);
            // The same geometry built at registration time; it cannot
            // start failing now.
            model = model.with_act_quant(kind, n, &calib).ok()?;
        }
        let warmed_codebooks = model.prewarm_codebooks();
        let mut map = self.inner.write().expect("registry poisoned");
        let generation = map.get(id).map_or(0, |v| v.generation + 1);
        let variant = Arc::new(ModelVariant {
            id: id.to_string(),
            model,
            warmed_codebooks,
            plans_built: current.plans_built,
            plan_cache_hits: current.plan_cache_hits,
            generation,
            protected: Some(store),
            spec,
        });
        map.insert(id.to_string(), Arc::clone(&variant));
        drop(map);
        if let Some(journal) = self.journal() {
            journal.on_swap(id, variant.generation);
        }
        Some(variant)
    }

    /// Scrub `id`'s protected storage once: repair every correctable
    /// word in place; on any uncorrectable word, re-encode the storage
    /// from the f32 master and hot-swap a fresh snapshot (generation
    /// bump). Returns `None` for unknown or unprotected ids.
    pub fn scrub_variant(&self, id: &str) -> Option<ScrubOutcome> {
        let current = self.get(id)?;
        let store = Arc::clone(current.protected.as_ref()?);
        let report = {
            let mut guard = store.lock().expect("protected store poisoned");
            let report = guard.scrub();
            if report.uncorrectable > 0 {
                guard.rebuild_from_master();
            }
            report
        };
        let rebuilt = report.uncorrectable > 0;
        let generation = if rebuilt {
            // Correctable errors were repaired to bit-identical storage,
            // so the served snapshot is already right; only a rebuild
            // publishes a new one.
            self.refresh_from_storage(id)
                .map_or(current.generation, |v| v.generation)
        } else {
            current.generation
        };
        let outcome = ScrubOutcome {
            corrected: report.corrected,
            uncorrectable: report.uncorrectable,
            rebuilt,
            generation,
        };
        if let Some(journal) = self.journal() {
            journal.on_scrub(id, &outcome);
        }
        Some(outcome)
    }

    /// Fetch the current snapshot for `id` (read lock + `Arc` clone).
    pub fn get(&self, id: &str) -> Option<Arc<ModelVariant>> {
        self.inner
            .read()
            .expect("registry poisoned")
            .get(id)
            .map(Arc::clone)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .inner
            .read()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Number of registered variants.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry poisoned").len()
    }

    /// Whether no variants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> VariantSpec {
        VariantSpec::quantized(
            id,
            ModelFamily::ResNet,
            FormatKind::Uniform,
            8,
            5,
            &[16, 32, 8],
        )
    }

    #[test]
    fn register_builds_quantized_warm_snapshot() {
        let reg = ModelRegistry::new();
        let v = reg.register(&spec("resnet/uniform8")).unwrap();
        assert_eq!(v.model.format_name(), "Uniform<8>");
        assert_eq!(v.model.act_format_name().as_deref(), Some("Uniform<8>"));
        assert!(v.warmed_codebooks > 0, "LUT formats must warm codebooks");
        assert_eq!(v.generation, 0);
        assert_eq!(reg.ids(), vec!["resnet/uniform8".to_string()]);
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn plan_counters_track_builds_and_cache_reuse() {
        let reg = ModelRegistry::new();
        let a = reg.register(&spec("a")).unwrap();
        // Two dense layers, weights + activations both planned.
        assert_eq!(a.plans_built, 4);
        // A second variant under the same spec resolves the same
        // codebooks: every codebook-backed activation plan is a hit.
        let b = reg.register(&spec("b")).unwrap();
        assert_eq!(b.plans_built, 4);
        assert_eq!(b.plan_cache_hits, b.warmed_codebooks);
        assert!(b.warmed_codebooks > 0);
    }

    #[test]
    fn hot_swap_replaces_snapshot_without_touching_old_arc() {
        let reg = ModelRegistry::new();
        let old = reg.register(&spec("m")).unwrap();
        let x = FrozenMlp::synth_inputs(1, 1, 16);
        let before = old.model.evaluate(x.row(0));
        // Swap in a different seed — a new snapshot under the same id.
        let mut s2 = spec("m");
        s2.seed = 6;
        let new = reg.register(&s2).unwrap();
        assert_eq!(new.generation, 1);
        assert!(!Arc::ptr_eq(&old, &new));
        // The old Arc (an in-flight batch) still evaluates identically.
        let after: Vec<u32> = old
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let before: Vec<u32> = before.iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after);
        // New lookups see the swapped snapshot.
        let current = reg.get("m").unwrap();
        assert!(Arc::ptr_eq(&current, &new));
    }

    fn output_bits(v: &ModelVariant, x: &[f32]) -> Vec<u32> {
        v.model.evaluate(x).iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn protected_registration_serves_what_the_storage_decodes_to() {
        let reg = ModelRegistry::new();
        let v = reg.register(&spec("p").protected()).unwrap();
        assert_eq!(v.model.format_name(), "Uniform<8>+secded");
        assert!(v.protected.is_some());
        // A clean store scrubs clean and publishes nothing new.
        let outcome = reg.scrub_variant("p").unwrap();
        assert_eq!(outcome.corrected, 0);
        assert!(!outcome.rebuilt);
        assert_eq!(outcome.generation, 0);
        // Unprotected and unknown ids answer None.
        reg.register(&spec("u")).unwrap();
        assert!(reg.scrub_variant("u").is_none());
        assert!(reg.scrub_variant("ghost").is_none());
        assert!(reg.refresh_from_storage("u").is_none());
    }

    #[test]
    fn scrub_repairs_single_bit_upset_with_bit_identical_serving() {
        let reg = ModelRegistry::new();
        let v = reg.register(&spec("p").protected()).unwrap();
        let x = FrozenMlp::synth_inputs(4, 1, 16);
        let want = output_bits(&v, x.row(0));
        v.protected
            .as_ref()
            .unwrap()
            .lock()
            .unwrap()
            .flip_bit(0, 1, 17);
        let outcome = reg.scrub_variant("p").unwrap();
        assert_eq!(outcome.corrected, 1);
        assert_eq!(outcome.uncorrectable, 0);
        assert!(!outcome.rebuilt, "single-bit upsets repair in place");
        assert_eq!(outcome.generation, 0, "no republish needed");
        // Storage is bit-identical again: a snapshot rebuilt from it
        // answers exactly what the original served.
        let refreshed = reg.refresh_from_storage("p").unwrap();
        assert_eq!(output_bits(&refreshed, x.row(0)), want);
    }

    #[test]
    fn uncorrectable_upset_rebuilds_from_master_and_bumps_generation() {
        let reg = ModelRegistry::new();
        let v = reg.register(&spec("p").protected()).unwrap();
        let x = FrozenMlp::synth_inputs(4, 1, 16);
        let want = output_bits(&v, x.row(0));
        {
            let mut store = v.protected.as_ref().unwrap().lock().unwrap();
            store.flip_bit(0, 2, 6);
            store.flip_bit(0, 2, 51);
        }
        let outcome = reg.scrub_variant("p").unwrap();
        assert_eq!(outcome.uncorrectable, 1);
        assert!(outcome.rebuilt);
        assert_eq!(outcome.generation, 1, "rebuild hot-swaps a new snapshot");
        let current = reg.get("p").unwrap();
        assert_eq!(current.generation, 1);
        assert!(!Arc::ptr_eq(&current, &v));
        assert_eq!(output_bits(&current, x.row(0)), want);
        // The store Arc is shared across the swap; history survived.
        let stats = current
            .protected
            .as_ref()
            .unwrap()
            .lock()
            .unwrap()
            .ecc_stats();
        assert_eq!(stats.detected_uncorrectable, 1);
    }

    #[test]
    #[should_panic(expected = "protected storage requires a weight format")]
    fn protected_fp32_spec_is_rejected() {
        let reg = ModelRegistry::new();
        let _ = reg.register(&VariantSpec::fp32("f", ModelFamily::ResNet, 1, &[8, 4]).protected());
    }

    #[test]
    fn deterministic_under_equal_spec() {
        let (ra, rb) = (ModelRegistry::new(), ModelRegistry::new());
        let (a, b) = (
            ra.register(&spec("m")).unwrap(),
            rb.register(&spec("m")).unwrap(),
        );
        let x = FrozenMlp::synth_inputs(2, 1, 16);
        let ya: Vec<u32> = a
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let yb: Vec<u32> = b
            .model
            .evaluate(x.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(ya, yb);
    }
}
