//! Durable serving: the bridge between the in-memory
//! [`ModelRegistry`] and the on-disk [`af_store::Store`].
//!
//! [`DurableStore::open`] replays the store (checkpoint + WAL fold) and
//! republishes every recovered variant **without requantizing
//! anything**: weights come from the persisted codes, activation plans
//! from the persisted calibrated ranges, protected masters from the
//! deterministic synthesis the registry would have run anyway. The
//! restored snapshots are bit-identical to what the crashed process was
//! serving. From then on the handle journals every registry mutation
//! through the WAL ([`RegistryJournal`]) and folds the log into a fresh
//! checkpoint when it outgrows a rotation threshold.
//!
//! Journal hooks never panic the serve path: persistence failures are
//! counted ([`DurableStore::journal_errors`]) and reported through the
//! stats endpoint instead.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use af_models::{FrozenMlp, ModelFamily};
use af_resilience::{ProtectedCodes, StorageCodec};
use af_store::{
    raw_f32_codes, ActRecord, LayerPayload, SpecRecord, Store, StoreError, StoredLayer,
    StoredVariant, SyncPolicy,
};

use crate::protect::ProtectedWeights;
use crate::registry::{ModelRegistry, ModelVariant, RegistryJournal, RestoredParts, ScrubOutcome};
use crate::VariantSpec;

/// Default WAL size that triggers an automatic fold into a fresh
/// checkpoint (1 MiB — hundreds of scrub records).
pub const DEFAULT_ROTATE_BYTES: u64 = 1 << 20;

/// What recovery reconstructed, for operators and the stats endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Variants republished from disk.
    pub recovered_variants: usize,
    /// WAL records folded into the recovered state.
    pub wal_records_replayed: u64,
    /// Torn trailing WAL bytes dropped.
    pub torn_tail_bytes_dropped: u64,
    /// Wall-clock cost of open + restore, microseconds.
    pub recovery_us: u64,
}

/// A durable store attached to a registry: journals mutations, rotates
/// the WAL into checkpoints, and answers stats queries.
#[derive(Debug)]
pub struct DurableStore {
    inner: Mutex<Store>,
    /// WAL size that triggers an automatic checkpoint (0 = never).
    rotate_bytes: u64,
    /// The registry this store journals for — weak, because the
    /// registry holds an `Arc` to this store through its journal slot.
    registry: Mutex<Weak<ModelRegistry>>,
    journal_errors: AtomicU64,
}

/// The result of [`DurableStore::open`]: the store handle, the registry
/// it recovered into (journaling already attached), and the report.
#[derive(Debug)]
pub struct DurableOpen {
    /// The durable store, already installed as the registry's journal.
    pub store: Arc<DurableStore>,
    /// The recovered registry — hand it to `Engine::start`.
    pub registry: Arc<ModelRegistry>,
    /// What recovery did.
    pub report: RecoveryReport,
}

fn spec_record(variant: &ModelVariant) -> SpecRecord {
    let spec = &variant.spec;
    let rebuilds = variant.protected.as_ref().map_or(0, |p| {
        p.lock().expect("protected store poisoned").rebuilds()
    });
    SpecRecord {
        id: spec.id.clone(),
        family: spec.family.label().to_string(),
        dims: spec.dims.clone(),
        seed: spec.seed,
        weight_format: spec.weight_format,
        act_format: spec.act_format,
        protected: spec.protected,
        fused: spec.fused,
        format_label: variant.model.format_name().to_string(),
        plans_built: variant.plans_built as u64,
        plan_cache_hits: variant.plan_cache_hits as u64,
        warmed_codebooks: variant.warmed_codebooks as u64,
        generation: variant.generation,
        rebuilds,
    }
}

/// Serialize a live variant into its container image.
///
/// Protected variants persist their storage codes as-is (the storage is
/// authoritative; latent faults stay under ECC on disk exactly as in
/// memory). Quantized variants re-encode the served weights through
/// their frozen recipe and verify the roundtrip decodes bit-identically
/// — any mismatch drops the *whole variant* to lossless
/// [`LayerPayload::RawF32`] so restore can never serve different bits.
/// FP32 variants always persist RawF32.
///
/// # Errors
///
/// [`StoreError::Restore`] if a protected layer's codec has no
/// persistable kind (not reachable through [`VariantSpec`] today).
pub fn export_variant(variant: &ModelVariant) -> Result<StoredVariant, StoreError> {
    let spec = spec_record(variant);
    let model = &variant.model;
    let mut layers = Vec::with_capacity(model.depth());
    if let Some(protected) = &variant.protected {
        let guard = protected.lock().expect("protected store poisoned");
        for (l, (codec, codes)) in guard.export_layers().into_iter().enumerate() {
            let (_, shape) = model.weight_data(l);
            let kind = codec.kind().ok_or_else(|| StoreError::Restore {
                id: spec.id.clone(),
                context: format!("layer {l} codec has no persistable format kind"),
            })?;
            layers.push(StoredLayer {
                rows: shape[0],
                cols: shape[1],
                payload: LayerPayload::Codes {
                    kind,
                    n: codec.width(),
                    params: codec.params(),
                },
                codes,
            });
        }
    } else if let Some((kind, n, params)) = model.weight_quant_recipe() {
        // Re-encode the served weights through the frozen recipe and
        // keep the codes only if they decode back bit-identically.
        let mut encoded = Vec::with_capacity(model.depth());
        let mut exact = true;
        for (l, &layer_params) in params.iter().enumerate().take(model.depth()) {
            let (data, shape) = model.weight_data(l);
            let codec = StorageCodec::from_params(kind, n, layer_params).map_err(|e| {
                StoreError::Restore {
                    id: spec.id.clone(),
                    context: format!("layer {l} recipe cannot rebuild a codec: {e}"),
                }
            })?;
            let codes = codec.encode_slice(data);
            let (back, _) = codec.decode_slice(&codes, adaptivfloat::DecodePolicy::Harden);
            if back.len() != data.len()
                || back
                    .iter()
                    .zip(data)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                exact = false;
                break;
            }
            encoded.push((shape.to_vec(), codec, codes));
        }
        if exact {
            for (shape, codec, codes) in encoded {
                layers.push(StoredLayer {
                    rows: shape[0],
                    cols: shape[1],
                    payload: LayerPayload::Codes {
                        kind,
                        n,
                        params: codec.params(),
                    },
                    codes: ProtectedCodes::protect(codes),
                });
            }
        } else {
            for l in 0..model.depth() {
                let (data, shape) = model.weight_data(l);
                layers.push(StoredLayer {
                    rows: shape[0],
                    cols: shape[1],
                    payload: LayerPayload::RawF32,
                    codes: raw_f32_codes(data),
                });
            }
        }
    } else {
        for l in 0..model.depth() {
            let (data, shape) = model.weight_data(l);
            layers.push(StoredLayer {
                rows: shape[0],
                cols: shape[1],
                payload: LayerPayload::RawF32,
                codes: raw_f32_codes(data),
            });
        }
    }
    let act = model.act_recipe().map(|(kind, n, maxes)| ActRecord {
        kind,
        n,
        maxes: maxes.to_vec(),
    });
    Ok(StoredVariant { spec, layers, act })
}

fn restore_err(id: &str, context: String) -> StoreError {
    StoreError::Restore {
        id: id.to_string(),
        context,
    }
}

/// Rebuild a servable variant from its container image — **zero
/// requantization**: weights decode from the stored codes, activation
/// plans rebuild from the stored calibrated ranges, and the fused GEMM
/// re-packs from the stored recipe. Biases and protected masters come
/// from the deterministic synthesis under the stored `(family, seed,
/// dims)`.
///
/// # Errors
///
/// [`StoreError::Restore`] when the stored spec is internally
/// inconsistent (unknown family, geometry mismatch, mixed layer modes).
pub fn restore_variant(stored: &StoredVariant) -> Result<RestoredParts, StoreError> {
    let rec = &stored.spec;
    let id = &rec.id;
    let family = ModelFamily::from_label(&rec.family)
        .ok_or_else(|| restore_err(id, format!("unknown model family {:?}", rec.family)))?;
    let spec = VariantSpec {
        id: id.clone(),
        family,
        dims: rec.dims.clone(),
        seed: rec.seed,
        weight_format: rec.weight_format,
        act_format: rec.act_format,
        protected: rec.protected,
        fused: rec.fused,
    };
    let base = FrozenMlp::synthesize(family, rec.seed, &rec.dims);
    if stored.layers.len() != base.depth() {
        return Err(restore_err(
            id,
            format!(
                "{} stored layers but the dims synthesize {}",
                stored.layers.len(),
                base.depth()
            ),
        ));
    }
    for (l, layer) in stored.layers.iter().enumerate() {
        let (_, shape) = base.weight_data(l);
        if layer.rows != shape[0] || layer.cols != shape[1] {
            return Err(restore_err(
                id,
                format!(
                    "layer {l} is {}x{} on disk but {}x{} synthesized",
                    layer.rows, layer.cols, shape[0], shape[1]
                ),
            ));
        }
    }

    let mut protected: Option<Arc<Mutex<ProtectedWeights>>> = None;
    let model = if rec.protected {
        // Storage-authoritative: rebuild the protected store from the
        // persisted codes (latent faults and ECC history intact), then
        // serve what it decodes to — exactly the registration path.
        let mut parts = Vec::with_capacity(stored.layers.len());
        for (l, layer) in stored.layers.iter().enumerate() {
            let LayerPayload::Codes { kind, n, params } = &layer.payload else {
                return Err(restore_err(
                    id,
                    format!("protected variant stores layer {l} without codes"),
                ));
            };
            let codec = StorageCodec::from_params(*kind, *n, *params).map_err(|e| {
                restore_err(id, format!("layer {l} params cannot rebuild a codec: {e}"))
            })?;
            let (master, _) = base.weight_data(l);
            parts.push((codec, layer.codes.clone(), master.to_vec()));
        }
        let store = ProtectedWeights::restore(&rec.format_label, rec.rebuilds, parts);
        let (weights, _) = store.decoded_weights();
        let label = store.format_label().to_string();
        protected = Some(Arc::new(Mutex::new(store)));
        base.with_weight_data(weights, &label)
    } else {
        let raw = stored
            .layers
            .iter()
            .all(|l| matches!(l.payload, LayerPayload::RawF32));
        let coded = stored
            .layers
            .iter()
            .all(|l| matches!(l.payload, LayerPayload::Codes { .. }));
        if !raw && !coded {
            return Err(restore_err(
                id,
                "container mixes RawF32 and coded layers".to_string(),
            ));
        }
        let mut weights = Vec::with_capacity(stored.layers.len());
        for layer in &stored.layers {
            let (vals, _) = layer.decode_values().map_err(|e| match e {
                StoreError::Malformed { context, .. } => restore_err(id, context),
                other => other,
            })?;
            weights.push(vals);
        }
        if coded {
            let LayerPayload::Codes { kind, n, .. } = &stored.layers[0].payload else {
                unreachable!("coded implies every layer has codes")
            };
            let params: Vec<adaptivfloat::PlanParams> = stored
                .layers
                .iter()
                .map(|l| match &l.payload {
                    LayerPayload::Codes { params, .. } => *params,
                    LayerPayload::RawF32 => unreachable!("checked above"),
                })
                .collect();
            base.with_quantized_weights(*kind, *n, &params, weights, &rec.format_label)
        } else if rec.weight_format.is_none() && rec.format_label == "fp32" {
            // A pristine FP32 variant: keep the synthesized tensors as
            // the served weights (they are bit-identical to the stored
            // RawF32 values; this also keeps format_name() = "fp32").
            base.with_weight_data(weights, "fp32")
        } else {
            base.with_weight_data(weights, &rec.format_label)
        }
    };

    // Activation quantization from the frozen ranges — no calibration
    // forward pass, no fresh codebook builds beyond what the original
    // registration already cached process-wide.
    let model = match &stored.act {
        None => model,
        Some(act) => model
            .with_act_quant_frozen(act.kind, act.n, &act.maxes)
            .map_err(|e| restore_err(id, format!("stored act recipe rejected: {e}")))?,
    };
    // The fused GEMM re-packs from the restored recipe; its exact
    // re-encode asserts re-verify every weight.
    let model = if rec.fused {
        model.with_fused_gemm()
    } else {
        model
    };
    let warmed = model.prewarm_codebooks();
    let _ = warmed; // counters below prefer the persisted values
    Ok(RestoredParts {
        spec,
        model,
        warmed_codebooks: rec.warmed_codebooks as usize,
        plans_built: rec.plans_built as usize,
        plan_cache_hits: rec.plan_cache_hits as usize,
        generation: rec.generation,
        protected,
    })
}

impl DurableStore {
    /// Open (or initialize) the store at `root`, recover every
    /// persisted variant into a fresh registry, and attach this handle
    /// as the registry's journal.
    ///
    /// # Errors
    ///
    /// Any typed [`StoreError`] from the store open or a variant
    /// restore. A corrupt store fails here — loudly, before serving —
    /// rather than serving wrong bits; the operator can
    /// [`af_store::Store::rollback`] to a previous checkpoint.
    pub fn open(
        root: &Path,
        sync: SyncPolicy,
        rotate_bytes: u64,
    ) -> Result<DurableOpen, StoreError> {
        let t0 = Instant::now();
        let (store, recovery) = Store::open(root, sync)?;
        let registry = Arc::new(ModelRegistry::new());
        for stored in &recovery.variants {
            let parts = restore_variant(stored)?;
            registry.install(parts);
        }
        let report = RecoveryReport {
            recovered_variants: recovery.variants.len(),
            wal_records_replayed: recovery.wal_records_replayed,
            torn_tail_bytes_dropped: recovery.torn_tail_bytes_dropped,
            recovery_us: t0.elapsed().as_micros() as u64,
        };
        let durable = Arc::new(DurableStore {
            inner: Mutex::new(store),
            rotate_bytes,
            registry: Mutex::new(Arc::downgrade(&registry)),
            journal_errors: AtomicU64::new(0),
        });
        registry.set_journal(Arc::clone(&durable) as Arc<dyn RegistryJournal>);
        Ok(DurableOpen {
            store: durable,
            registry,
            report,
        })
    }

    /// Journal-hook persistence failures so far (the serve path never
    /// panics on them).
    pub fn journal_errors(&self) -> u64 {
        self.journal_errors.load(Ordering::Relaxed)
    }

    /// Current store counters.
    pub fn stats(&self) -> af_store::StoreStats {
        self.inner.lock().expect("store poisoned").stats()
    }

    /// Store counters as a JSON object, with journal health appended.
    pub fn stats_json(&self) -> String {
        let base = self.stats().to_json();
        format!(
            "{},\"journal_errors\":{}}}",
            &base[..base.len() - 1],
            self.journal_errors()
        )
    }

    /// Fold the WAL into a fresh checkpoint built from the registry's
    /// current state. Returns the new checkpoint version.
    ///
    /// # Errors
    ///
    /// [`StoreError`] from export or the checkpoint write; the store
    /// stays on its old checkpoint on failure.
    pub fn checkpoint(&self) -> Result<u64, StoreError> {
        let registry = self
            .registry
            .lock()
            .expect("registry slot poisoned")
            .upgrade()
            .ok_or_else(|| restore_err("<registry>", "registry dropped".to_string()))?;
        let mut exported = Vec::new();
        for id in registry.ids() {
            if let Some(variant) = registry.get(&id) {
                exported.push(export_variant(&variant)?);
            }
        }
        self.inner
            .lock()
            .expect("store poisoned")
            .checkpoint(&exported)
    }

    /// Flush any batched WAL records.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.inner.lock().expect("store poisoned").sync()
    }

    fn note_error(&self, what: &str, err: &StoreError) {
        self.journal_errors.fetch_add(1, Ordering::Relaxed);
        eprintln!("af-serve: durable store failed to journal {what}: {err}");
    }

    fn maybe_rotate(&self) {
        if self.rotate_bytes == 0 {
            return;
        }
        let wal_bytes = self.inner.lock().expect("store poisoned").stats().wal_bytes;
        if wal_bytes < self.rotate_bytes {
            return;
        }
        if let Err(e) = self.checkpoint() {
            self.note_error("checkpoint rotation", &e);
        }
    }
}

impl RegistryJournal for DurableStore {
    fn on_register(&self, variant: &ModelVariant) {
        match export_variant(variant) {
            Ok(stored) => {
                let result = self
                    .inner
                    .lock()
                    .expect("store poisoned")
                    .persist_variant(&stored);
                if let Err(e) = result {
                    self.note_error("register", &e);
                }
            }
            Err(e) => self.note_error("register export", &e),
        }
        self.maybe_rotate();
    }

    fn on_scrub(&self, id: &str, outcome: &ScrubOutcome) {
        let result = self.inner.lock().expect("store poisoned").log_scrub(
            id,
            outcome.corrected as u64,
            outcome.uncorrectable as u64,
            outcome.rebuilt,
            outcome.generation,
        );
        if let Err(e) = result {
            self.note_error("scrub", &e);
        }
        self.maybe_rotate();
    }

    fn on_swap(&self, id: &str, generation: u64) {
        let result = self
            .inner
            .lock()
            .expect("store poisoned")
            .log_swap(id, generation);
        if let Err(e) = result {
            self.note_error("swap", &e);
        }
        self.maybe_rotate();
    }

    fn on_unregister(&self, id: &str) {
        let result = self
            .inner
            .lock()
            .expect("store poisoned")
            .log_unregister(id);
        if let Err(e) = result {
            self.note_error("unregister", &e);
        }
        self.maybe_rotate();
    }
}
