//! The serving engine: one micro-batching lane per registered variant,
//! admission control in front, deadlines throughout.
//!
//! Every variant owns a bounded [`BatchQueue`] and one worker thread.
//! [`Engine::infer`] validates the request against the current registry
//! snapshot, admits it (or sheds with [`ServeError::Overloaded`]), and
//! blocks on a reply channel. The worker forms batches under the
//! `(max_batch, max_wait)` policy, drops requests whose deadline
//! already passed, re-reads the registry so hot swaps take effect at
//! batch granularity, and answers each row of one
//! [`af_models::FrozenMlp::evaluate_batch`] pass — bit-identical to per-sample
//! evaluation by the invariant pinned in `af-models`.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use af_models::BatchScratch;

use crate::durable::DurableStore;
use crate::queue::{BatchQueue, PushError};
use crate::registry::ModelRegistry;
use crate::scrub::{ScrubSummary, Scrubber};
use crate::stats::ServeStats;

/// Batching, admission, and deadline policy for every lane.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Largest batch one evaluate pass may carry.
    pub max_batch: usize,
    /// How long an open batch waits for company before evaluating.
    pub max_wait: Duration,
    /// Bounded queue capacity per variant (admission limit).
    pub queue_cap: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Synthetic per-batch service time, for load tests and saturation
    /// experiments (zero in production configurations).
    pub service_delay: Duration,
    /// How often the background scrubber sweeps protected variant
    /// storage (`None` disables the scrubber thread;
    /// [`Engine::scrub_now`] always works).
    pub scrub_period: Option<Duration>,
    /// Fault-injection hook for supervisor tests: a lane worker panics
    /// mid-batch when any batched input's first element bit-equals this
    /// value (`None` in production configurations).
    pub panic_trigger: Option<f32>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_cap: 256,
            default_deadline: Duration::from_secs(2),
            service_delay: Duration::ZERO,
            scrub_period: None,
            panic_trigger: None,
        }
    }
}

/// Why a request was not answered with an output vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No variant registered under this id.
    UnknownModel(String),
    /// Input width does not match the variant.
    BadInput {
        /// The variant's input width.
        expected: usize,
        /// What the request carried.
        got: usize,
    },
    /// The variant's queue is full — request shed.
    Overloaded,
    /// The deadline passed before the request was evaluated.
    DeadlineExceeded,
    /// The engine is shutting down.
    ShuttingDown,
    /// The lane worker died mid-batch (it was caught and restarted by
    /// the supervisor; this request's batch was lost).
    Internal,
}

impl ServeError {
    /// The HTTP status the protocol layer maps this error onto.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::UnknownModel(_) => 404,
            ServeError::BadInput { .. } => 400,
            ServeError::Overloaded => 429,
            ServeError::DeadlineExceeded => 504,
            ServeError::ShuttingDown => 503,
            ServeError::Internal => 500,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(id) => write!(f, "unknown model variant: {id}"),
            ServeError::BadInput { expected, got } => {
                write!(f, "bad input width: expected {expected}, got {got}")
            }
            ServeError::Overloaded => write!(f, "overloaded: queue full, request shed"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before evaluation"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Internal => write!(f, "internal error: batch lost to a worker fault"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One admitted request waiting in a lane.
#[derive(Debug)]
struct Job {
    input: Vec<f32>,
    deadline: Instant,
    reply: mpsc::Sender<Result<Vec<f32>, ServeError>>,
}

#[derive(Debug)]
struct Lane {
    queue: Arc<BatchQueue<Job>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// The serving engine — also the in-process client used by tests.
#[derive(Debug)]
pub struct Engine {
    registry: Arc<ModelRegistry>,
    cfg: EngineConfig,
    lanes: HashMap<String, Lane>,
    stats: Arc<ServeStats>,
    stopping: AtomicBool,
    scrubber: Mutex<Option<Scrubber>>,
    store: Mutex<Option<Arc<DurableStore>>>,
}

impl Engine {
    /// Spawn one micro-batching lane per variant currently registered.
    /// (Variants registered afterwards are hot-swappable snapshots of
    /// *existing* lanes; new ids need a new engine.) Each lane worker
    /// runs under a supervisor: a panic mid-batch fails that batch
    /// closed (the in-flight requests get [`ServeError::Internal`]) and
    /// the worker restarts. With
    /// [`scrub_period`](EngineConfig::scrub_period) set, a background
    /// scrubber sweeps protected variant storage at that cadence.
    pub fn start(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Engine {
        let stats = Arc::new(ServeStats::default());
        let mut lanes = HashMap::new();
        for id in registry.ids() {
            let queue = Arc::new(BatchQueue::bounded(cfg.queue_cap));
            let worker = {
                let (id, queue) = (id.clone(), Arc::clone(&queue));
                let (registry, stats) = (Arc::clone(&registry), Arc::clone(&stats));
                std::thread::Builder::new()
                    .name(format!("af-serve:{id}"))
                    .spawn(move || loop {
                        // Supervisor: run_lane returns only when the
                        // queue closes; a panic unwinds here, dropping
                        // the in-flight batch's reply senders (each
                        // caller sees Internal), and the lane restarts.
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_lane(&id, &queue, &registry, &stats, cfg);
                        }));
                        match outcome {
                            Ok(()) => break,
                            Err(_) => stats.on_worker_restart(),
                        }
                    })
                    .expect("spawn lane worker")
            };
            lanes.insert(
                id,
                Lane {
                    queue,
                    worker: Mutex::new(Some(worker)),
                },
            );
        }
        let scrubber = cfg
            .scrub_period
            .map(|period| Scrubber::start(Arc::clone(&registry), Arc::clone(&stats), period));
        Engine {
            registry,
            cfg,
            lanes,
            stats,
            stopping: AtomicBool::new(false),
            scrubber: Mutex::new(scrubber),
            store: Mutex::new(None),
        }
    }

    /// Attach the durable store behind this engine's registry so
    /// `GET /stats` reports its counters (checkpoint version, WAL
    /// length, recovery figures) under a `"store"` key. Attachment is
    /// reporting-only: journaling is wired at the registry, not here.
    pub fn attach_store(&self, store: Arc<DurableStore>) {
        *self.store.lock().expect("store slot poisoned") = Some(store);
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The engine's counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The engine's policy.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Current queue depth of a lane.
    pub fn queue_depth(&self, id: &str) -> Option<usize> {
        self.lanes.get(id).map(|l| l.queue.len())
    }

    /// Serve one request under the default deadline (blocking).
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]: unknown variant, bad width, shed, expired
    /// deadline, or shutdown.
    pub fn infer(&self, model: &str, input: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.infer_deadline(model, input, self.cfg.default_deadline)
    }

    /// Serve one request that must complete within `deadline`.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]: unknown variant, bad width, shed, expired
    /// deadline, or shutdown.
    pub fn infer_deadline(
        &self,
        model: &str,
        input: Vec<f32>,
        deadline: Duration,
    ) -> Result<Vec<f32>, ServeError> {
        self.stats.on_received();
        if self.stopping.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let lane = self
            .lanes
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let variant = self
            .registry
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let expected = variant.model.in_dim();
        if input.len() != expected {
            return Err(ServeError::BadInput {
                expected,
                got: input.len(),
            });
        }
        let (reply, receiver) = mpsc::channel();
        let job = Job {
            input,
            deadline: Instant::now() + deadline,
            reply,
        };
        lane.queue.try_push(job).map_err(|e| match e {
            PushError::Full => {
                self.stats.on_shed();
                ServeError::Overloaded
            }
            PushError::Closed => ServeError::ShuttingDown,
        })?;
        self.stats.on_admitted();
        // A dropped reply sender means the worker never answered: either
        // an orderly shutdown closed the lane, or the worker panicked
        // mid-batch and the supervisor is restarting it.
        receiver.recv().unwrap_or_else(|_| {
            Err(if self.stopping.load(Ordering::SeqCst) {
                ServeError::ShuttingDown
            } else {
                ServeError::Internal
            })
        })
    }

    /// Run one scrub pass inline over every protected variant (the same
    /// sweep the background scrubber performs on its period).
    pub fn scrub_now(&self) -> ScrubSummary {
        crate::scrub::scrub_pass(&self.registry, &self.stats)
    }

    /// Engine-wide stats plus per-lane detail as a JSON document (the
    /// body of `GET /stats`).
    pub fn stats_json(&self) -> String {
        let mut lanes = String::new();
        let (mut plans_built, mut plan_cache_hits) = (0usize, 0usize);
        for (i, id) in self.registry.ids().iter().enumerate() {
            if i > 0 {
                lanes.push(',');
            }
            let depth = self.queue_depth(id).unwrap_or(0);
            match self.registry.get(id) {
                Some(v) => {
                    plans_built += v.plans_built;
                    plan_cache_hits += v.plan_cache_hits;
                    let act = v
                        .model
                        .act_format_name()
                        .map_or("null".to_string(), |a| format!("\"{a}\""));
                    let protection = match &v.protected {
                        Some(store) => {
                            let store = store.lock().expect("protected store poisoned");
                            let ecc = store.ecc_stats();
                            format!(
                                "true,\"ecc_corrected\":{},\"ecc_uncorrectable\":{},\
                                 \"store_rebuilds\":{}",
                                ecc.corrected,
                                ecc.detected_uncorrectable,
                                store.rebuilds(),
                            )
                        }
                        None => "false".to_string(),
                    };
                    lanes.push_str(&format!(
                        "{{\"id\":\"{}\",\"family\":\"{}\",\"weight_format\":\"{}\",\
                         \"act_format\":{},\"in_dim\":{},\"out_dim\":{},\"params\":{},\
                         \"generation\":{},\"warmed_codebooks\":{},\"plans_built\":{},\
                         \"plan_cache_hits\":{},\"protected\":{},\"fused_gemm\":{},\
                         \"fused_layers\":{},\"weight_bytes\":{},\"queue_depth\":{}}}",
                        v.id,
                        v.model.family().label(),
                        v.model.format_name(),
                        act,
                        v.model.in_dim(),
                        v.model.out_dim(),
                        v.model.param_count(),
                        v.generation,
                        v.warmed_codebooks,
                        v.plans_built,
                        v.plan_cache_hits,
                        protection,
                        v.model.fused_layers() > 0,
                        v.model.fused_layers(),
                        v.model.weight_bytes(),
                        depth,
                    ));
                }
                None => lanes.push_str(&format!("{{\"id\":\"{id}\",\"queue_depth\":{depth}}}")),
            }
        }
        let store = self
            .store
            .lock()
            .expect("store slot poisoned")
            .as_ref()
            .map_or("null".to_string(), |s| s.stats_json());
        format!(
            "{{{},\"plans_built\":{},\"plan_cache_hits\":{},\"max_batch\":{},\
             \"max_wait_us\":{},\"queue_cap\":{},\"store\":{},\"variants\":[{}]}}\n",
            self.stats.snapshot().json_fields(),
            plans_built,
            plan_cache_hits,
            self.cfg.max_batch,
            self.cfg.max_wait.as_micros(),
            self.cfg.queue_cap,
            store,
            lanes,
        )
    }

    /// Stop admitting, drain every lane, and join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(mut scrubber) = self.scrubber.lock().expect("scrubber poisoned").take() {
            scrubber.stop();
        }
        for lane in self.lanes.values() {
            lane.queue.close();
        }
        for lane in self.lanes.values() {
            if let Some(worker) = lane.worker.lock().expect("lane poisoned").take() {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One lane's worker loop: form a batch, drop the dead, evaluate the
/// rest as a single pass, fan the rows back out.
fn run_lane(
    id: &str,
    queue: &BatchQueue<Job>,
    registry: &ModelRegistry,
    stats: &ServeStats,
    cfg: EngineConfig,
) {
    // Worker-lifetime buffers: the flat input rows and the model's
    // ping-pong scratch grow to the steady-state batch size once, after
    // which the evaluate pass performs no heap allocation (the variant's
    // frozen plans quantize in place and each matmul writes into
    // scratch).
    let mut flat: Vec<f32> = Vec::new();
    let mut scratch = BatchScratch::new();
    while let Some(batch) = queue.pop_batch(cfg.max_batch, cfg.max_wait) {
        if batch.is_empty() {
            continue;
        }
        if cfg.service_delay > Duration::ZERO {
            std::thread::sleep(cfg.service_delay);
        }
        let snapshot = registry.get(id);
        let now = Instant::now();
        let mut live: Vec<Job> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline < now {
                stats.on_expired();
                let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let Some(variant) = snapshot else {
            for job in live {
                let _ = job
                    .reply
                    .send(Err(ServeError::UnknownModel(id.to_string())));
            }
            continue;
        };
        // A hot swap may have changed the input width between admission
        // and evaluation; answer mismatches instead of panicking.
        let in_dim = variant.model.in_dim();
        let mut rows: Vec<Job> = Vec::with_capacity(live.len());
        for job in live {
            if job.input.len() == in_dim {
                rows.push(job);
            } else {
                let _ = job.reply.send(Err(ServeError::BadInput {
                    expected: in_dim,
                    got: job.input.len(),
                }));
            }
        }
        if rows.is_empty() {
            continue;
        }
        // Supervisor fault hook: panic after the batch is formed, so
        // the in-flight reply senders drop on unwind exactly as a real
        // evaluation fault would leave them.
        if let Some(trigger) = cfg.panic_trigger {
            if rows.iter().any(|j| {
                j.input
                    .first()
                    .is_some_and(|v| v.to_bits() == trigger.to_bits())
            }) {
                panic!("injected worker fault in lane {id}");
            }
        }
        stats.on_batch(rows.len());
        flat.clear();
        for job in &rows {
            flat.extend_from_slice(&job.input);
        }
        let outputs = variant
            .model
            .evaluate_batch_into(&flat, rows.len(), &mut scratch);
        let out_dim = variant.model.out_dim();
        for (r, job) in rows.into_iter().enumerate() {
            stats.on_completed();
            let _ = job
                .reply
                .send(Ok(outputs[r * out_dim..(r + 1) * out_dim].to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::VariantSpec;
    use adaptivfloat::FormatKind;
    use af_models::{FrozenMlp, ModelFamily};

    fn registry() -> Arc<ModelRegistry> {
        let reg = ModelRegistry::new();
        reg.register(&VariantSpec::fp32(
            "resnet/fp32",
            ModelFamily::ResNet,
            3,
            &[12, 24, 6],
        ))
        .unwrap();
        reg.register(&VariantSpec::quantized(
            "resnet/adaptivfloat8",
            ModelFamily::ResNet,
            FormatKind::AdaptivFloat,
            8,
            3,
            &[12, 24, 6],
        ))
        .unwrap();
        Arc::new(reg)
    }

    #[test]
    fn batched_replies_are_bit_identical_to_direct_evaluation() {
        let reg = registry();
        let engine = Arc::new(Engine::start(
            Arc::clone(&reg),
            EngineConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(5),
                ..EngineConfig::default()
            },
        ));
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let id = if i % 2 == 0 {
                        "resnet/fp32"
                    } else {
                        "resnet/adaptivfloat8"
                    };
                    let x = FrozenMlp::synth_inputs(100 + i, 1, 12);
                    (id, x.row(0).to_vec(), engine.infer(id, x.row(0).to_vec()))
                })
            })
            .collect();
        for h in handles {
            let (id, input, got) = h.join().unwrap();
            let direct = reg.get(id).unwrap().model.evaluate(&input);
            let got: Vec<u32> = got.unwrap().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "{id}");
        }
        let snap = engine.stats().snapshot();
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.shed, 0);
    }

    #[test]
    fn unknown_model_and_bad_width_are_rejected_at_admission() {
        let engine = Engine::start(registry(), EngineConfig::default());
        assert!(matches!(
            engine.infer("nope", vec![0.0; 12]),
            Err(ServeError::UnknownModel(_))
        ));
        assert_eq!(
            engine.infer("resnet/fp32", vec![0.0; 5]),
            Err(ServeError::BadInput {
                expected: 12,
                got: 5
            })
        );
    }

    #[test]
    fn saturated_queue_sheds_instead_of_queueing_unboundedly() {
        let engine = Arc::new(Engine::start(
            registry(),
            EngineConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_cap: 2,
                service_delay: Duration::from_millis(60),
                ..EngineConfig::default()
            },
        ));
        let handles: Vec<_> = (0..10u64)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let x = FrozenMlp::synth_inputs(i, 1, 12);
                    engine.infer("resnet/fp32", x.row(0).to_vec())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let shed = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Overloaded)))
            .count();
        assert!(ok >= 1, "some requests must be served");
        assert!(shed >= 1, "a saturated bounded queue must shed");
        assert_eq!(ok + shed, 10, "unexpected third outcome: {results:?}");
        assert_eq!(engine.stats().snapshot().shed, shed as u64);
    }

    #[test]
    fn expired_deadline_is_reported_not_evaluated() {
        let engine = Engine::start(
            registry(),
            EngineConfig {
                max_batch: 4,
                max_wait: Duration::ZERO,
                service_delay: Duration::from_millis(40),
                ..EngineConfig::default()
            },
        );
        let x = FrozenMlp::synth_inputs(9, 1, 12);
        // Deadline far shorter than the synthetic service time.
        let got = engine.infer_deadline("resnet/fp32", x.row(0).to_vec(), Duration::from_millis(5));
        assert_eq!(got, Err(ServeError::DeadlineExceeded));
        assert_eq!(engine.stats().snapshot().expired, 1);
    }

    #[test]
    fn shutdown_refuses_new_work() {
        let engine = Engine::start(registry(), EngineConfig::default());
        engine.shutdown();
        let x = FrozenMlp::synth_inputs(1, 1, 12);
        assert_eq!(
            engine.infer("resnet/fp32", x.row(0).to_vec()),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn panicked_worker_fails_the_batch_closed_and_restarts() {
        let trigger = 1234.5f32;
        let engine = Engine::start(
            registry(),
            EngineConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                panic_trigger: Some(trigger),
                ..EngineConfig::default()
            },
        );
        let mut poison = vec![0.0f32; 12];
        poison[0] = trigger;
        // The poisoned batch fails with an explicit 500, never a hang.
        assert_eq!(
            engine.infer("resnet/fp32", poison),
            Err(ServeError::Internal)
        );
        assert_eq!(ServeError::Internal.http_status(), 500);
        // The supervisor restarted the worker: the same lane still serves.
        let x = FrozenMlp::synth_inputs(7, 1, 12);
        let direct = engine
            .registry()
            .get("resnet/fp32")
            .unwrap()
            .model
            .evaluate(x.row(0));
        let got = engine.infer("resnet/fp32", x.row(0).to_vec()).unwrap();
        assert_eq!(got, direct);
        assert!(engine.stats().snapshot().worker_restarts >= 1);
    }

    #[test]
    fn stats_json_lists_variants() {
        let engine = Engine::start(registry(), EngineConfig::default());
        let json = engine.stats_json();
        assert!(json.contains("\"id\":\"resnet/adaptivfloat8\""));
        assert!(json.contains("\"weight_format\":\"AdaptivFloat<8,3>\""));
        assert!(json.contains("\"queue_depth\":0"));
        assert!(json.contains("\"protected\":false"));
        assert!(json.contains("\"fused_gemm\":false"));
        assert!(json.contains("\"fused_layers\":0"));
        assert!(json.contains("\"weight_bytes\":"));
        assert!(json.contains("\"worker_restarts\":0"));
        // The quantized variant froze 2 weight + 2 activation plans; the
        // fp32 variant froze none.
        assert!(json.contains("\"plans_built\":4"));
        assert!(json.contains("\"plan_cache_hits\":"));
    }
}
