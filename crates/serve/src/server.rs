//! The TCP front end: a `std::net::TcpListener` acceptor plus one
//! handler thread per connection, routing the three endpoints onto an
//! [`Engine`].
//!
//! Routes:
//!
//! * `GET /healthz` — `200 ok` while the server is accepting.
//! * `GET /stats` — engine counters and per-variant detail as JSON.
//! * `POST /v1/infer/<variant>` — body is a length-delimited `f32`
//!   vector ([`crate::http::encode_f32_body`]); an optional
//!   `x-deadline-ms` header overrides the engine's default deadline.
//!   Errors map onto [`crate::ServeError::http_status`]: 404 unknown variant,
//!   400 bad width or framing, 429 shed, 504 deadline, 503 shutdown,
//!   500 worker fault. Protocol violations answer before the engine is
//!   involved: missing or garbage `Content-Length` is a 400, one
//!   exceeding [`crate::http::MAX_BODY`] is a 413.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::batcher::Engine;
use crate::http::{
    decode_f32_body, encode_f32_body, read_request, violation_status, write_response, Request,
};

/// How long a connection handler blocks in `read` before re-checking
/// for shutdown.
const READ_POLL: Duration = Duration::from_millis(200);

/// A running serving endpoint bound to a local address.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    engine: Arc<Engine>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// accepting connections for `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let (stop, engine) = (Arc::clone(&stop), Arc::clone(&engine));
            std::thread::Builder::new()
                .name("af-serve:accept".to_string())
                .spawn(move || accept_loop(&listener, &stop, &engine))?
        };
        Ok(Server {
            addr,
            stop,
            acceptor: Mutex::new(Some(acceptor)),
            engine,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stop accepting, wake the acceptor, and join it. Existing
    /// connections drain on their next read timeout. Idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.lock().expect("acceptor poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &Arc<AtomicBool>, engine: &Arc<Engine>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let (stop, engine) = (Arc::clone(stop), Arc::clone(engine));
        let _ = std::thread::Builder::new()
            .name("af-serve:conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &stop, &engine);
            });
    }
}

fn handle_connection(stream: TcpStream, stop: &AtomicBool, engine: &Engine) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Protocol violations carry their own status (413 for
                // an oversized body); anything else malformed is a 400.
                let status = violation_status(&e).unwrap_or(400);
                write_response(&mut writer, status, "text/plain", e.to_string().as_bytes())?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        route(&request, engine, &mut writer)?;
    }
}

fn route(request: &Request, engine: &Engine, writer: &mut impl io::Write) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => write_response(writer, 200, "text/plain", b"ok"),
        ("GET", "/stats") => write_response(
            writer,
            200,
            "application/json",
            engine.stats_json().as_bytes(),
        ),
        ("POST", path) if path.starts_with("/v1/infer/") => {
            let variant = &path["/v1/infer/".len()..];
            infer_route(request, variant, engine, writer)
        }
        (_, "/healthz" | "/stats") | ("POST", _) => {
            write_response(writer, 405, "text/plain", b"method not allowed")
        }
        _ => write_response(writer, 404, "text/plain", b"no such route"),
    }
}

fn infer_route(
    request: &Request,
    variant: &str,
    engine: &Engine,
    writer: &mut impl io::Write,
) -> io::Result<()> {
    let Some(input) = decode_f32_body(&request.body) else {
        return write_response(writer, 400, "text/plain", b"malformed f32 body");
    };
    let deadline = match request.header("x-deadline-ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => return write_response(writer, 400, "text/plain", b"malformed x-deadline-ms"),
        },
        None => None,
    };
    let result = match deadline {
        Some(d) => engine.infer_deadline(variant, input, d),
        None => engine.infer(variant, input),
    };
    match result {
        Ok(output) => write_response(
            writer,
            200,
            "application/octet-stream",
            &encode_f32_body(&output),
        ),
        Err(e) => write_response(
            writer,
            e.http_status(),
            "text/plain",
            e.to_string().as_bytes(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::EngineConfig;
    use crate::client::Client;
    use crate::registry::{ModelRegistry, VariantSpec};
    use af_models::ModelFamily;

    fn server() -> Server {
        let reg = ModelRegistry::new();
        reg.register(&VariantSpec::fp32(
            "m",
            ModelFamily::Seq2Seq,
            11,
            &[8, 12, 4],
        ))
        .unwrap();
        let engine = Arc::new(Engine::start(Arc::new(reg), EngineConfig::default()));
        Server::bind("127.0.0.1:0", engine).unwrap()
    }

    #[test]
    fn routes_health_stats_and_errors() {
        let server = server();
        let mut client = Client::connect(server.addr()).unwrap();
        assert!(client.healthz().unwrap());
        let stats = client.stats_json().unwrap();
        assert!(stats.contains("\"received\":"));
        // Unknown route and unknown variant.
        let err = client.infer("ghost", &[0.0; 8]).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Http { status: 404, .. }
        ));
        let err = client.infer("m", &[0.0; 3]).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Http { status: 400, .. }
        ));
        server.shutdown();
    }

    #[test]
    fn protocol_violations_answer_with_specific_statuses() {
        use crate::http::{read_response, MAX_BODY};
        use std::io::Write;

        let server = server();
        let exchange = |raw: String| -> u16 {
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut writer = BufWriter::new(stream.try_clone().unwrap());
            let mut reader = BufReader::new(stream);
            writer.write_all(raw.as_bytes()).unwrap();
            writer.flush().unwrap();
            read_response(&mut reader).unwrap().status
        };
        assert_eq!(
            exchange("POST /v1/infer/m HTTP/1.1\r\ncontent-length: junk\r\n\r\n".to_string()),
            400,
            "garbage content-length"
        );
        assert_eq!(
            exchange(format!(
                "POST /v1/infer/m HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY + 1
            )),
            413,
            "overlong content-length"
        );
        assert_eq!(
            exchange("POST /v1/infer/m HTTP/1.1\r\n\r\n".to_string()),
            400,
            "missing content-length"
        );
        server.shutdown();
    }

    #[test]
    fn served_output_matches_direct_evaluation_bitwise() {
        let server = server();
        let engine = Arc::clone(server.engine());
        let mut client = Client::connect(server.addr()).unwrap();
        let x = af_models::FrozenMlp::synth_inputs(3, 1, 8);
        let input = x.row(0).to_vec();
        let served = client.infer("m", &input).unwrap();
        let direct = engine.registry().get("m").unwrap().model.evaluate(&input);
        let got: Vec<u32> = served.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        server.shutdown();
    }
}
