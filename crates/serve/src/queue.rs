//! The bounded micro-batching queue: admission control and batch
//! formation in one structure.
//!
//! [`BatchQueue::try_push`] is the admission edge — it never blocks and
//! never grows past the configured capacity, so overload turns into an
//! explicit [`PushError::Full`] (a load-shed response upstream) instead
//! of unbounded queueing delay. [`BatchQueue::pop_batch`] is the batch
//! former: it blocks for the first request, then keeps collecting until
//! either `max_batch` requests are in hand or `max_wait` has elapsed
//! since the batch opened — the classic latency/throughput dial.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why an admission attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The queue has been closed (engine shutting down).
    Closed,
}

/// A bounded MPMC queue with deadline-driven batch draining.
#[derive(Debug)]
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BatchQueue<T> {
    /// A queue admitting at most `cap` waiting items.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn bounded(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        BatchQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cap,
        }
    }

    /// Admit one item without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        self.available.notify_one();
        Ok(())
    }

    /// Number of items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`];
    /// waiting poppers drain what is left and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Form the next batch: block for the first item, then collect until
    /// `max_batch` items are in hand or `max_wait` has elapsed since the
    /// batch opened. Returns `None` only when the queue is closed and
    /// fully drained.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<T>> {
        assert!(max_batch > 0, "max_batch must be positive");
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if !s.items.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("queue poisoned");
        }
        let deadline = Instant::now() + max_wait;
        let mut batch = Vec::with_capacity(max_batch.min(s.items.len()));
        loop {
            while batch.len() < max_batch {
                match s.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max_batch || s.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = self
                .available
                .wait_timeout(s, deadline - now)
                .expect("queue poisoned");
            s = guard;
            if timeout.timed_out() && s.items.is_empty() {
                break;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_instead_of_growing() {
        let q = BatchQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        // Draining frees capacity again.
        let batch = q.pop_batch(8, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
        q.try_push(4).unwrap();
    }

    #[test]
    fn full_batch_returns_without_waiting() {
        let q = BatchQueue::bounded(16);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_secs(5)).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert!(t0.elapsed() < Duration::from_secs(1), "must not wait");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn partial_batch_released_at_deadline() {
        let q = BatchQueue::bounded(16);
        q.try_push(7).unwrap();
        let t0 = Instant::now();
        let batch = q.pop_batch(8, Duration::from_millis(30)).unwrap();
        assert_eq!(batch, vec![7]);
        let waited = t0.elapsed();
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");
    }

    #[test]
    fn close_wakes_poppers_and_rejects_pushes() {
        let q = Arc::new(BatchQueue::<u32>::bounded(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.try_push(1), Err(PushError::Closed));
    }

    #[test]
    fn late_arrivals_join_an_open_batch() {
        let q = Arc::new(BatchQueue::bounded(16));
        q.try_push(1).unwrap();
        let pusher = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(15));
                q.try_push(2).unwrap();
            })
        };
        let batch = q.pop_batch(2, Duration::from_secs(5)).unwrap();
        pusher.join().unwrap();
        assert_eq!(batch, vec![1, 2], "second arrival must close the batch");
    }
}
