//! A persistent-connection client for the serving endpoint — used by
//! the e2e tests and the `serve_load` harness, and small enough to
//! embed anywhere.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

use crate::http::{decode_f32_body, encode_f32_body, read_response, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server answered with a non-200 status.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The server's plain-text error body.
        message: String,
    },
    /// The server answered 200 but the body did not decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Http { status, message } => write!(f, "http {status}: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One keep-alive connection to a serving endpoint.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Open a persistent connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        extra_header: Option<(&str, &str)>,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        write!(self.writer, "{method} {path} HTTP/1.1\r\n")?;
        if let Some((name, value)) = extra_header {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        write!(self.writer, "content-length: {}\r\n\r\n", body.len())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        Ok(read_response(&mut self.reader)?)
    }

    /// `GET /healthz`; `true` when the server answers `200`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn healthz(&mut self) -> Result<bool, ClientError> {
        Ok(self.round_trip("GET", "/healthz", None, &[])?.status == 200)
    }

    /// `GET /stats` — the engine's counters as a JSON document.
    ///
    /// # Errors
    ///
    /// Transport failure, or a non-200 status.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let resp = self.round_trip("GET", "/stats", None, &[])?;
        if resp.status != 200 {
            return Err(ClientError::Http {
                status: resp.status,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        Ok(String::from_utf8_lossy(&resp.body).into_owned())
    }

    /// Infer under the server's default deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] carries the serving-layer status (404
    /// unknown variant, 400 bad input, 429 shed, 504 deadline).
    pub fn infer(&mut self, variant: &str, input: &[f32]) -> Result<Vec<f32>, ClientError> {
        self.infer_inner(variant, input, None)
    }

    /// Infer with an explicit deadline, in milliseconds.
    ///
    /// # Errors
    ///
    /// Same as [`Client::infer`].
    pub fn infer_with_deadline_ms(
        &mut self,
        variant: &str,
        input: &[f32],
        deadline_ms: u64,
    ) -> Result<Vec<f32>, ClientError> {
        self.infer_inner(variant, input, Some(deadline_ms))
    }

    fn infer_inner(
        &mut self,
        variant: &str,
        input: &[f32],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<f32>, ClientError> {
        let path = format!("/v1/infer/{variant}");
        let deadline = deadline_ms.map(|ms| ms.to_string());
        let header = deadline.as_deref().map(|v| ("x-deadline-ms", v));
        let body = encode_f32_body(input);
        let resp = self.round_trip("POST", &path, header, &body)?;
        if resp.status != 200 {
            return Err(ClientError::Http {
                status: resp.status,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        decode_f32_body(&resp.body)
            .ok_or_else(|| ClientError::Protocol("undecodable f32 response body".to_string()))
    }
}
