//! A persistent-connection client for the serving endpoint — used by
//! the e2e tests and the `serve_load` harness, and small enough to
//! embed anywhere.
//!
//! [`Client::infer_with_retry`] adds a bounded retry loop with
//! exponential backoff and deterministic jitter for the transient
//! failure modes of a self-healing server: load shed (`429`), shutdown
//! or restart (`503`), and a connection dropped mid-exchange (e.g. by a
//! supervisor-restarted worker). Inference is idempotent, so replaying
//! the request is always safe; non-transient errors (`400`, `404`,
//! `500`, `504`) surface immediately. Every attempt — including its
//! backoff sleep — is budgeted against the caller's single end-to-end
//! deadline.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use af_resilience::SplitMix64;

use crate::http::{decode_f32_body, encode_f32_body, read_response, Response};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server answered with a non-200 status.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The server's plain-text error body.
        message: String,
    },
    /// The server answered 200 but the body did not decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Http { status, message } => write!(f, "http {status}: {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Bounded-retry policy for [`Client::infer_with_retry`]: exponential
/// backoff with deterministic jitter, always capped by the caller's
/// end-to-end deadline.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` disables retry).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep (before jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream — give concurrent
    /// clients distinct seeds so their retries decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry number `attempt` (1-based):
    /// `min(max_backoff, base_backoff · 2^(attempt−1))`, scaled by a
    /// jitter factor drawn uniformly from `[0.5, 1.0)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self.base_backoff.saturating_mul(
            1u32.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u32::MAX),
        );
        let capped = doubled.min(self.max_backoff);
        let mut rng = SplitMix64::for_element(self.jitter_seed, 0x5E77_1E5B, u64::from(attempt));
        capped.mul_f64(0.5 + 0.5 * rng.next_f64())
    }
}

/// Whether an error is a transient condition worth replaying an
/// idempotent request over: a shed (`429`), a shutting-down or
/// restarting server (`503`), or a connection that died mid-exchange.
fn is_transient(err: &ClientError) -> bool {
    match err {
        ClientError::Http { status, .. } => matches!(status, 429 | 503),
        ClientError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
        ),
        ClientError::Protocol(_) => false,
    }
}

/// One keep-alive connection to a serving endpoint.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Open a persistent connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let (reader, writer) = Self::open(addr)?;
        Ok(Client {
            addr,
            reader,
            writer,
        })
    }

    fn open(addr: SocketAddr) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok((reader, writer))
    }

    /// Drop the current connection and dial the endpoint again — the
    /// recovery step when the server closed the socket mid-exchange.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the new connection cannot be established.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = Self::open(self.addr)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        extra_header: Option<(&str, &str)>,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        write!(self.writer, "{method} {path} HTTP/1.1\r\n")?;
        if let Some((name, value)) = extra_header {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        write!(self.writer, "content-length: {}\r\n\r\n", body.len())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        Ok(read_response(&mut self.reader)?)
    }

    /// `GET /healthz`; `true` when the server answers `200`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure.
    pub fn healthz(&mut self) -> Result<bool, ClientError> {
        Ok(self.round_trip("GET", "/healthz", None, &[])?.status == 200)
    }

    /// `GET /stats` — the engine's counters as a JSON document.
    ///
    /// # Errors
    ///
    /// Transport failure, or a non-200 status.
    pub fn stats_json(&mut self) -> Result<String, ClientError> {
        let resp = self.round_trip("GET", "/stats", None, &[])?;
        if resp.status != 200 {
            return Err(ClientError::Http {
                status: resp.status,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        Ok(String::from_utf8_lossy(&resp.body).into_owned())
    }

    /// Infer under the server's default deadline.
    ///
    /// # Errors
    ///
    /// [`ClientError::Http`] carries the serving-layer status (404
    /// unknown variant, 400 bad input, 429 shed, 504 deadline).
    pub fn infer(&mut self, variant: &str, input: &[f32]) -> Result<Vec<f32>, ClientError> {
        self.infer_inner(variant, input, None)
    }

    /// Infer with an explicit deadline, in milliseconds.
    ///
    /// # Errors
    ///
    /// Same as [`Client::infer`].
    pub fn infer_with_deadline_ms(
        &mut self,
        variant: &str,
        input: &[f32],
        deadline_ms: u64,
    ) -> Result<Vec<f32>, ClientError> {
        self.infer_inner(variant, input, Some(deadline_ms))
    }

    /// Infer with bounded retry: transient failures (`429`, `503`, or a
    /// connection dropped mid-exchange) are replayed with exponential
    /// backoff and jitter under `policy`, all within one end-to-end
    /// `deadline`. Each attempt tells the server only the *remaining*
    /// budget via `x-deadline-ms`. Returns the output and the number of
    /// attempts it took.
    ///
    /// # Errors
    ///
    /// The last error once attempts or deadline budget run out;
    /// non-transient errors (`400`, `404`, `500`, `504`) immediately.
    pub fn infer_with_retry(
        &mut self,
        variant: &str,
        input: &[f32],
        deadline: Duration,
        policy: &RetryPolicy,
    ) -> Result<(Vec<f32>, u32), ClientError> {
        let start = Instant::now();
        let mut attempt = 1u32;
        loop {
            let remaining = deadline.saturating_sub(start.elapsed());
            let remaining_ms = u64::try_from(remaining.as_millis())
                .unwrap_or(u64::MAX)
                .max(1);
            match self.infer_inner(variant, input, Some(remaining_ms)) {
                Ok(out) => return Ok((out, attempt)),
                Err(err) => {
                    let budget = deadline.saturating_sub(start.elapsed());
                    if !is_transient(&err) || attempt >= policy.max_attempts || budget.is_zero() {
                        return Err(err);
                    }
                    // A dead transport needs a fresh connection before
                    // the replay; HTTP-level sheds keep the socket.
                    if matches!(err, ClientError::Io(_)) {
                        self.reconnect()?;
                    }
                    std::thread::sleep(policy.backoff(attempt).min(budget));
                    attempt += 1;
                }
            }
        }
    }

    fn infer_inner(
        &mut self,
        variant: &str,
        input: &[f32],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<f32>, ClientError> {
        let path = format!("/v1/infer/{variant}");
        let deadline = deadline_ms.map(|ms| ms.to_string());
        let header = deadline.as_deref().map(|v| ("x-deadline-ms", v));
        let body = encode_f32_body(input);
        let resp = self.round_trip("POST", &path, header, &body)?;
        if resp.status != 200 {
            return Err(ClientError::Http {
                status: resp.status,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        decode_f32_body(&resp.body)
            .ok_or_else(|| ClientError::Protocol("undecodable f32 response body".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_under_the_cap_with_bounded_jitter() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            jitter_seed: 7,
        };
        for attempt in 1..=5 {
            let nominal = Duration::from_millis(10 * (1 << (attempt - 1))).min(policy.max_backoff);
            let got = policy.backoff(attempt);
            assert!(
                got >= nominal.mul_f64(0.5) && got < nominal,
                "attempt {attempt}: {got:?} outside [{:?}, {nominal:?})",
                nominal.mul_f64(0.5),
            );
            // Deterministic: the same attempt always jitters the same way.
            assert_eq!(got, policy.backoff(attempt));
        }
        // Distinct seeds decorrelate.
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy
        };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn only_transient_failures_are_retried() {
        let http = |status| ClientError::Http {
            status,
            message: String::new(),
        };
        assert!(is_transient(&http(429)));
        assert!(is_transient(&http(503)));
        for status in [400, 404, 500, 504] {
            assert!(!is_transient(&http(status)), "{status} must not retry");
        }
        assert!(is_transient(&ClientError::Io(io::Error::from(
            io::ErrorKind::ConnectionReset
        ))));
        assert!(is_transient(&ClientError::Io(io::Error::from(
            io::ErrorKind::UnexpectedEof
        ))));
        assert!(!is_transient(&ClientError::Io(io::Error::from(
            io::ErrorKind::PermissionDenied
        ))));
        assert!(!is_transient(&ClientError::Protocol("x".to_string())));
    }
}
