//! Serving counters: lock-free atomics bumped on the hot path, read as
//! a consistent-enough snapshot by `GET /stats` and the load harness.

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-lifetime serving counters (relaxed atomics — each counter is
/// individually exact; a snapshot across counters is approximate, which
/// is fine for monitoring).
#[derive(Debug, Default)]
pub struct ServeStats {
    received: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    worker_restarts: AtomicU64,
    scrub_passes: AtomicU64,
    rebuilds: AtomicU64,
    last_scrub_us: AtomicU64,
}

impl ServeStats {
    /// A request reached admission.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered a variant queue.
    pub fn on_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was shed because its queue was full.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request's deadline expired before evaluation.
    pub fn on_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was answered successfully.
    pub fn on_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A batch of `size` live requests went through one evaluate pass.
    pub fn on_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// A panicked lane worker was caught and restarted.
    pub fn on_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// A scrub pass over every protected variant completed, taking
    /// `elapsed_us` microseconds.
    pub fn on_scrub_pass(&self, elapsed_us: u64) {
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        self.last_scrub_us.store(elapsed_us, Ordering::Relaxed);
    }

    /// An uncorrectable storage error forced a rebuild + hot swap.
    pub fn on_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Read every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            last_scrub_us: self.last_scrub_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests that reached admission.
    pub received: u64,
    /// Requests that entered a queue.
    pub admitted: u64,
    /// Requests shed at a full queue.
    pub shed: u64,
    /// Requests whose deadline expired before evaluation.
    pub expired: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Evaluate passes run.
    pub batches: u64,
    /// Live requests summed over all batches.
    pub batched_requests: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Panicked lane workers caught and restarted by the supervisor.
    pub worker_restarts: u64,
    /// Completed scrub passes over the protected variants.
    pub scrub_passes: u64,
    /// Uncorrectable-error rebuilds (each hot-swapped a snapshot).
    pub rebuilds: u64,
    /// Duration of the most recent scrub pass, in microseconds.
    pub last_scrub_us: u64,
}

impl StatsSnapshot {
    /// Mean live requests per evaluate pass (0 before the first batch).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Render the counters as a JSON object fragment (no surrounding
    /// braces, so callers can splice in extra fields).
    pub fn json_fields(&self) -> String {
        format!(
            "\"received\":{},\"admitted\":{},\"shed\":{},\"expired\":{},\
             \"completed\":{},\"batches\":{},\"batched_requests\":{},\
             \"max_batch\":{},\"mean_batch\":{:.3},\"worker_restarts\":{},\
             \"scrub_passes\":{},\"rebuilds\":{},\"last_scrub_us\":{}",
            self.received,
            self.admitted,
            self.shed,
            self.expired,
            self.completed,
            self.batches,
            self.batched_requests,
            self.max_batch,
            self.mean_batch(),
            self.worker_restarts,
            self.scrub_passes,
            self.rebuilds,
            self.last_scrub_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = ServeStats::default();
        for _ in 0..3 {
            s.on_received();
            s.on_admitted();
        }
        s.on_shed();
        s.on_batch(2);
        s.on_batch(4);
        s.on_completed();
        s.on_worker_restart();
        s.on_scrub_pass(850);
        s.on_scrub_pass(1234);
        s.on_rebuild();
        let snap = s.snapshot();
        assert_eq!(snap.received, 3);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.batched_requests, 6);
        assert_eq!(snap.max_batch, 4);
        assert_eq!(snap.mean_batch(), 3.0);
        assert_eq!(snap.worker_restarts, 1);
        assert_eq!(snap.scrub_passes, 2);
        assert_eq!(snap.rebuilds, 1);
        assert_eq!(snap.last_scrub_us, 1234, "last scrub wins");
        let json = snap.json_fields();
        assert!(json.contains("\"shed\":1"));
        assert!(json.contains("\"mean_batch\":3.000"));
        assert!(json.contains("\"worker_restarts\":1"));
        assert!(json.contains("\"scrub_passes\":2"));
        assert!(json.contains("\"rebuilds\":1"));
        assert!(json.contains("\"last_scrub_us\":1234"));
    }
}
