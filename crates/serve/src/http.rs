//! A deliberately small HTTP/1.1 subset over `std::io` streams: enough
//! for `GET /healthz`, `GET /stats`, and `POST /v1/infer/<variant>`
//! with a binary body, and nothing more.
//!
//! Inference payloads are length-delimited little-endian `f32` vectors
//! (`u32` element count, then the elements), framed inside the HTTP
//! body by `Content-Length`. Both sides of the wire use the same
//! [`encode_f32_body`] / [`decode_f32_body`] pair so the float bits the
//! client sends are exactly the bits the engine evaluates.

use std::io::{self, BufRead, Write};

/// Largest request/response body accepted (4 MiB — far above any toy
/// model's feature width, far below a memory hazard).
pub const MAX_BODY: usize = 4 << 20;

/// Longest accepted request/status/header line.
const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted per message.
const MAX_HEADERS: usize = 64;

/// A protocol violation with a specific HTTP answer — carried as the
/// payload of an `ErrorKind::InvalidData` [`io::Error`] so transport
/// plumbing stays `io::Result`, while the server can answer `413` for
/// an oversized body instead of a blanket `400`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpViolation {
    /// The HTTP status this violation maps onto (`400` or `413`).
    pub status: u16,
    /// Plain-text description, sent as the response body.
    pub message: &'static str,
}

impl std::fmt::Display for HttpViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for HttpViolation {}

fn violation(status: u16, message: &'static str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        HttpViolation { status, message },
    )
}

/// The status carried by a protocol violation, if `err` is one (`None`
/// for plain I/O errors — the server answers those with `400`).
pub fn violation_status(err: &io::Error) -> Option<u16> {
    err.get_ref()?
        .downcast_ref::<HttpViolation>()
        .map(|v| v.status)
}

/// A parsed request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client as sent (`GET`, `POST`).
    pub method: String,
    /// Request target, e.g. `/v1/infer/transformer/adaptivfloat8`.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed response: status code plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

fn read_line_capped(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    return Ok(None);
                }
                break;
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(violation(400, "header line too long"));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| violation(400, "non-UTF-8 header line"))
}

/// Parsed header list plus the `Content-Length`, if the peer sent one.
type Headers = (Vec<(String, String)>, Option<usize>);

fn read_headers(reader: &mut impl BufRead) -> io::Result<Headers> {
    let mut headers = Vec::new();
    let mut content_length = None;
    loop {
        let line = read_line_capped(reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(violation(400, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| violation(400, "malformed header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            let length = value
                .parse::<usize>()
                .map_err(|_| violation(400, "bad content-length"))?;
            if length > MAX_BODY {
                return Err(violation(413, "body too large"));
            }
            content_length = Some(length);
        }
        headers.push((name, value));
    }
    Ok((headers, content_length))
}

fn read_body(reader: &mut impl BufRead, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Read one request from a connection. `Ok(None)` means the peer closed
/// the connection cleanly between requests (keep-alive ending).
///
/// # Errors
///
/// I/O failure, or a malformed / oversized message
/// (`ErrorKind::InvalidData`).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(start) = read_line_capped(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(violation(400, "malformed request line")),
    };
    let (headers, content_length) = read_headers(reader)?;
    // A body-bearing request must declare its length; bodyless verbs
    // default to an empty body.
    let body_len = match content_length {
        Some(len) => len,
        None if method == "POST" => return Err(violation(400, "missing content-length")),
        None => 0,
    };
    let body = read_body(reader, body_len)?;
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Read one response from a connection (client side).
///
/// # Errors
///
/// I/O failure, or a malformed / oversized message.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let status_line = read_line_capped(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))?;
    // "HTTP/1.1 200 OK"
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| violation(400, "malformed status line"))?;
    let (headers, content_length) = read_headers(reader)?;
    let body = read_body(reader, content_length.unwrap_or(0))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one keep-alive response.
///
/// # Errors
///
/// Propagates I/O failures from the stream.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Frame an `f32` vector as a binary body: `u32` little-endian count,
/// then each value as little-endian bits.
pub fn encode_f32_body(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 4);
    out.extend_from_slice(
        &u32::try_from(values.len())
            .expect("vector too long")
            .to_le_bytes(),
    );
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a body produced by [`encode_f32_body`]. Returns `None` when
/// the framing is inconsistent (bad count or trailing bytes).
pub fn decode_f32_body(body: &[u8]) -> Option<Vec<f32>> {
    if body.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(body[..4].try_into().ok()?) as usize;
    if body.len() != 4 + count * 4 {
        return None;
    }
    let mut values = Vec::with_capacity(count);
    for chunk in body[4..].chunks_exact(4) {
        values.push(f32::from_le_bytes(chunk.try_into().ok()?));
    }
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn f32_body_roundtrips_bit_exactly() {
        let values = vec![0.0, -0.0, 1.5, f32::MIN_POSITIVE, -3.25e-7, 1.0e30];
        let decoded = decode_f32_body(&encode_f32_body(&values)).unwrap();
        let got: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bad_framing_is_rejected() {
        assert_eq!(decode_f32_body(&[]), None);
        assert_eq!(decode_f32_body(&[2, 0, 0, 0, 1, 2, 3, 4]), None);
        let mut long = encode_f32_body(&[1.0]);
        long.push(0);
        assert_eq!(decode_f32_body(&long), None);
    }

    #[test]
    fn request_roundtrip_through_buffers() {
        let body = encode_f32_body(&[1.0, 2.0]);
        let mut wire = format!(
            "POST /v1/infer/m HTTP/1.1\r\nx-deadline-ms: 250\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        wire.extend_from_slice(&body);
        let mut reader = BufReader::new(&wire[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer/m");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(decode_f32_body(&req.body).unwrap(), vec![1.0, 2.0]);
        // Clean EOF between requests reads as None.
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn response_roundtrip_through_buffers() {
        let mut wire = Vec::new();
        write_response(&mut wire, 429, "text/plain", b"overloaded").unwrap();
        let mut reader = BufReader::new(&wire[..]);
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, b"overloaded");
        assert_eq!(resp.header_value("connection"), Some("keep-alive"));
    }

    impl Response {
        fn header_value(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        }
    }

    #[test]
    fn oversized_content_length_is_a_413_violation() {
        let wire = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut reader = BufReader::new(wire.as_bytes());
        let err = read_request(&mut reader).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(violation_status(&err), Some(413));
        assert_eq!(err.to_string(), "body too large");
    }

    #[test]
    fn garbage_content_length_is_a_400_violation() {
        for bad in [
            "notanumber",
            "-5",
            "12abc",
            "99999999999999999999999999",
            "",
        ] {
            let wire = format!("POST /x HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            let mut reader = BufReader::new(wire.as_bytes());
            let err = read_request(&mut reader).unwrap_err();
            assert_eq!(violation_status(&err), Some(400), "content-length {bad:?}");
            assert_eq!(err.to_string(), "bad content-length");
        }
    }

    #[test]
    fn post_without_content_length_is_a_400_violation() {
        let mut reader = BufReader::new(&b"POST /x HTTP/1.1\r\n\r\n"[..]);
        let err = read_request(&mut reader).unwrap_err();
        assert_eq!(violation_status(&err), Some(400));
        assert_eq!(err.to_string(), "missing content-length");
        // Bodyless verbs still default to an empty body.
        let mut reader = BufReader::new(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
        let req = read_request(&mut reader).unwrap().unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn plain_io_errors_carry_no_violation_status() {
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers");
        assert_eq!(violation_status(&eof), None);
        let mut reader = BufReader::new(&b"POST /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..]);
        let err = read_request(&mut reader).unwrap_err();
        assert_eq!(violation_status(&err), Some(400));
        assert_eq!(err.to_string(), "malformed header");
    }
}
