//! The background scrubber: a thread that periodically sweeps every
//! protected variant's weight storage, repairing correctable errors in
//! place and escalating uncorrectable ones to a rebuild + hot swap
//! (via [`ModelRegistry::scrub_variant`]).
//!
//! The same pass is callable inline
//! ([`Engine::scrub_now`](crate::Engine::scrub_now)) so tests and
//! operators can force a sweep without waiting out the period.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::ModelRegistry;
use crate::stats::ServeStats;

/// What one sweep over every protected variant found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubSummary {
    /// Protected variants swept.
    pub variants: usize,
    /// Single-bit errors repaired in place, summed over variants.
    pub corrected: usize,
    /// Detected-uncorrectable words, summed over variants.
    pub uncorrectable: usize,
    /// Variants rebuilt from their f32 master and hot-swapped.
    pub rebuilds: usize,
    /// Wall-clock duration of the sweep, in microseconds.
    pub elapsed_us: u64,
}

/// One sweep over every protected variant, updating the engine
/// counters (`scrub_passes`, `last_scrub_us`, `rebuilds`).
pub(crate) fn scrub_pass(registry: &ModelRegistry, stats: &ServeStats) -> ScrubSummary {
    let start = Instant::now();
    let mut summary = ScrubSummary::default();
    for id in registry.ids() {
        if let Some(outcome) = registry.scrub_variant(&id) {
            summary.variants += 1;
            summary.corrected += outcome.corrected;
            summary.uncorrectable += outcome.uncorrectable;
            if outcome.rebuilt {
                summary.rebuilds += 1;
                stats.on_rebuild();
            }
        }
    }
    summary.elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.on_scrub_pass(summary.elapsed_us);
    summary
}

/// The periodic scrubber thread. Created by the engine when
/// [`EngineConfig::scrub_period`](crate::EngineConfig::scrub_period) is
/// set; stopped (and joined) on engine shutdown.
#[derive(Debug)]
pub struct Scrubber {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Scrubber {
    /// Spawn the scrubber, sweeping every `period`.
    pub(crate) fn start(
        registry: Arc<ModelRegistry>,
        stats: Arc<ServeStats>,
        period: Duration,
    ) -> Scrubber {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("af-serve:scrub".to_string())
                .spawn(move || {
                    let (lock, cvar) = &*stop;
                    let mut stopped = lock.lock().expect("scrubber poisoned");
                    loop {
                        let (guard, timeout) = cvar
                            .wait_timeout(stopped, period)
                            .expect("scrubber poisoned");
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                        if timeout.timed_out() {
                            // Sweep without holding the stop lock, so
                            // shutdown never waits on a scrub.
                            drop(stopped);
                            scrub_pass(&registry, &stats);
                            stopped = lock.lock().expect("scrubber poisoned");
                        }
                    }
                })
                .expect("spawn scrubber")
        };
        Scrubber {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread to stop and join it. Idempotent.
    pub(crate) fn stop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("scrubber poisoned") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scrubber {
    fn drop(&mut self) {
        self.stop();
    }
}
