//! The dense row-major [`Tensor`] type and its core operations.

use adaptivfloat::par;
use std::fmt;

/// Depth-tile size for the blocked matmul kernel: one `KC × NC` tile of
/// the right-hand matrix (256 KiB) stays L2-resident while every row of
/// the left block streams against it. Shared with the packed-weight
/// kernel in [`crate::packed`] so both walk tiles in the same order.
pub(crate) const KC: usize = 128;
/// Column-tile size: one output-row tile (`NC` f32, 2 KiB) stays in L1
/// across the whole depth tile.
pub(crate) const NC: usize = 512;
/// Products below this many multiply-accumulates run serially — thread
/// spawn cost dominates under ~2ⁱ⁸ MACs (≈ a 64³ matmul).
const PAR_MIN_MACS: usize = 1 << 18;

/// Rows per parallel block: the whole matrix (one chunk → serial) when
/// the product is small, otherwise an even split across threads.
fn par_row_block(m: usize, k: usize, n: usize) -> usize {
    let macs = m * k * n;
    if par::num_threads() == 1 || macs < PAR_MIN_MACS {
        m.max(1)
    } else {
        m.div_ceil(par::num_threads()).max(1)
    }
}

/// Blocked i-k-j product of a row block: `out_rows += a_rows · b` where
/// `a_rows` is `rows × k`, `b` is `k × n`, `out_rows` is `rows × n` (all
/// row-major, `out_rows` pre-zeroed, `n > 0`). Accumulation order per
/// output element is ascending `k`, identical to the naive loop, so
/// results are bit-identical at any tile size or thread count.
fn matmul_rows_kernel(a_rows: &[f32], b: &[f32], out_rows: &mut [f32], k: usize, n: usize) {
    let rows = out_rows.len() / n;
    let mut k0 = 0;
    while k0 < k {
        let k1 = (k0 + KC).min(k);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + NC).min(n);
            for i in 0..rows {
                let a_row = &a_rows[i * k + k0..i * k + k1];
                let out_row = &mut out_rows[i * n + j0..i * n + j1];
                for (p, &a) in a_row.iter().enumerate() {
                    let b_row = &b[(k0 + p) * n + j0..(k0 + p) * n + j1];
                    // Vector-dispatched `out += a · b_row` (multiply then
                    // add per lane — bit-identical to the scalar loop).
                    adaptivfloat::simd::axpy(a, b_row, out_row);
                }
            }
            j0 = j1;
        }
        k0 = k1;
    }
}

/// Four-lane dot product; the independent accumulators break the serial
/// FP-add dependency chain so the loop can saturate the FMA pipes.
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut ai = a.chunks_exact(4);
    let mut bi = b.chunks_exact(4);
    for (ca, cb) in (&mut ai).zip(&mut bi) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let tail: f32 = ai
        .remainder()
        .iter()
        .zip(bi.remainder())
        .map(|(&x, &y)| x * y)
        .sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Row block of `a · bᵀ`: both operands have row length `k`; every output
/// element is an independent dot product (`n > 0`).
fn matmul_t_rows_kernel(a_rows: &[f32], b: &[f32], out_rows: &mut [f32], k: usize, n: usize) {
    for (i, out_row) in out_rows.chunks_mut(n).enumerate() {
        let a_row = &a_rows[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot4(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

/// A dense, row-major `f32` tensor of arbitrary rank (rank 1 and 2 are the
/// common cases in this workspace).
///
/// # Examples
///
/// ```
/// use af_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}, ... {} elems]", &self.data[..8], self.data.len())
        }
    }
}

impl Tensor {
    /// Build a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count of `shape` does not match `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "shape {:?} needs {} elements, got {}",
            shape,
            numel,
            data.len()
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// All-one tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// The `k × k` identity matrix.
    pub fn eye(k: usize) -> Self {
        let mut t = Tensor::zeros(&[k, k]);
        for i in 0..k {
            t.data[i * k + i] = 1.0;
        }
        t
    }

    /// Shape as a slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of rows; rank-1 tensors count as a single row.
    ///
    /// # Panics
    ///
    /// Panics if the rank is above 2.
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            0 | 1 => 1,
            2 => self.shape[0],
            r => panic!("rows() needs rank <= 2, got rank {r}"),
        }
    }

    /// Number of columns (the last dimension); scalars count as 1 column.
    pub fn cols(&self) -> usize {
        self.shape.last().copied().unwrap_or(1)
    }

    /// Flat immutable view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert_eq!(self.rank(), 2, "at() needs a rank-2 tensor");
        self.data[r * self.shape[1] + c]
    }

    /// Set the element at a 2-D index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert_eq!(self.rank(), 2, "set() needs a rank-2 tensor");
        let cols = self.shape[1];
        self.data[r * cols + c] = v;
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() needs a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose() needs a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k] · [k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.shape[0], other.shape[1]);
        let mut out = vec![0.0f32; m * n];
        self.matmul_into(other, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · other` written into a caller-provided
    /// buffer, bit-identical to [`matmul`](Self::matmul). `out` is fully
    /// overwritten; no heap allocation happens here, which lets hot loops
    /// (the serving engine, batched model evaluation) reuse scratch
    /// buffers across calls.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k] · [k, n]` or `out.len() != m * n`.
    pub fn matmul_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        Tensor::matmul_slice_into(&self.data, self.shape[0], self.shape[1], other, out);
    }

    /// Matrix product `a · b` where the left operand is a raw row-major
    /// `m × k` slice — the scratch-buffer form of
    /// [`matmul_into`](Self::matmul_into), bit-identical to it. `out` is
    /// fully overwritten and nothing is allocated.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not rank 2 with `k` rows, `a.len() != m * k`, or
    /// `out.len() != m * b.cols()`.
    pub fn matmul_slice_into(a: &[f32], m: usize, k: usize, b: &Tensor, out: &mut [f32]) {
        assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        assert_eq!(a.len(), m * k, "matmul_slice_into lhs length");
        assert_eq!(out.len(), m * n, "matmul_slice_into output length");
        out.fill(0.0);
        if n > 0 {
            let rows_per = par_row_block(m, k, n);
            par::par_chunks_mut(out, rows_per * n, |ci, out_chunk| {
                let row0 = ci * rows_per;
                let rows = out_chunk.len() / n;
                let a_rows = &a[row0 * k..(row0 + rows) * k];
                matmul_rows_kernel(a_rows, &b.data, out_chunk, k, n);
            });
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[k, m]ᵀ · [k, n]`.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "t_matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "t_matmul rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "t_matmul inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k] · [n, k]ᵀ`.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_t lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_t rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dims: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        if n > 0 {
            let rows_per = par_row_block(m, k, n);
            par::par_chunks_mut(&mut out, rows_per * n, |ci, out_chunk| {
                let row0 = ci * rows_per;
                let rows = out_chunk.len() / n;
                let a_rows = &self.data[row0 * k..(row0 + rows) * k];
                matmul_t_rows_kernel(a_rows, &other.data, out_chunk, k, n);
            });
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Elementwise binary op with an identically-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_map");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Add a length-`cols` row vector to every row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or `bias.len() != cols`.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row needs a rank-2 tensor");
        let cols = self.shape[1];
        assert_eq!(bias.len(), cols, "bias length must equal columns");
        let mut out = self.clone();
        for row in out.data.chunks_mut(cols) {
            for (o, &b) in row.iter_mut().zip(bias.data()) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// In-place `self += other * s` (axpy), used by optimizers.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (o, &v) in self.data.iter_mut().zip(&other.data) {
            *o += s * v;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sum of a rank-2 tensor → rank-1 of length `cols`
    /// (the bias-gradient reduction).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows needs a rank-2 tensor");
        let cols = self.shape[1];
        let mut out = vec![0.0f32; cols];
        for row in self.data.chunks(cols) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Extract columns `[start, start+width)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range exceeds the width.
    pub fn slice_cols(&self, start: usize, width: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_cols needs a rank-2 tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(start + width <= c, "column range out of bounds");
        let mut out = Vec::with_capacity(r * width);
        for row in self.data.chunks(c) {
            out.extend_from_slice(&row[start..start + width]);
        }
        Tensor::from_vec(out, &[r, width])
    }

    /// Concatenate rank-2 tensors left-to-right (equal row counts).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols needs at least one tensor");
        let rows = parts[0].rows();
        for p in parts {
            assert_eq!(p.rank(), 2, "concat_cols needs rank-2 tensors");
            assert_eq!(p.rows(), rows, "row count mismatch in concat_cols");
        }
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                out.extend_from_slice(p.row(r));
            }
        }
        Tensor::from_vec(out, &[rows, total_cols])
    }

    /// Largest absolute value (`0.0` for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element of each row → `Vec` of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows needs a rank-2 tensor");
        let cols = self.shape[1];
        self.data
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite values"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32).sin()).collect(), &[3, 4]);
        let direct = a.matmul(&b);
        let via_t = a.transpose().t_matmul(&b);
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let bt = b.transpose();
        let via_mt = a.matmul_t(&bt);
        for (x, y) in direct.data().iter().zip(via_mt.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec((0..9).map(|i| i as f32 * 0.3).collect(), &[3, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
        assert_eq!(Tensor::eye(3).matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_shape_mismatch_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_into_bit_identical_to_matmul() {
        // Large enough to cross the parallel threshold and exercise the
        // blocked kernel; scratch starts dirty to prove full overwrite.
        let (m, k, n) = (65, 130, 520);
        let a = Tensor::from_vec(
            (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect(),
            &[k, n],
        );
        let reference = a.matmul(&b);
        let mut scratch = vec![f32::NAN; m * n];
        a.matmul_into(&b, &mut scratch);
        assert_eq!(scratch, reference.data());
        scratch.fill(7.0);
        Tensor::matmul_slice_into(a.data(), m, k, &b, &mut scratch);
        assert_eq!(scratch, reference.data());
    }

    #[test]
    fn add_row_broadcasts() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_row(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_reduces_columns() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_rows().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let left = x.slice_cols(0, 2);
        let right = x.slice_cols(2, 2);
        let back = Tensor::concat_cols(&[&left, &right]);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn argmax_rows_basic() {
        let x = Tensor::from_vec(vec![0.1, 0.9, 0.0, 1.0, -1.0, 0.5], &[2, 3]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut x = Tensor::ones(&[2]);
        let g = Tensor::from_vec(vec![2.0, -4.0], &[2]);
        x.axpy(-0.5, &g);
        assert_eq!(x.data(), &[0.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let x = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let y = x.reshape(&[3, 2]);
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "needs 6 elements")]
    fn from_vec_shape_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn abs_max_and_mean() {
        let x = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(x.abs_max(), 3.0);
        assert_eq!(x.mean(), 0.0);
    }
}
