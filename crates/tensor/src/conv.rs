//! im2col / col2im convolution lowering (NCHW layout), the substrate for
//! `af-nn`'s `Conv2d` layer used by the mini-ResNet.

use crate::tensor::Tensor;
use adaptivfloat::par;

/// Static description of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        conv2d_output_size(h, w, self.kernel, self.stride, self.padding)
    }

    /// Number of columns of the im2col patch matrix,
    /// `in_channels · kernel²`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Output spatial size of a convolution:
/// `(h + 2p − k) / s + 1` per dimension.
///
/// # Panics
///
/// Panics if the kernel does not fit the padded input.
pub fn conv2d_output_size(
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> (usize, usize) {
    assert!(
        h + 2 * padding >= kernel && w + 2 * padding >= kernel,
        "kernel {kernel} larger than padded input {h}x{w}+{padding}"
    );
    (
        (h + 2 * padding - kernel) / stride + 1,
        (w + 2 * padding - kernel) / stride + 1,
    )
}

/// Lower a batch of NCHW images to the im2col patch matrix.
///
/// Input shape `[batch, c, h, w]` (flattened row-major); output is
/// `[batch · oh · ow, c · k · k]` so that convolution becomes
/// `patches · weightᵀ`.
///
/// # Panics
///
/// Panics if `input.len() != batch · c · h · w`.
pub fn im2col(
    input: &Tensor,
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
) -> Tensor {
    assert_eq!(input.len(), batch * c * h * w, "input size mismatch");
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let (oh, ow) = spec.output_hw(h, w);
    let patch = spec.patch_len();
    let mut out = vec![0.0f32; batch * oh * ow * patch];
    let data = input.data();
    // One strip = the `ow` patches of one output row of one image; strips
    // are disjoint in the output, so they fan out across threads freely
    // (col2im cannot: its scatter-adds overlap, so it stays serial).
    let strip_len = ow * patch;
    if strip_len > 0 {
        let n_strips = batch * oh;
        let strips_per = if par::parallelism_worthwhile(out.len()) {
            n_strips.div_ceil(par::num_threads()).max(1)
        } else {
            n_strips.max(1)
        };
        par::par_chunks_mut(&mut out, strips_per * strip_len, |ci, chunk| {
            for (r, strip) in chunk.chunks_mut(strip_len).enumerate() {
                let idx = ci * strips_per + r;
                im2col_strip(data, strip, idx / oh, idx % oh, c, h, w, spec);
            }
        });
    }
    Tensor::from_vec(out, &[batch * oh * ow, patch])
}

/// Fill one im2col strip: all `ow` patches of output row `oy` of image
/// `b`. `strip` comes zeroed (padding stays zero).
#[allow(clippy::too_many_arguments)]
fn im2col_strip(
    data: &[f32],
    strip: &mut [f32],
    b: usize,
    oy: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
) {
    let k = spec.kernel;
    let patch = spec.patch_len();
    let ow = strip.len() / patch;
    for ox in 0..ow {
        let row = ox * patch;
        for ch in 0..c {
            for ky in 0..k {
                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                if iy < 0 || iy >= h as isize {
                    continue; // zero padding
                }
                for kx in 0..k {
                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let src = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                    strip[row + (ch * k + ky) * k + kx] = data[src];
                }
            }
        }
    }
}

/// Scatter-add the patch-matrix gradient back to the input layout —
/// the adjoint of [`im2col`], used by `Conv2d`'s backward pass.
///
/// # Panics
///
/// Panics if `grad_patches` does not have shape
/// `[batch · oh · ow, c · k · k]`.
pub fn col2im(
    grad_patches: &Tensor,
    batch: usize,
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let patch = spec.patch_len();
    assert_eq!(
        grad_patches.shape(),
        &[batch * oh * ow, patch],
        "grad patch shape mismatch"
    );
    let mut out = vec![0.0f32; batch * c * h * w];
    let data = grad_patches.data();
    for b in 0..batch {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * patch;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let dst = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                            let src = row + (ch * k + ky) * k + kx;
                            out[dst] += data[src];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, c * h * w])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> Conv2dSpec {
        Conv2dSpec {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn output_size_formula() {
        assert_eq!(conv2d_output_size(8, 8, 3, 1, 1), (8, 8));
        assert_eq!(conv2d_output_size(8, 8, 3, 2, 1), (4, 4));
        assert_eq!(conv2d_output_size(5, 5, 5, 1, 0), (1, 1));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1: the patch matrix is just the input,
        // reordered to [pixels, channels].
        let s = spec(2, 1, 1, 1, 0);
        let input = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[8]);
        let cols = im2col(&input, 1, 2, 2, 2, &s);
        assert_eq!(cols.shape(), &[4, 2]);
        // pixel (0,0): channels 0 and 1 → values 0 and 4.
        assert_eq!(cols.row(0), &[0.0, 4.0]);
        assert_eq!(cols.row(3), &[3.0, 7.0]);
    }

    #[test]
    fn im2col_3x3_padded_matches_manual_conv() {
        // Convolve a 3×3 all-ones kernel over a 3×3 input with padding 1;
        // compare against a manual sliding-window sum.
        let s = spec(1, 1, 3, 1, 1);
        let input_vals: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let input = Tensor::from_vec(input_vals.clone(), &[9]);
        let cols = im2col(&input, 1, 1, 3, 3, &s);
        let w = Tensor::ones(&[1, 9]); // [out_channels, patch]
        let out = cols.matmul_t(&w); // [9, 1]
        let manual = |cy: isize, cx: isize| -> f32 {
            let mut acc = 0.0;
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (y, x) = (cy + dy, cx + dx);
                    if (0..3).contains(&y) && (0..3).contains(&x) {
                        acc += input_vals[(y * 3 + x) as usize];
                    }
                }
            }
            acc
        };
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(out.data()[y * 3 + x], manual(y as isize, x as isize));
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that guarantees correct convolution gradients.
        let s = spec(2, 3, 3, 2, 1);
        let (b, c, h, w) = (2, 2, 5, 5);
        let x = Tensor::from_vec(
            (0..b * c * h * w)
                .map(|i| ((i * 37 % 17) as f32) - 8.0)
                .collect(),
            &[b, c * h * w],
        );
        let cols = im2col(&x, b, c, h, w, &s);
        let y = Tensor::from_vec(
            (0..cols.len())
                .map(|i| ((i * 13 % 11) as f32) - 5.0)
                .collect(),
            cols.shape(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, b, c, h, w, &s);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn im2col_wrong_size_panics() {
        let s = spec(1, 1, 3, 1, 1);
        im2col(&Tensor::zeros(&[5]), 1, 1, 3, 3, &s);
    }
}
