//! # af-tensor — dense `f32` tensor substrate
//!
//! A small, dependency-light tensor library backing the AdaptivFloat
//! reproduction's neural-network stack (`af-nn`). Row-major dense storage,
//! 2-D-centric operations (matrix multiply in all transpose flavours,
//! elementwise arithmetic with row broadcasting), im2col convolution
//! helpers, and the usual initializers.
//!
//! It deliberately implements only what the paper's three model families
//! (Transformer, LSTM seq2seq, ResNet) need — no autograd here; that lives
//! in `af-nn`.
//!
//! ```
//! use af_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod conv;
pub mod init;
pub mod packed;
pub mod tensor;

pub use conv::{col2im, conv2d_output_size, im2col, Conv2dSpec};
pub use init::{kaiming_uniform, randn, uniform, xavier_uniform};
pub use packed::{PackedDecode, PackedGemm, PackedGemmScratch};
pub use tensor::Tensor;
