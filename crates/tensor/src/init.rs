//! Weight initializers (uniform, Gaussian, Xavier, Kaiming).

use crate::tensor::Tensor;
use rand::Rng;

/// Tensor with elements drawn uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo <= hi, "uniform bounds out of order");
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..=hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Tensor with standard-normal elements scaled by `std` (Box–Muller).
pub fn randn<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a `[fan_out, fan_in]` weight:
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `shape` is not rank 2.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize]) -> Tensor {
    assert_eq!(shape.len(), 2, "xavier_uniform needs a rank-2 shape");
    let (fan_out, fan_in) = (shape[0] as f32, shape[1] as f32);
    let a = (6.0 / (fan_in + fan_out)).sqrt();
    uniform(rng, shape, -a, a)
}

/// Kaiming/He uniform initialization for ReLU networks:
/// `U(−a, a)` with `a = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `shape` is not rank 2.
pub fn kaiming_uniform<R: Rng + ?Sized>(rng: &mut R, shape: &[usize]) -> Tensor {
    assert_eq!(shape.len(), 2, "kaiming_uniform needs a rank-2 shape");
    let fan_in = shape[1] as f32;
    let a = (6.0 / fan_in).sqrt();
    uniform(rng, shape, -a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[100], -0.5, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = randn(&mut rng, &[10_000], 2.0);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, &[30, 20]);
        let a = (6.0f32 / 50.0).sqrt();
        assert!(t.abs_max() <= a);
        // With 600 samples the max should land near the bound.
        assert!(t.abs_max() > a * 0.9);
    }

    #[test]
    fn deterministic_under_seed() {
        let t1 = randn(&mut StdRng::seed_from_u64(7), &[16], 1.0);
        let t2 = randn(&mut StdRng::seed_from_u64(7), &[16], 1.0);
        assert_eq!(t1.data(), t2.data());
    }
}
