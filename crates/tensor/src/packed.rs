//! [`PackedGemm`]: a weight matrix kept in its n-bit quantized encoding
//! end to end, decoded on the fly inside the matmul microkernel.
//!
//! This is the software mirror of the paper's HFINT processing element:
//! the PE never stores full-precision weights — it streams narrow codes
//! and applies the per-tensor `exp_bias` scaling inside the datapath. The
//! serving stack's dequantize-then-GEMM path reads `4 · K · N` bytes of
//! f32 weights per layer per request; this kernel reads `width / 8 · K ·
//! N` bytes of codes instead (4× less at 8 bits, 8× at 4), decoding each
//! `KC × NC` tile once into an L1/L2-resident scratch block that every
//! batch row then reuses.
//!
//! **Bit-identity contract.** `matmul_into` reproduces
//! [`Tensor::matmul_slice_into`](crate::Tensor::matmul_slice_into) on
//! the dequantized weights exactly:
//!
//! * the packed layout is blocked per column tile, and the kernel walks
//!   `(k-tile, j-tile)` in the same order with the same `KC`/`NC` as the
//!   dense kernel, so every output element accumulates in ascending `k`;
//! * the row update is the same SIMD `axpy` (multiply then add per lane,
//!   no FMA) the dense kernel dispatches;
//! * the decode is bit-exact: AdaptivFloat codes are rebuilt into f32
//!   patterns algebraically (valid in the fast-quantizer envelope),
//!   uniform codes go through the same exact `i32 → f64 · scale → f32`
//!   conversion as the scalar codec, and both are verified against the
//!   caller-supplied reference codebook over **all** `2^width` codes at
//!   build time — any mismatch silently falls back to table lookups,
//!   which are exact by construction.
//!
//! The kernel runs on the caller's thread (no fan-out): per-element
//! results are thread-count-independent either way, and serving batches
//! are small enough that the decode reuse, not parallelism, is the win.

use crate::tensor::{KC, NC};
use adaptivfloat::simd;

/// How a [`PackedGemm`] turns codes back into f32 weights in-kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PackedDecode {
    /// AdaptivFloat algebraic field rebuild (see [`simd::AfDecode`]).
    AdaptivFloat {
        /// Mantissa field width (`n − e − 1`).
        m: u32,
        /// The tensor's frozen exponent bias.
        exp_bias: i32,
    },
    /// Uniform (symmetric integer) codes at the plan's frozen scale.
    Uniform {
        /// The per-tensor scale.
        scale: f64,
    },
    /// Plain codebook lookup (always available, always exact).
    Table,
}

/// The decode strategy actually compiled into the kernel.
#[derive(Debug, Clone, Copy)]
enum Decoder {
    Af(simd::AfDecode),
    Uniform(f64),
    Table,
}

/// One column tile of the packed layout.
#[derive(Debug, Clone, Copy)]
struct Tile {
    /// First column this tile covers.
    j0: usize,
    /// Columns in the tile (`≤ NC`).
    jw: usize,
    /// Byte offset of the tile's first row segment.
    offset: usize,
    /// Bytes per row segment (`ceil(jw · width / 8)`).
    stride: usize,
}

/// Reusable decode scratch for [`PackedGemm::matmul_into`] — one
/// `KC × NC` f32 tile (256 KiB), grown on first use and then
/// allocation-free (serving holds one per batch scratch).
#[derive(Debug, Default, Clone)]
pub struct PackedGemmScratch {
    tile: Vec<f32>,
}

/// A `K × N` weight matrix stored as packed `width`-bit codes in a
/// column-tile-blocked byte layout, multiplied without ever
/// materializing the f32 matrix.
///
/// Build one with [`PackedGemm::build`] at freeze time; multiply with
/// [`matmul_into`](PackedGemm::matmul_into).
#[derive(Debug, Clone)]
pub struct PackedGemm {
    k: usize,
    n: usize,
    width: u32,
    tiles: Vec<Tile>,
    bytes: Vec<u8>,
    /// Reference codebook: `table[code]` is the decoded weight. The
    /// in-kernel decoders are verified against it at build time.
    table: Vec<f32>,
    decoder: Decoder,
}

impl PackedGemm {
    /// Pack the row-major `K × N` code matrix `codes` (each entry a
    /// `width`-bit code) into the blocked layout and compile the decode
    /// strategy.
    ///
    /// `table` must enumerate the decoded f32 for **every** `2^width`
    /// code — it is the exactness oracle: the requested `decode`
    /// strategy is checked against it over all codes and demoted to
    /// [`PackedDecode::Table`] on any bit mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 4 or 8, `codes.len() != k * n`,
    /// `table.len() != 2^width`, or any code has bits above `width`.
    pub fn build(
        k: usize,
        n: usize,
        width: u32,
        codes: &[u32],
        table: Vec<f32>,
        decode: PackedDecode,
    ) -> PackedGemm {
        assert!(width == 4 || width == 8, "width must be 4 or 8");
        assert_eq!(codes.len(), k * n, "code matrix shape mismatch");
        assert_eq!(table.len(), 1usize << width, "codebook size mismatch");
        assert!(
            codes.iter().all(|&c| c < (1u32 << width)),
            "code exceeds width"
        );
        let decoder = Self::verify_decoder(width, &table, decode);
        // Blocked layout: per column tile, the K row segments are stored
        // contiguously (byte-aligned, nibbles low-first) so the kernel
        // streams one tile sequentially.
        let mut tiles = Vec::with_capacity(n.div_ceil(NC).max(1));
        let mut bytes = Vec::new();
        let mut j0 = 0;
        while j0 < n {
            let jw = (n - j0).min(NC);
            let stride = (jw * width as usize).div_ceil(8);
            let offset = bytes.len();
            for kk in 0..k {
                let row = &codes[kk * n + j0..kk * n + j0 + jw];
                pack_row(width, row, &mut bytes);
                debug_assert_eq!(bytes.len(), offset + (kk + 1) * stride);
            }
            tiles.push(Tile {
                j0,
                jw,
                offset,
                stride,
            });
            j0 += jw;
        }
        PackedGemm {
            k,
            n,
            width,
            tiles,
            bytes,
            table,
            decoder,
        }
    }

    /// Check `decode` against the reference codebook over every code;
    /// fall back to table lookups on any mismatch.
    fn verify_decoder(width: u32, table: &[f32], decode: PackedDecode) -> Decoder {
        let candidate = match decode {
            PackedDecode::AdaptivFloat { m, exp_bias } => Decoder::Af(simd::AfDecode {
                n: width,
                m,
                exp_bias,
            }),
            PackedDecode::Uniform { scale } => Decoder::Uniform(scale),
            PackedDecode::Table => return Decoder::Table,
        };
        let exact = (0..1u32 << width).all(|code| {
            let want = table[code as usize].to_bits();
            let got = match candidate {
                Decoder::Af(d) => d.decode_one(code).to_bits(),
                Decoder::Uniform(scale) => {
                    let level = sign_extend(code, width);
                    ((level as f64 * scale) as f32).to_bits()
                }
                Decoder::Table => unreachable!(),
            };
            want == got
        });
        if exact {
            candidate
        } else {
            Decoder::Table
        }
    }

    /// Rows of the packed matrix (`K`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed matrix (`N`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Code width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Bytes of packed weight storage the kernel streams (the
    /// weight-memory traffic per batch, vs `4 · k · n` for f32).
    pub fn packed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Label of the decode strategy compiled into the kernel
    /// (`"adaptivfloat"`, `"uniform"`, or `"table"`).
    pub fn decode_label(&self) -> &'static str {
        match self.decoder {
            Decoder::Af(_) => "adaptivfloat",
            Decoder::Uniform(_) => "uniform",
            Decoder::Table => "table",
        }
    }

    /// Dequantize the full matrix through the codebook (row-major) —
    /// the reference the kernel is tested against, and the escape hatch
    /// for callers that need the f32 weights back.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.k * self.n];
        for tile in &self.tiles {
            for kk in 0..self.k {
                let seg = self.row_segment(tile, kk);
                let dst = &mut out[kk * self.n + tile.j0..kk * self.n + tile.j0 + tile.jw];
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = self.table[extract_code(self.width, seg, j) as usize];
                }
            }
        }
        out
    }

    /// The packed bytes of row `kk` within `tile`.
    #[inline]
    fn row_segment(&self, tile: &Tile, kk: usize) -> &[u8] {
        &self.bytes[tile.offset + kk * tile.stride..tile.offset + (kk + 1) * tile.stride]
    }

    /// `out = a · W` where `a` is `m × K` row-major and `out` is
    /// `m × N`, decoding codes tile by tile. Bit-identical to
    /// `Tensor::matmul_slice_into(a, m, k, &dequantized, out)`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k()` or `out.len() != m * n()`.
    pub fn matmul_into(
        &self,
        a: &[f32],
        m: usize,
        out: &mut [f32],
        scratch: &mut PackedGemmScratch,
    ) {
        assert_eq!(a.len(), m * self.k, "packed matmul lhs length");
        assert_eq!(out.len(), m * self.n, "packed matmul output length");
        out.fill(0.0);
        scratch.tile.resize(KC * NC, 0.0);
        let (k, n) = (self.k, self.n);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + KC).min(k);
            for tile in &self.tiles {
                // Decode this KC × jw block once; every batch row below
                // reuses it from cache.
                let jw = tile.jw;
                for (p, dst) in scratch.tile.chunks_mut(jw).take(k1 - k0).enumerate() {
                    self.decode_row(tile, k0 + p, dst);
                }
                for i in 0..m {
                    let a_row = &a[i * k + k0..i * k + k1];
                    let out_row = &mut out[i * n + tile.j0..i * n + tile.j0 + jw];
                    for (p, &av) in a_row.iter().enumerate() {
                        simd::axpy(av, &scratch.tile[p * jw..(p + 1) * jw], out_row);
                    }
                }
            }
            k0 = k1;
        }
    }

    /// Decode row `kk` of `tile` into `dst` (`dst.len() == tile.jw`).
    #[inline]
    fn decode_row(&self, tile: &Tile, kk: usize, dst: &mut [f32]) {
        let seg = self.row_segment(tile, kk);
        match (self.decoder, self.width) {
            (Decoder::Af(d), 8) => simd::decode_af_u8(&d, seg, dst),
            (Decoder::Af(d), _) => simd::decode_af_u4(&d, seg, dst),
            (Decoder::Uniform(scale), 8) => simd::decode_uniform_u8(scale, seg, dst),
            (Decoder::Uniform(scale), _) => simd::decode_uniform_u4(scale, seg, dst),
            (Decoder::Table, w) => {
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = self.table[extract_code(w, seg, j) as usize];
                }
            }
        }
    }
}

/// Sign-extend a `width`-bit two's-complement code.
fn sign_extend(code: u32, width: u32) -> i32 {
    let shift = 32 - width;
    ((code << shift) as i32) >> shift
}

/// Append one row of codes to `bytes` (byte-aligned; width 4 packs two
/// codes per byte, low nibble first, odd tail in a low nibble).
fn pack_row(width: u32, row: &[u32], bytes: &mut Vec<u8>) {
    if width == 8 {
        bytes.extend(row.iter().map(|&c| c as u8));
        return;
    }
    for pair in row.chunks(2) {
        let lo = pair[0] & 0xf;
        let hi = pair.get(1).map_or(0, |&c| c & 0xf);
        bytes.push((lo | (hi << 4)) as u8);
    }
}

/// Read code `j` from a packed row segment.
#[inline]
fn extract_code(width: u32, seg: &[u8], j: usize) -> u32 {
    if width == 8 {
        seg[j] as u32
    } else {
        let byte = seg[j / 2];
        (if j.is_multiple_of(2) {
            byte & 0xf
        } else {
            byte >> 4
        }) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn codebook(width: u32) -> Vec<f32> {
        // An arbitrary but deterministic codebook with distinct values.
        (0..1u32 << width)
            .map(|c| (c as f32 - 7.0) * 0.31 + (c as f32 * 0.011).sin())
            .collect()
    }

    fn codes(k: usize, n: usize, width: u32) -> Vec<u32> {
        (0..k * n)
            .map(|i| ((i as u32).wrapping_mul(2654435761)) >> (32 - width))
            .collect()
    }

    #[test]
    fn matmul_matches_dense_on_dequantized_weights() {
        for width in [4u32, 8] {
            for (m, k, n) in [(1, 5, 3), (3, 130, 520), (7, 257, 515)] {
                let codes = codes(k, n, width);
                let pg =
                    PackedGemm::build(k, n, width, &codes, codebook(width), PackedDecode::Table);
                let dense = Tensor::from_vec(pg.dequantize(), &[k, n]);
                let a: Vec<f32> = (0..m * k).map(|i| ((i as f32) * 0.37).sin()).collect();
                let mut want = vec![0.0f32; m * n];
                Tensor::matmul_slice_into(&a, m, k, &dense, &mut want);
                let mut got = vec![0.0f32; m * n];
                let mut scratch = PackedGemmScratch::default();
                pg.matmul_into(&a, m, &mut got, &mut scratch);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "width={width} m={m} k={k} n={n}"
                );
            }
        }
    }

    #[test]
    fn dequantize_matches_codebook() {
        let (k, n, width) = (9, 1030, 4);
        let codes = codes(k, n, width);
        let table = codebook(width);
        let pg = PackedGemm::build(k, n, width, &codes, table.clone(), PackedDecode::Table);
        let deq = pg.dequantize();
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(deq[i].to_bits(), table[c as usize].to_bits(), "elem {i}");
        }
        // Two 4-bit codes per byte: packed traffic is ~1/8 of f32.
        assert!(pg.packed_bytes() <= k * n / 2 + k * pg.tiles.len());
        assert_eq!(pg.decode_label(), "table");
    }

    #[test]
    fn mismatched_decoder_falls_back_to_table() {
        // A codebook no algebraic AdaptivFloat decode can reproduce.
        let pg = PackedGemm::build(
            2,
            2,
            4,
            &[0, 1, 2, 3],
            codebook(4),
            PackedDecode::AdaptivFloat { m: 1, exp_bias: -3 },
        );
        assert_eq!(pg.decode_label(), "table");
    }
}
