//! Bit-identity of the fused packed-weight GEMM against the dense
//! blocked matmul it replaces, across widths, decode strategies, batch
//! sizes, and shapes that do and don't divide the kernel's tile sizes.

use adaptivfloat::{AdaptivFloat, AdaptivParams, Uniform};
use af_tensor::{PackedDecode, PackedGemm, PackedGemmScratch, Tensor};
use proptest::prelude::*;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

fn lhs(m: usize, k: usize, seed: u64) -> Vec<f32> {
    (0..m * k)
        .map(|i| (((i as u64).wrapping_mul(seed | 1) >> 7) as f32 * 1.3e-9).sin() * 2.0)
        .collect()
}

fn codes(k: usize, n: usize, width: u32, seed: u64) -> Vec<u32> {
    (0..k * n)
        .map(|i| {
            (((i as u64).wrapping_add(seed)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32
                & ((1u32 << width) - 1)
        })
        .collect()
}

/// AdaptivFloat decode table at the paper's field split, plus the spec
/// the kernel should verify against it.
fn af_setup(width: u32, exp_bias: i32) -> (Vec<f32>, PackedDecode) {
    let e = 3.min(width - 1);
    let af = AdaptivFloat::new(width, e).unwrap();
    let ap = AdaptivParams {
        n: width,
        e,
        exp_bias,
    };
    let table = (0..1u32 << width).map(|c| af.decode_with(&ap, c)).collect();
    let decode = PackedDecode::AdaptivFloat {
        m: width - e - 1,
        exp_bias,
    };
    (table, decode)
}

fn uniform_setup(width: u32, scale: f64) -> (Vec<f32>, PackedDecode) {
    let uni = Uniform::new(width).unwrap();
    let table = (0..1u32 << width)
        .map(|c| uni.decode_code(scale, c))
        .collect();
    (table, PackedDecode::Uniform { scale })
}

fn check(m: usize, k: usize, n: usize, width: u32, table: Vec<f32>, decode: PackedDecode) {
    let codes = codes(k, n, width, (m * k * n) as u64);
    let pg = PackedGemm::build(k, n, width, &codes, table, decode);
    // The requested algebraic decode must have survived verification —
    // a fallback to table lookups would hide a broken SIMD decoder.
    match decode {
        PackedDecode::AdaptivFloat { .. } => assert_eq!(pg.decode_label(), "adaptivfloat"),
        PackedDecode::Uniform { .. } => assert_eq!(pg.decode_label(), "uniform"),
        PackedDecode::Table => assert_eq!(pg.decode_label(), "table"),
    }
    let dense = Tensor::from_vec(pg.dequantize(), &[k, n]);
    let a = lhs(m, k, 0x5EED);
    let mut want = vec![0.0f32; m * n];
    Tensor::matmul_slice_into(&a, m, k, &dense, &mut want);
    let mut got = vec![0.0f32; m * n];
    let mut scratch = PackedGemmScratch::default();
    pg.matmul_into(&a, m, &mut got, &mut scratch);
    assert_eq!(bits(&got), bits(&want), "m={m} k={k} n={n} width={width}");
}

/// Every batch size the micro-batcher can form, both widths, both
/// algebraic decoders, on a shape that doesn't divide KC=128 / NC=512.
#[test]
fn fused_gemm_matches_dense_at_every_batch_size() {
    for width in [4u32, 8] {
        for m in [1usize, 2, 3, 5, 8, 17] {
            let (table, decode) = af_setup(width, -10);
            check(m, 133, 517, width, table, decode);
            let (table, decode) = uniform_setup(width, 0.031_25);
            check(m, 133, 517, width, table, decode);
        }
    }
}

/// Shapes that exactly hit, and barely exceed, the tile boundaries.
#[test]
fn fused_gemm_handles_tile_boundary_shapes() {
    for (k, n) in [(1, 1), (128, 512), (129, 513), (127, 511), (256, 1024)] {
        let (table, decode) = af_setup(8, -6);
        check(3, k, n, 8, table, decode);
    }
}

proptest! {
    /// Random shapes/widths/biases: fused output is always bit-identical
    /// to dequantize-then-dense-matmul.
    #[test]
    fn fused_gemm_is_bit_identical_randomly(
        m in 1usize..6,
        k in 1usize..200,
        n in 1usize..180,
        wide in 0u8..2,
        exp_bias in -20i32..5,
    ) {
        let width = if wide == 1 { 8 } else { 4 };
        let (table, decode) = af_setup(width, exp_bias);
        check(m, k, n, width, table, decode);
    }
}
