//! The accelerator system of Figure 6: four PEs behind a broadcasting
//! streaming bus, a 1 MB global buffer collecting activations through an
//! arbitrated crossbar, and the cycle/energy/area rollup of Table 4.

use crate::constants::CostParams;
use crate::pe::{PeConfig, PeKind, PeModel};
use crate::workload::LstmWorkload;

/// A 4-PE accelerator instance (Figure 6).
#[derive(Debug, Clone)]
pub struct Accelerator {
    pe: PeModel,
    num_pes: usize,
    gb_bytes: usize,
    weight_buffer_bytes: usize,
    params: CostParams,
    /// Pipeline fill/drain latency per timestep, in cycles (calibrated so
    /// the paper workload lands at its reported 81.2 µs).
    pipeline_latency: u64,
}

/// The PPA rollup for a workload run (one row of Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorReport {
    /// Datapath name (`INT8/24/40` etc.).
    pub name: String,
    /// Total cycles for the workload.
    pub cycles: u64,
    /// Wall-clock time in µs at the library clock.
    pub time_us: f64,
    /// Total energy in µJ.
    pub energy_uj: f64,
    /// Average power in mW.
    pub power_mw: f64,
    /// Total area in mm² (datapaths + weight buffers + global buffer +
    /// interconnect).
    pub area_mm2: f64,
    /// Effective throughput in GOPS.
    pub gops: f64,
}

impl Accelerator {
    /// The paper's system: 4 PEs, a 1 MB global buffer, and per-PE weight
    /// buffers sized to hold the LSTM gate weights at the operand width.
    pub fn paper_system(kind: PeKind, n_bits: u32, vector_size: u32) -> Self {
        let params = CostParams::finfet16();
        let pe = PeModel::new(kind, PeConfig::paper(n_bits, vector_size), &params);
        // The LSTM weights (524,288 params) split across 4 PEs at n bits:
        // 131,072 · n / 8 bytes each; rounded up to a power-of-two buffer
        // between 256 KB and 1 MB as in the paper.
        let per_pe_weights = LstmWorkload::paper().weight_count() as usize / 4;
        let bytes = per_pe_weights * n_bits as usize / 8;
        let weight_buffer_bytes = bytes.next_power_of_two().clamp(256 << 10, 1 << 20);
        Accelerator {
            pe,
            num_pes: 4,
            gb_bytes: 1 << 20,
            weight_buffer_bytes,
            params,
            pipeline_latency: 44,
        }
    }

    /// The PE model in use.
    pub fn pe(&self) -> &PeModel {
        &self.pe
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Per-PE weight buffer size in bytes.
    pub fn weight_buffer_bytes(&self) -> usize {
        self.weight_buffer_bytes
    }

    /// Cycles for one LSTM timestep: compute (MACs over the PE array) +
    /// the global-buffer collect/broadcast of the hidden state + pipeline
    /// fill/drain. Both PE kinds pipeline identically under HLS, so the
    /// cycle count is datapath-independent (the paper's Table 4 reports
    /// the same 81.2 µs for both).
    pub fn cycles_per_timestep(&self, workload: &LstmWorkload) -> u64 {
        let array_macs_per_cycle = self.pe.macs_per_cycle() * self.num_pes as u64;
        let compute = workload.macs_per_timestep().div_ceil(array_macs_per_cycle);
        let broadcast = workload.hidden as u64; // one activation per cycle
        compute + broadcast + self.pipeline_latency
    }

    /// Run the workload and produce the Table 4 row.
    pub fn run(&self, workload: &LstmWorkload) -> AcceleratorReport {
        let cycles_per_step = self.cycles_per_timestep(workload);
        let cycles = cycles_per_step * workload.timesteps as u64;
        let time_us = cycles as f64 / (self.params.clock_ghz * 1e3);
        // Dynamic energy: active compute cycles on the PEs.
        let array_macs_per_cycle = self.pe.macs_per_cycle() * self.num_pes as u64;
        let compute_cycles =
            workload.macs_per_timestep().div_ceil(array_macs_per_cycle) * workload.timesteps as u64;
        let pe_energy_fj = self.pe.cycle_energy_fj() * compute_cycles as f64 * self.num_pes as f64;
        // Global buffer traffic: each timestep writes the hidden state in
        // and broadcasts it back out to 4 PEs.
        let n = self.pe.config().n_bits as f64;
        let gb_bits_per_step = workload.hidden as f64 * n * (1.0 + self.num_pes as f64);
        let gb_energy_fj =
            gb_bits_per_step * workload.timesteps as f64 * self.params.sram_read_fj_per_bit;
        // Crossbar/bus: one flit per transferred activation.
        let bus_energy_fj =
            workload.hidden as f64 * workload.timesteps as f64 * self.params.ctrl_fj_per_lane;
        let area_mm2 = self.area_mm2();
        let leakage_mw = area_mm2 * self.params.leakage_mw_per_mm2;
        let dynamic_uj = (pe_energy_fj + gb_energy_fj + bus_energy_fj) / 1e9;
        let leakage_uj = leakage_mw * time_us * 1e-3; // mW · µs = 1e-3 µJ
        let energy_uj = dynamic_uj + leakage_uj;
        let power_mw = energy_uj / time_us * 1e3;
        AcceleratorReport {
            name: self.pe.name(),
            cycles,
            time_us,
            energy_uj,
            power_mw,
            area_mm2,
            gops: workload.total_ops() as f64 / (time_us * 1e3),
        }
    }

    /// Total floorplan area: PE datapaths (with the HLS pipeline/wiring
    /// overhead), per-PE weight buffers, the global buffer, and a
    /// crossbar allowance.
    pub fn area_mm2(&self) -> f64 {
        let datapath =
            self.pe.datapath_area_mm2() * self.params.hls_area_overhead * self.num_pes as f64;
        let sram_bits = (self.weight_buffer_bytes * self.num_pes + self.gb_bytes) as f64 * 8.0;
        let sram = sram_bits * self.params.sram_um2_per_bit / 1e6;
        let crossbar = 0.3;
        datapath + sram + crossbar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: PeKind) -> AcceleratorReport {
        Accelerator::paper_system(kind, 8, 16).run(&LstmWorkload::paper())
    }

    #[test]
    fn compute_time_matches_paper_magnitude_and_is_equal() {
        // Paper: both systems take 81.2 µs for 100 timesteps.
        let int = report(PeKind::Int);
        let hf = report(PeKind::HfInt);
        assert_eq!(int.time_us, hf.time_us, "same pipelining → same time");
        assert!(
            (60.0..110.0).contains(&int.time_us),
            "time {} µs",
            int.time_us
        );
    }

    #[test]
    fn hfint_power_advantage() {
        // Paper: HFINT power is 0.92× of INT (56.22 vs 61.38 mW).
        let int = report(PeKind::Int);
        let hf = report(PeKind::HfInt);
        let ratio = hf.power_mw / int.power_mw;
        assert!((0.80..0.99).contains(&ratio), "power ratio {ratio}");
        // Magnitudes within ~2× of the paper's tens of mW.
        assert!((25.0..160.0).contains(&int.power_mw), "{} mW", int.power_mw);
    }

    #[test]
    fn hfint_area_penalty() {
        // Paper: HFINT area is 1.14× of INT (7.9 vs 6.9 mm²).
        let int = report(PeKind::Int);
        let hf = report(PeKind::HfInt);
        let ratio = hf.area_mm2 / int.area_mm2;
        assert!(ratio > 1.0, "HFINT must be larger: {ratio}");
        assert!(ratio < 1.3, "but not wildly: {ratio}");
        assert!((3.0..12.0).contains(&int.area_mm2), "{} mm²", int.area_mm2);
    }

    #[test]
    fn weight_buffer_sized_from_workload() {
        // 8-bit: 131072 weights/PE = 128 KB → clamps to the 256 KB floor.
        let acc = Accelerator::paper_system(PeKind::Int, 8, 16);
        assert_eq!(acc.weight_buffer_bytes(), 256 << 10);
    }

    #[test]
    fn cycles_decompose() {
        let acc = Accelerator::paper_system(PeKind::Int, 8, 16);
        let w = LstmWorkload::paper();
        // 524288 / (4·256) = 512 compute + 256 broadcast + 44 pipeline.
        assert_eq!(acc.cycles_per_timestep(&w), 512 + 256 + 44);
    }

    #[test]
    fn gops_reflects_array_utilization() {
        let r = report(PeKind::Int);
        // Peak = 4 PEs × 0.512 TOPS = 2.048 TOPS; utilization 512/812.
        assert!((1000.0..2048.0).contains(&r.gops), "GOPS {}", r.gops);
    }
}
