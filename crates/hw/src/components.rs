//! Bill-of-materials accounting: named component entries with counts,
//! per-event energy, and area — so a PE's cost rollup is inspectable.

/// One line of a bill of materials.
#[derive(Debug, Clone, PartialEq)]
pub struct BomItem {
    /// Component name, e.g. `"mantissa multiplier 5x5"`.
    pub name: String,
    /// Instances (for area) or events per accounting period (for energy).
    pub count: f64,
    /// Energy per event in fJ (0 for area-only entries).
    pub energy_fj: f64,
    /// Area per instance in µm² (0 for energy-only entries).
    pub area_um2: f64,
}

/// A bill of materials: the structural cost description of a datapath.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bom {
    items: Vec<BomItem>,
}

impl Bom {
    /// Empty bill.
    pub fn new() -> Self {
        Bom::default()
    }

    /// Add an entry.
    pub fn push(&mut self, name: impl Into<String>, count: f64, energy_fj: f64, area_um2: f64) {
        self.items.push(BomItem {
            name: name.into(),
            count,
            energy_fj,
            area_um2,
        });
    }

    /// Total energy (Σ count · energy) in fJ.
    pub fn energy_fj(&self) -> f64 {
        self.items.iter().map(|i| i.count * i.energy_fj).sum()
    }

    /// Total area (Σ count · area) in µm².
    pub fn area_um2(&self) -> f64 {
        self.items.iter().map(|i| i.count * i.area_um2).sum()
    }

    /// Iterate the entries.
    pub fn iter(&self) -> impl Iterator<Item = &BomItem> {
        self.items.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the bill is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Render as an aligned table (name, count, energy, area).
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("component                              count     fJ/event      µm²\n");
        for i in &self.items {
            out.push_str(&format!(
                "{:<38} {:>7.0} {:>12.2} {:>8.1}\n",
                i.name, i.count, i.energy_fj, i.area_um2
            ));
        }
        out.push_str(&format!(
            "TOTAL energy {:.1} fJ, area {:.1} µm²\n",
            self.energy_fj(),
            self.area_um2()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_counts() {
        let mut b = Bom::new();
        b.push("mult", 4.0, 10.0, 100.0);
        b.push("adder", 2.0, 1.0, 5.0);
        assert_eq!(b.energy_fj(), 42.0);
        assert_eq!(b.area_um2(), 410.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn table_renders_all_rows() {
        let mut b = Bom::new();
        b.push("x", 1.0, 2.0, 3.0);
        let t = b.to_table();
        assert!(t.contains('x'));
        assert!(t.contains("TOTAL"));
    }
}
