//! Fault hooks for the bit-accurate PE datapaths.
//!
//! A transient upset inside a PE is not the same as a corrupted weight
//! buffer: it strikes *intermediate* state — a multiplier output lane,
//! the wide accumulator register, the exponent-bias register feeding the
//! output scale. [`DatapathFaults`] exposes exactly those three strike
//! points as hooks. The instrumented datapaths in [`crate::arith`] call
//! the hooks at the corresponding pipeline stages; the identity
//! implementation [`NoFaults`] makes the instrumented path bit-identical
//! to the clean one, which is the zero-fault guarantee the resilience
//! campaigns (and a regression test) rely on.
//!
//! The hooks take `&self` so one fault plan can be shared across lanes
//! and calls; implementations that need mutable state (e.g. a counter of
//! injected faults) use interior mutability.

/// Strike points inside a PE datapath. All hooks default to the
/// identity, so an implementation only overrides the stages it corrupts.
pub trait DatapathFaults {
    /// Called with each multiplier output (`lane` is the MAC lane index
    /// within the current dot product). Return the possibly-corrupted
    /// product.
    fn on_product(&self, lane: usize, product: i128) -> i128 {
        let _ = lane;
        product
    }

    /// Called with the accumulator value after each lane's add. Return
    /// the possibly-corrupted accumulator state.
    fn on_accumulator(&self, lane: usize, acc: i128) -> i128 {
        let _ = lane;
        acc
    }

    /// Called with the exponent-bias register value (per operand tensor)
    /// before it enters the output scale computation.
    fn on_exp_bias(&self, bias: i32) -> i32 {
        bias
    }
}

/// The identity fault plan: every hook passes its input through
/// unchanged. Using it makes the instrumented datapaths bit-identical
/// to the uninstrumented ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl DatapathFaults for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlipLane3;

    impl DatapathFaults for FlipLane3 {
        fn on_product(&self, lane: usize, product: i128) -> i128 {
            if lane == 3 {
                product ^ 0b100
            } else {
                product
            }
        }
    }

    #[test]
    fn defaults_are_identity() {
        let f = NoFaults;
        assert_eq!(f.on_product(0, 12345), 12345);
        assert_eq!(f.on_accumulator(7, -9), -9);
        assert_eq!(f.on_exp_bias(-11), -11);
    }

    #[test]
    fn overriding_one_hook_leaves_the_rest_identity() {
        let f = FlipLane3;
        assert_eq!(f.on_product(0, 8), 8);
        assert_eq!(f.on_product(3, 8), 12);
        assert_eq!(f.on_accumulator(3, 8), 8);
        assert_eq!(f.on_exp_bias(2), 2);
    }
}
