//! Bit-accurate functional models of the two PE datapaths.
//!
//! These compute with the *integer* operations the hardware would use —
//! mantissa multiplies, exponent adds, barrel shifts, wide accumulators —
//! and are checked against exact floating-point references, demonstrating
//! that the Figure 5 datapaths faithfully implement the quantized
//! arithmetic the algorithm layer promises.

use crate::faults::{DatapathFaults, NoFaults};
use adaptivfloat::{AdaptivFloat, AdaptivParams};

/// A decoded AdaptivFloat operand as the hardware sees it: sign, exponent
/// field, and mantissa integer with the implied leading one attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfOperand {
    /// True for negative values.
    pub negative: bool,
    /// Exponent field (0 .. 2^e − 1); meaningful only if `nonzero`.
    pub exp_field: u32,
    /// Mantissa with implied one: `(1 << m) + mant_field`.
    pub mant_int: u64,
    /// False when the code is ±0.
    pub nonzero: bool,
}

/// Crack an AdaptivFloat code into hardware fields.
pub fn decode_operand(fmt: &AdaptivFloat, code: u32) -> AfOperand {
    let n = fmt.n();
    let e = fmt.e();
    let m = fmt.mantissa_bits();
    let sign = (code >> (n - 1)) & 1 == 1;
    let exp_field = (code >> m) & ((1 << e) - 1);
    let mant_field = if m == 0 { 0 } else { code & ((1 << m) - 1) };
    let nonzero = !(exp_field == 0 && mant_field == 0);
    AfOperand {
        negative: sign,
        exp_field,
        mant_int: ((1u64 << m) + mant_field as u64),
        nonzero,
    }
}

/// HFINT vector MAC: multiply AdaptivFloat codes with integer mantissa
/// multipliers and exponent adders, align with a barrel shift, and
/// accumulate in a wide integer — exactly Figure 5b's first stage.
///
/// Returns the accumulator value and the real number it represents
/// (`acc · 2^(bias_w + bias_a − 2m)`).
///
/// # Panics
///
/// Panics if the code slices have different lengths.
pub fn hfint_dot(
    fmt: &AdaptivFloat,
    w_params: &AdaptivParams,
    a_params: &AdaptivParams,
    w_codes: &[u32],
    a_codes: &[u32],
) -> (i128, f64) {
    hfint_dot_with_faults(fmt, w_params, a_params, w_codes, a_codes, &NoFaults)
}

/// [`hfint_dot`] with [`DatapathFaults`] hooks at the three strike
/// points a transient upset can hit: each aligned multiplier output
/// ([`on_product`](DatapathFaults::on_product)), the accumulator after
/// each add ([`on_accumulator`](DatapathFaults::on_accumulator)), and
/// the two exponent-bias registers feeding the output scale
/// ([`on_exp_bias`](DatapathFaults::on_exp_bias)). With [`NoFaults`]
/// this is bit-identical to the clean path — `hfint_dot` simply
/// delegates here.
///
/// # Panics
///
/// Panics if the code slices have different lengths.
pub fn hfint_dot_with_faults(
    fmt: &AdaptivFloat,
    w_params: &AdaptivParams,
    a_params: &AdaptivParams,
    w_codes: &[u32],
    a_codes: &[u32],
    faults: &dyn DatapathFaults,
) -> (i128, f64) {
    assert_eq!(w_codes.len(), a_codes.len(), "operand count mismatch");
    let m = fmt.mantissa_bits() as i32;
    let mut acc: i128 = 0;
    for (lane, (&wc, &ac)) in w_codes.iter().zip(a_codes).enumerate() {
        let w = decode_operand(fmt, wc);
        let a = decode_operand(fmt, ac);
        if !w.nonzero || !a.nonzero {
            continue; // zero operand contributes nothing
        }
        let product = (w.mant_int as i128) * (a.mant_int as i128);
        let aligned = faults.on_product(lane, product << (w.exp_field + a.exp_field));
        acc += if w.negative ^ a.negative {
            -aligned
        } else {
            aligned
        };
        acc = faults.on_accumulator(lane, acc);
    }
    let bias_w = faults.on_exp_bias(w_params.exp_bias);
    let bias_a = faults.on_exp_bias(a_params.exp_bias);
    let scale = (bias_w + bias_a - 2 * m) as f64;
    (acc, acc as f64 * scale.exp2())
}

/// INT vector MAC with post-accumulation dequantization: accumulate
/// integer levels, multiply by an `S`-bit fixed-point rendering of the
/// combined scale, and shift right — Figure 5a's datapath.
///
/// `scale` is the real-valued combined scale (`s_w · s_a`); it is
/// *quantized to `s_bits` bits of mantissa* exactly as the hardware's
/// scaling register would hold it. Returns the final integer and the real
/// value it represents.
///
/// # Panics
///
/// Panics if the level slices have different lengths or `scale` is not
/// positive and finite.
pub fn int_dot_scaled(w_levels: &[i64], a_levels: &[i64], scale: f64, s_bits: u32) -> (i128, f64) {
    int_dot_scaled_with_faults(w_levels, a_levels, scale, s_bits, &NoFaults)
}

/// [`int_dot_scaled`] with [`DatapathFaults`] hooks on the multiplier
/// outputs and the accumulator (the INT PE has no exponent-bias
/// register, so [`on_exp_bias`](DatapathFaults::on_exp_bias) is never
/// called). With [`NoFaults`] this is bit-identical to the clean path.
///
/// # Panics
///
/// Panics if the level slices have different lengths or `scale` is not
/// positive and finite.
pub fn int_dot_scaled_with_faults(
    w_levels: &[i64],
    a_levels: &[i64],
    scale: f64,
    s_bits: u32,
    faults: &dyn DatapathFaults,
) -> (i128, f64) {
    assert_eq!(w_levels.len(), a_levels.len(), "operand count mismatch");
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    let mut acc: i128 = 0;
    for (lane, (&w, &a)) in w_levels.iter().zip(a_levels).enumerate() {
        acc += faults.on_product(lane, (w as i128) * (a as i128));
        acc = faults.on_accumulator(lane, acc);
    }
    // Fixed-point scale: mantissa of s_bits, exponent r such that
    // scale ≈ fs · 2^−r with 2^(s_bits−1) ≤ fs < 2^s_bits.
    let r = s_bits as i32 - 1 - scale.log2().floor() as i32;
    let fs = (scale * (r as f64).exp2()).round() as i128;
    let scaled = acc * fs;
    // Arithmetic shift right with rounding (the hardware truncates after
    // adding half an LSB).
    let half = 1i128 << (r - 1).max(0);
    let shifted = if r > 0 {
        (scaled + half) >> r
    } else {
        scaled << -r
    };
    (shifted, shifted as f64)
}

/// The HFINT PE's integer→AdaptivFloat output conversion: clamp an
/// integer activation to the representable range and re-encode
/// (priority encode + normalize in hardware; here via the format codec).
pub fn int_to_adaptivfloat(fmt: &AdaptivFloat, params: &AdaptivParams, value: f64) -> u32 {
    fmt.encode_with(params, value as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivfloat::NumberFormat;

    fn codes(fmt: &AdaptivFloat, params: &AdaptivParams, vals: &[f32]) -> Vec<u32> {
        vals.iter().map(|&v| fmt.encode_with(params, v)).collect()
    }

    #[test]
    fn hfint_dot_is_exact() {
        // Integer accumulation of AdaptivFloat products must equal the
        // exact dot product of the dequantized operands.
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let w: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.11)
            .collect();
        let a: Vec<f32> = (0..64)
            .map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.07)
            .collect();
        let wp = fmt.params_for(&w);
        let ap = fmt.params_for(&a);
        let wq = fmt
            .plan(&adaptivfloat::QuantStats::from_slice(&w))
            .execute(&w);
        let aq = fmt
            .plan(&adaptivfloat::QuantStats::from_slice(&a))
            .execute(&a);
        let exact: f64 = wq.iter().zip(&aq).map(|(&x, &y)| x as f64 * y as f64).sum();
        let wc = codes(&fmt, &wp, &w);
        let ac = codes(&fmt, &ap, &a);
        let (_, got) = hfint_dot(&fmt, &wp, &ap, &wc, &ac);
        assert!(
            (got - exact).abs() < 1e-9,
            "hardware {got} vs exact {exact}"
        );
    }

    #[test]
    fn hfint_dot_zero_codes_contribute_nothing() {
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(-7);
        let wc = vec![0u32, fmt.encode_with(&params, 1.0)];
        let ac = vec![fmt.encode_with(&params, 1.0), 0u32];
        let (acc, val) = hfint_dot(&fmt, &params, &params, &wc, &ac);
        assert_eq!(acc, 0);
        assert_eq!(val, 0.0);
    }

    #[test]
    fn hfint_accumulator_fits_paper_width() {
        // Worst case: H=256 max-magnitude products must fit the paper's
        // 2(2^e−1) + 2m + log2(H)-bit signed accumulator (plus sign).
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(0);
        let max_code = fmt.encode_with(&params, 1e30);
        let wc = vec![max_code; 256];
        let (acc, _) = hfint_dot(&fmt, &params, &params, &wc, &wc);
        // The paper quotes 2(2^e−1) + 2m + log2(H) = 30; the exact bound
        // with both implied-one bits is two more (mantissa products are
        // 2(m+1) bits wide).
        let width = 2 * 7 + 2 * (4 + 1) + 8; // = 32
        assert!(
            acc.abs() < (1i128 << width),
            "acc {acc} overflows {width} bits"
        );
        // ...and genuinely needs nearly that width (not 30 bits).
        assert!(acc.abs() > (1i128 << (width - 1)));
    }

    #[test]
    fn int_dot_matches_float_reference_to_scale_precision() {
        use adaptivfloat::Uniform;
        let fmt = Uniform::new(8).unwrap();
        let w: Vec<f32> = (0..128)
            .map(|i| ((i * 7 % 31) as f32 - 15.0) * 0.04)
            .collect();
        let a: Vec<f32> = (0..128)
            .map(|i| ((i * 11 % 29) as f32 - 14.0) * 0.05)
            .collect();
        let (sw, wl) = fmt.quantize_levels(&w);
        let (sa, al) = fmt.quantize_levels(&a);
        let exact: f64 = wl
            .iter()
            .zip(&al)
            .map(|(&x, &y)| (x as f64 * sw) * (y as f64 * sa))
            .sum();
        // Hardware: integer accumulate then 16-bit fixed-point scale to
        // "value in units of 2^-8" for comparison.
        let out_unit = (-8f64).exp2();
        let (got_int, _) = int_dot_scaled(&wl, &al, sw * sa / out_unit, 16);
        let got = got_int as f64 * out_unit;
        // Error bounded by output quantum + scale mantissa rounding.
        assert!(
            (got - exact).abs() < out_unit + exact.abs() * 2e-4,
            "hardware {got} vs exact {exact}"
        );
    }

    #[test]
    fn int_scale_register_precision_matters() {
        // With only 4 scale bits the dequantization visibly degrades —
        // the reason the INT PE needs its wide (S-bit) multiplier.
        let wl: Vec<i64> = (0..64).map(|i| (i % 17) - 8).collect();
        let al: Vec<i64> = (0..64).map(|i| (i % 13) - 6).collect();
        let scale = 0.0123_f64;
        let exact: f64 = wl
            .iter()
            .zip(&al)
            .map(|(&x, &y)| (x * y) as f64)
            .sum::<f64>()
            * scale;
        let fine = int_dot_scaled(&wl, &al, scale, 16).1;
        let coarse = int_dot_scaled(&wl, &al, scale, 4).1;
        assert!((fine - exact).abs() <= (coarse - exact).abs());
    }

    #[test]
    fn output_conversion_roundtrip() {
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(-4);
        for v in [-3.0f64, -0.2, 0.0, 0.7, 5.5] {
            let code = int_to_adaptivfloat(&fmt, &params, v);
            let back = fmt.decode_with(&params, code);
            // Within one quantization step of the format.
            let q = fmt.quantize_with(&params, v as f32);
            assert_eq!(back, q);
        }
    }

    #[test]
    fn instrumented_paths_with_no_faults_are_bit_identical() {
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let w: Vec<f32> = (0..64)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.11)
            .collect();
        let a: Vec<f32> = (0..64)
            .map(|i| ((i * 13 % 23) as f32 - 11.0) * 0.07)
            .collect();
        let wp = fmt.params_for(&w);
        let ap = fmt.params_for(&a);
        let wc = codes(&fmt, &wp, &w);
        let ac = codes(&fmt, &ap, &a);
        let clean = hfint_dot(&fmt, &wp, &ap, &wc, &ac);
        let hooked = hfint_dot_with_faults(&fmt, &wp, &ap, &wc, &ac, &NoFaults);
        assert_eq!(clean.0, hooked.0);
        assert_eq!(clean.1.to_bits(), hooked.1.to_bits());

        let wl: Vec<i64> = (0..64).map(|i| (i % 17) - 8).collect();
        let al: Vec<i64> = (0..64).map(|i| (i % 13) - 6).collect();
        let clean = int_dot_scaled(&wl, &al, 0.0123, 16);
        let hooked = int_dot_scaled_with_faults(&wl, &al, 0.0123, 16, &NoFaults);
        assert_eq!(clean.0, hooked.0);
        assert_eq!(clean.1.to_bits(), hooked.1.to_bits());
    }

    #[test]
    fn datapath_faults_strike_the_named_stages() {
        struct StuckAccMsb;
        impl DatapathFaults for StuckAccMsb {
            fn on_accumulator(&self, _lane: usize, acc: i128) -> i128 {
                acc | (1 << 20)
            }
        }
        struct BiasFlip;
        impl DatapathFaults for BiasFlip {
            fn on_exp_bias(&self, bias: i32) -> i32 {
                bias ^ 0b10
            }
        }
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(-7);
        let wc: Vec<u32> = vec![fmt.encode_with(&params, 0.5); 4];
        let ac: Vec<u32> = vec![fmt.encode_with(&params, 0.25); 4];
        let clean = hfint_dot(&fmt, &params, &params, &wc, &ac);
        let acc_hit = hfint_dot_with_faults(&fmt, &params, &params, &wc, &ac, &StuckAccMsb);
        assert_ne!(clean.0, acc_hit.0, "stuck accumulator bit must show up");
        let bias_hit = hfint_dot_with_faults(&fmt, &params, &params, &wc, &ac, &BiasFlip);
        // A bias flip rescales the result without touching the integer.
        assert_eq!(clean.0, bias_hit.0);
        assert_ne!(clean.1, bias_hit.1, "bias flip must rescale the output");
    }

    #[test]
    fn decode_operand_fields() {
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(-7);
        // 1.0 = 2^0 · 1.0 → exp_field = 7, mant_int = 16 (m=4).
        let code = fmt.encode_with(&params, 1.0);
        let op = decode_operand(&fmt, code);
        assert!(op.nonzero && !op.negative);
        assert_eq!(op.exp_field, 7);
        assert_eq!(op.mant_int, 16);
        let zero = decode_operand(&fmt, 0);
        assert!(!zero.nonzero);
    }
}
