//! The 16 nm-class component cost library.
//!
//! Constants are *effective* per-primitive costs — they fold in clock
//! tree, wiring, and pipeline overheads of an HLS-generated design — and
//! were calibrated in two steps: start from published 16 nm-class
//! primitive data (multiplier energy ∝ operand-bit product, adder/register
//! energy ∝ width), then tune within physically plausible bounds so the
//! INT-vs-HFINT *ratios* of the paper's Figure 7 are reproduced (HFINT
//! per-op energy 0.9–1.0× of INT, INT perf/area 1.04–1.21× of HFINT,
//! both trends growing with vector size and operand width).

/// Per-primitive energy (fJ) and area (µm²) cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Multiplier energy per bit-product (fJ per `a·b`).
    pub mult_fj_per_bit2: f64,
    /// Adder energy per bit (fJ).
    pub add_fj_per_bit: f64,
    /// Register write energy per bit (fJ).
    pub reg_write_fj_per_bit: f64,
    /// Register/operand-latch read energy per bit (fJ).
    pub reg_read_fj_per_bit: f64,
    /// SRAM read energy per bit (fJ), small buffer, including periphery.
    pub sram_read_fj_per_bit: f64,
    /// Barrel-shifter energy per bit shifted (fJ).
    pub shift_fj_per_bit: f64,
    /// Fixed per-cycle control energy per PE (fJ).
    pub ctrl_fj_fixed: f64,
    /// Per-lane per-cycle control energy (fJ).
    pub ctrl_fj_per_lane: f64,
    /// Multiplier area per bit-product (µm²).
    pub mult_um2_per_bit2: f64,
    /// Adder area per bit (µm²).
    pub add_um2_per_bit: f64,
    /// Register area per bit (µm²).
    pub reg_um2_per_bit: f64,
    /// Shifter area per bit (µm²).
    pub shift_um2_per_bit: f64,
    /// Fixed control/sequencer area per PE (µm²).
    pub ctrl_um2_fixed: f64,
    /// Per-MAC wiring/pipeline area overhead (µm²).
    pub ctrl_um2_per_mac: f64,
    /// SRAM density including periphery (µm² per bit).
    pub sram_um2_per_bit: f64,
    /// HLS pipeline/wiring area overhead multiplier applied to datapath
    /// logic when rolled into a full accelerator floorplan.
    pub hls_area_overhead: f64,
    /// Static leakage power density (mW per mm²).
    pub leakage_mw_per_mm2: f64,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
}

impl CostParams {
    /// The calibrated 16 nm FinFET-class parameter set.
    pub fn finfet16() -> Self {
        CostParams {
            mult_fj_per_bit2: 0.83,
            add_fj_per_bit: 0.05,
            reg_write_fj_per_bit: 1.5,
            reg_read_fj_per_bit: 0.5,
            sram_read_fj_per_bit: 20.0,
            shift_fj_per_bit: 0.79,
            ctrl_fj_fixed: 2187.0,
            ctrl_fj_per_lane: 474.0,
            mult_um2_per_bit2: 1.72,
            add_um2_per_bit: 3.95,
            reg_um2_per_bit: 6.0,
            shift_um2_per_bit: 4.0,
            ctrl_um2_fixed: 15336.0,
            ctrl_um2_per_mac: 454.0,
            sram_um2_per_bit: 0.30,
            hls_area_overhead: 4.0,
            leakage_mw_per_mm2: 2.0,
            clock_ghz: 1.0,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::finfet16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_bit_multiplier_magnitude_is_plausible() {
        // An 8×8 multiplier at 16 nm should cost tens of fJ and a few
        // hundred µm².
        let p = CostParams::finfet16();
        let e = p.mult_fj_per_bit2 * 64.0;
        let a = p.mult_um2_per_bit2 * 64.0;
        assert!((10.0..120.0).contains(&e), "mult energy {e} fJ");
        assert!((50.0..500.0).contains(&a), "mult area {a} µm²");
    }

    #[test]
    fn sram_density_magnitude() {
        // 1 MB at this density should be a fraction of a mm² up to a few
        // mm² — the scale Table 4 floorplans operate at.
        let p = CostParams::finfet16();
        let mb = 8.0 * 1024.0 * 1024.0 * p.sram_um2_per_bit / 1e6;
        assert!((0.5..5.0).contains(&mb), "1MB = {mb} mm²");
    }

    #[test]
    fn default_is_finfet16() {
        assert_eq!(CostParams::default(), CostParams::finfet16());
    }
}
