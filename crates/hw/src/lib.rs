//! # af-hw — the paper's hardware co-design, as an analytical +
//! bit-accurate model
//!
//! The paper implements two DNN processing elements in SystemC/HLS on a
//! 16 nm FinFET library: an NVDLA-like monolithic **INT** PE (Figure 5a)
//! and the proposed **Hybrid Float-Integer (HFINT)** PE exploiting
//! AdaptivFloat (Figure 5b), then compares per-operation energy and
//! throughput per area across MAC vector sizes (Figure 7) and full
//! 4-PE accelerator PPA on a 100-timestep LSTM (Table 4, Figure 6).
//!
//! We reproduce that flow with:
//!
//! * a **component cost library** ([`constants::CostParams`]) of
//!   energy/area primitives calibrated to 16 nm-class published data and
//!   tuned so the INT/HFINT *ratios* track the paper's Figure 7;
//! * **structural PE models** ([`PeModel`]) that assemble the exact
//!   datapaths of Figure 5 — multiplier widths, adder trees, accumulator
//!   widths (`INT8/24/40`, `HFINT8/30`), the INT PE's post-accumulation
//!   scaling multiplier, the HFINT PE's exponent-bias shift and
//!   integer→float converter — into bills of materials;
//! * **bit-accurate functional datapaths** ([`arith`]) proving the two
//!   PEs compute what the quantization algorithms promise;
//! * an **accelerator system model** ([`Accelerator`]) with 4 PEs and a
//!   1 MB global buffer running the paper's weight-stationary LSTM
//!   workload.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod accelerator;
pub mod arith;
pub mod components;
pub mod constants;
pub mod faults;
pub mod pe;
pub mod workload;

pub use accelerator::{Accelerator, AcceleratorReport};
pub use components::{Bom, BomItem};
pub use constants::CostParams;
pub use faults::{DatapathFaults, NoFaults};
pub use pe::{PeConfig, PeKind, PeModel};
pub use workload::LstmWorkload;
