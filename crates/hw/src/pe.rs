//! Structural models of the two processing elements of Figure 5.
//!
//! * **INT PE** (Figure 5a, NVDLA-like): `n`-bit integer vector MACs,
//!   `2n + log2(H)`-bit accumulation, an `S = 2n`-bit post-accumulation
//!   scaling multiplier (the dequantization step integer quantization
//!   needs), a right-shift, clip/truncate, and the activation unit.
//! * **HFINT PE** (Figure 5b, proposed): AdaptivFloat operands —
//!   `(m+1)×(m+1)` mantissa multipliers plus `e`-bit exponent adders and
//!   an alignment shifter — accumulated as integer at
//!   `2(2^e − 1) + 2m + log2(H)` bits, post-processed with the weight +
//!   activation `exp_bias` shift (a cheap add/shift instead of the INT
//!   PE's wide multiplier), truncation, and an integer→float converter.

use crate::components::Bom;
use crate::constants::CostParams;

/// Which datapath (Figure 5a vs 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Monolithic integer PE (NVDLA-like).
    Int,
    /// Hybrid float-integer PE (AdaptivFloat).
    HfInt,
}

impl PeKind {
    /// Short label: `"INT"` or `"HFINT"`.
    pub fn label(self) -> &'static str {
        match self {
            PeKind::Int => "INT",
            PeKind::HfInt => "HFINT",
        }
    }
}

/// Geometry of a PE instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeConfig {
    /// Operand word size in bits.
    pub n_bits: u32,
    /// MAC vector size `K` (also the number of parallel lanes).
    pub vector_size: u32,
    /// Accumulation depth `H` (values summed without overflow).
    pub accum_depth: u32,
    /// AdaptivFloat exponent bits (HFINT only; the paper fixes 3).
    pub exp_bits: u32,
}

impl PeConfig {
    /// The paper's configuration at word size `n` and vector size `K`:
    /// `H = 256`, 3 exponent bits.
    pub fn paper(n_bits: u32, vector_size: u32) -> Self {
        PeConfig {
            n_bits,
            vector_size,
            accum_depth: 256,
            exp_bits: 3,
        }
    }
}

/// An analyzed PE: bills of materials for area, per-cycle energy, and
/// per-output post-processing energy.
#[derive(Debug, Clone)]
pub struct PeModel {
    kind: PeKind,
    config: PeConfig,
    params: CostParams,
    cycle_energy: Bom,
    post_energy: Bom,
    area: Bom,
}

impl PeModel {
    /// Build the model for a PE kind and geometry under a cost library.
    pub fn new(kind: PeKind, config: PeConfig, params: &CostParams) -> Self {
        let mut model = PeModel {
            kind,
            config,
            params: params.clone(),
            cycle_energy: Bom::new(),
            post_energy: Bom::new(),
            area: Bom::new(),
        };
        model.build();
        model
    }

    /// The PE kind.
    pub fn kind(&self) -> PeKind {
        self.kind
    }

    /// The geometry.
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    /// Accumulator width: `2n + log2(H)` for INT,
    /// `2(2^e − 1) + 2m + log2(H)` for HFINT.
    pub fn accumulator_bits(&self) -> u32 {
        let n = self.config.n_bits;
        let guard = log2_ceil(self.config.accum_depth);
        match self.kind {
            PeKind::Int => 2 * n + guard,
            PeKind::HfInt => {
                let e = self.config.exp_bits;
                let m = self.mantissa_bits();
                2 * ((1 << e) - 1) + 2 * m + guard
            }
        }
    }

    /// HFINT mantissa field width `m = n − 1 − e`.
    pub fn mantissa_bits(&self) -> u32 {
        self.config.n_bits.saturating_sub(1 + self.config.exp_bits)
    }

    /// Scaling-factor width of the INT PE, `S = 2n` (16 bits at 8-bit
    /// operands, as in the paper's INT8/24/40).
    pub fn scale_bits(&self) -> u32 {
        2 * self.config.n_bits
    }

    /// Datapath name in the paper's notation: `INT8/24/40`, `HFINT8/30`.
    pub fn name(&self) -> String {
        let n = self.config.n_bits;
        let a = self.accumulator_bits();
        match self.kind {
            PeKind::Int => format!("INT{}/{}/{}", n, a, a + self.scale_bits()),
            PeKind::HfInt => format!("HFINT{}/{}", n, a),
        }
    }

    fn build(&mut self) {
        let p = self.params.clone();
        let n = self.config.n_bits as f64;
        let k = self.config.vector_size as f64;
        let a = self.accumulator_bits() as f64;
        let lk = (self.config.vector_size as f64).log2();
        let m1 = (self.mantissa_bits() + 1) as f64;
        let e = self.config.exp_bits as f64;
        let s = self.scale_bits() as f64;
        // --- per-cycle energy (the PE retires K² MACs per cycle) ---
        let ce = &mut self.cycle_energy;
        match self.kind {
            PeKind::Int => {
                let w_tree = 2.0 * n + lk;
                ce.push(
                    format!("int multiplier {n}x{n}"),
                    k * k,
                    p.mult_fj_per_bit2 * n * n,
                    0.0,
                );
                ce.push("adder tree element", k * k, p.add_fj_per_bit * w_tree, 0.0);
            }
            PeKind::HfInt => {
                ce.push(
                    format!("mantissa multiplier {m1}x{m1}"),
                    k * k,
                    p.mult_fj_per_bit2 * m1 * m1,
                    0.0,
                );
                ce.push("exponent adder", k * k, p.add_fj_per_bit * (e + 1.0), 0.0);
                ce.push(
                    "product align shifter",
                    k * k,
                    p.shift_fj_per_bit * a / 2.0,
                    0.0,
                );
                ce.push(
                    "adder tree element (wide)",
                    k * k,
                    p.add_fj_per_bit * a,
                    0.0,
                );
            }
        }
        ce.push(
            "operand latch read",
            k * k,
            p.reg_read_fj_per_bit * 2.0 * n,
            0.0,
        );
        ce.push("accumulator add", k, p.add_fj_per_bit * a, 0.0);
        ce.push(
            "partial-sum register write",
            k,
            p.reg_write_fj_per_bit * a,
            0.0,
        );
        ce.push("input buffer SRAM read", k, p.sram_read_fj_per_bit * n, 0.0);
        ce.push("control (fixed)", 1.0, p.ctrl_fj_fixed, 0.0);
        ce.push("control (per lane)", k, p.ctrl_fj_per_lane, 0.0);
        // --- per-output post-processing energy ---
        let pe_bom = &mut self.post_energy;
        match self.kind {
            PeKind::Int => {
                let wide = a + s;
                pe_bom.push(
                    format!("scaling multiplier {a}x{s}"),
                    1.0,
                    p.mult_fj_per_bit2 * a * s / 8.0,
                    0.0,
                );
                pe_bom.push(
                    "scaled register write",
                    1.0,
                    p.reg_write_fj_per_bit * wide,
                    0.0,
                );
                pe_bom.push("dequant right-shift", 1.0, p.shift_fj_per_bit * wide, 0.0);
                pe_bom.push("clip + truncate", 1.0, p.add_fj_per_bit * n, 0.0);
                pe_bom.push("activation unit", 1.0, p.add_fj_per_bit * n, 0.0);
            }
            PeKind::HfInt => {
                pe_bom.push(
                    "exp_bias adders (w+a)",
                    2.0,
                    p.add_fj_per_bit * (e + 2.0),
                    0.0,
                );
                pe_bom.push("exp_bias shift", 1.0, p.shift_fj_per_bit * a, 0.0);
                pe_bom.push(
                    "int→float converter (prio-encode)",
                    1.0,
                    p.add_fj_per_bit * a,
                    0.0,
                );
                pe_bom.push(
                    "int→float converter (normalize)",
                    1.0,
                    p.shift_fj_per_bit * a,
                    0.0,
                );
                pe_bom.push(
                    "output register write",
                    1.0,
                    p.reg_write_fj_per_bit * n,
                    0.0,
                );
                pe_bom.push("activation unit", 1.0, p.add_fj_per_bit * n, 0.0);
            }
        }
        // --- datapath area ---
        let ar = &mut self.area;
        match self.kind {
            PeKind::Int => {
                let w_tree = 2.0 * n + lk;
                ar.push(
                    format!("int multiplier {n}x{n}"),
                    k * k,
                    0.0,
                    p.mult_um2_per_bit2 * n * n,
                );
                ar.push("adder tree element", k * k, 0.0, p.add_um2_per_bit * w_tree);
                ar.push("weight register", k * k, 0.0, p.reg_um2_per_bit * n);
                ar.push(
                    "post: scaling multiplier",
                    k,
                    0.0,
                    p.mult_um2_per_bit2 * a * s / 8.0,
                );
                ar.push("post: wide register", k, 0.0, p.reg_um2_per_bit * (a + s));
                ar.push("post: shifter", k, 0.0, p.shift_um2_per_bit * (a + s));
                ar.push("post: activation", k, 0.0, p.add_um2_per_bit * n);
            }
            PeKind::HfInt => {
                ar.push(
                    format!("mantissa multiplier {m1}x{m1}"),
                    k * k,
                    0.0,
                    p.mult_um2_per_bit2 * m1 * m1,
                );
                ar.push("exponent adder", k * k, 0.0, p.add_um2_per_bit * (e + 1.0));
                ar.push("product align shifter", k * k, 0.0, p.shift_um2_per_bit * a);
                ar.push(
                    "adder tree element (wide)",
                    k * k,
                    0.0,
                    p.add_um2_per_bit * a,
                );
                ar.push("weight register", k * k, 0.0, p.reg_um2_per_bit * n);
                ar.push(
                    "post: exp_bias adders",
                    k,
                    0.0,
                    p.add_um2_per_bit * (e + 2.0),
                );
                ar.push("post: shifters", k, 0.0, 2.0 * p.shift_um2_per_bit * a);
                ar.push("post: converter adder", k, 0.0, p.add_um2_per_bit * a);
                ar.push("post: output register", k, 0.0, p.reg_um2_per_bit * n);
            }
        }
        let a_lane = p.add_um2_per_bit * a + p.reg_um2_per_bit * a + p.reg_um2_per_bit * n;
        ar.push("lane accumulator + latches", k, 0.0, a_lane);
        ar.push("control (fixed)", 1.0, 0.0, p.ctrl_um2_fixed);
        ar.push("wiring/pipeline per MAC", k * k, 0.0, p.ctrl_um2_per_mac);
    }

    /// MACs retired per cycle (`K²`).
    pub fn macs_per_cycle(&self) -> u64 {
        (self.config.vector_size as u64).pow(2)
    }

    /// Throughput in TOPS (2 ops per MAC, at the library clock).
    pub fn tops(&self) -> f64 {
        2.0 * self.macs_per_cycle() as f64 * self.params.clock_ghz * 1e9 / 1e12
    }

    /// Energy of one active cycle (K² MACs + lane + control + amortized
    /// post-processing) in fJ.
    pub fn cycle_energy_fj(&self) -> f64 {
        let outputs_per_cycle = self.macs_per_cycle() as f64 / self.config.accum_depth as f64;
        self.cycle_energy.energy_fj() + outputs_per_cycle * self.post_energy.energy_fj()
    }

    /// Per-operation energy in fJ/op (op = half a MAC, the paper's unit).
    pub fn energy_per_op_fj(&self) -> f64 {
        self.cycle_energy_fj() / (2.0 * self.macs_per_cycle() as f64)
    }

    /// Datapath area in mm² (logic only — SRAM buffers are accounted at
    /// the accelerator level, matching how Figure 7 normalizes).
    pub fn datapath_area_mm2(&self) -> f64 {
        self.area.area_um2() / 1e6
    }

    /// Throughput per datapath area in TOPS/mm² (Figure 7 bottom).
    pub fn perf_per_area(&self) -> f64 {
        self.tops() / self.datapath_area_mm2()
    }

    /// The per-cycle energy bill of materials.
    pub fn cycle_energy_bom(&self) -> &Bom {
        &self.cycle_energy
    }

    /// The per-output post-processing energy bill of materials.
    pub fn post_energy_bom(&self) -> &Bom {
        &self.post_energy
    }

    /// The datapath area bill of materials.
    pub fn area_bom(&self) -> &Bom {
        &self.area
    }
}

fn log2_ceil(x: u32) -> u32 {
    assert!(x > 0, "log2 of zero");
    32 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(kind: PeKind, n: u32, k: u32) -> PeModel {
        PeModel::new(kind, PeConfig::paper(n, k), &CostParams::finfet16())
    }

    #[test]
    fn accumulator_widths_match_paper_names() {
        // The paper: INT8/24/40 and HFINT8/30; HFINT4/22 and INT4/16/24.
        assert_eq!(pe(PeKind::Int, 8, 16).name(), "INT8/24/40");
        assert_eq!(pe(PeKind::HfInt, 8, 16).name(), "HFINT8/30");
        assert_eq!(pe(PeKind::Int, 4, 4).name(), "INT4/16/24");
        assert_eq!(pe(PeKind::HfInt, 4, 4).name(), "HFINT4/22");
    }

    #[test]
    fn energy_decreases_with_vector_size() {
        for kind in [PeKind::Int, PeKind::HfInt] {
            for n in [4, 8] {
                let e4 = pe(kind, n, 4).energy_per_op_fj();
                let e8 = pe(kind, n, 8).energy_per_op_fj();
                let e16 = pe(kind, n, 16).energy_per_op_fj();
                assert!(e4 > e8 && e8 > e16, "{kind:?} n={n}: {e4} {e8} {e16}");
            }
        }
    }

    #[test]
    fn hfint_energy_advantage_grows_with_width_and_vector() {
        // Paper: HFINT/INT per-op energy goes from ~0.97× (4-bit, K=4)
        // to ~0.90× (8-bit, K=16).
        let r44 =
            pe(PeKind::HfInt, 4, 4).energy_per_op_fj() / pe(PeKind::Int, 4, 4).energy_per_op_fj();
        let r816 =
            pe(PeKind::HfInt, 8, 16).energy_per_op_fj() / pe(PeKind::Int, 8, 16).energy_per_op_fj();
        assert!(r44 <= 1.02, "4-bit K=4 ratio {r44}");
        assert!(r816 < r44, "advantage must grow: {r44} → {r816}");
        assert!((0.80..0.97).contains(&r816), "8-bit K=16 ratio {r816}");
    }

    #[test]
    fn int_perf_per_area_advantage() {
        // Paper: INT PEs are 1.04×–1.21× denser.
        for n in [4, 8] {
            for k in [4, 8, 16] {
                let ratio =
                    pe(PeKind::Int, n, k).perf_per_area() / pe(PeKind::HfInt, n, k).perf_per_area();
                assert!(
                    (1.0..1.35).contains(&ratio),
                    "n={n} K={k} perf/area ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn magnitudes_near_paper() {
        // INT8 K=16: paper 52.21 fJ/op and 2.25 TOPS/mm². Within 1.5×.
        let m = pe(PeKind::Int, 8, 16);
        let e = m.energy_per_op_fj();
        let pa = m.perf_per_area();
        assert!((35.0..80.0).contains(&e), "energy {e}");
        assert!((1.5..3.4).contains(&pa), "perf/area {pa}");
    }

    #[test]
    fn boms_are_populated() {
        let m = pe(PeKind::HfInt, 8, 16);
        assert!(m.cycle_energy_bom().len() >= 5);
        assert!(m.post_energy_bom().len() >= 4);
        assert!(m.area_bom().len() >= 6);
        assert!(m.area_bom().to_table().contains("mantissa multiplier"));
    }

    #[test]
    fn tops_formula() {
        // K=16 → 2·256 GOPS at 1 GHz = 0.512 TOPS.
        assert!((pe(PeKind::Int, 8, 16).tops() - 0.512).abs() < 1e-9);
    }

    #[test]
    fn hfint4_has_zero_mantissa_bits() {
        let m = pe(PeKind::HfInt, 4, 4);
        assert_eq!(m.mantissa_bits(), 0);
        assert_eq!(m.accumulator_bits(), 22);
    }
}
