//! The hardware evaluation workload: an LSTM layer in a weight-stationary
//! dataflow (the paper simulates 100 timesteps with 256 hidden units).

/// An LSTM layer workload descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LstmWorkload {
    /// Hidden state size.
    pub hidden: usize,
    /// Input feature size.
    pub input: usize,
    /// Number of timesteps simulated.
    pub timesteps: usize,
}

impl LstmWorkload {
    /// The paper's Table 4 workload: 100 timesteps, 256 hidden units
    /// (input size = hidden size).
    pub fn paper() -> Self {
        LstmWorkload {
            hidden: 256,
            input: 256,
            timesteps: 100,
        }
    }

    /// MAC operations per timestep: 4 gates × hidden outputs ×
    /// (input + hidden) inputs.
    pub fn macs_per_timestep(&self) -> u64 {
        4 * self.hidden as u64 * (self.input + self.hidden) as u64
    }

    /// Total MACs over the whole run.
    pub fn total_macs(&self) -> u64 {
        self.macs_per_timestep() * self.timesteps as u64
    }

    /// Total operations (2 per MAC, the paper's OPS convention).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Weight footprint in parameters (4 gate matrices).
    pub fn weight_count(&self) -> u64 {
        4 * self.hidden as u64 * (self.input + self.hidden) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_macs() {
        let w = LstmWorkload::paper();
        // 4 · 256 · 512 = 524,288 MACs per timestep.
        assert_eq!(w.macs_per_timestep(), 524_288);
        assert_eq!(w.total_macs(), 52_428_800);
        assert_eq!(w.total_ops(), 104_857_600);
    }

    #[test]
    fn weights_match_gate_matrices() {
        let w = LstmWorkload::paper();
        assert_eq!(w.weight_count(), 524_288);
    }
}
