//! Trainable parameters: an FP32 master tensor plus an accumulated
//! gradient and the tape node it was bound to this step.

use af_tensor::Tensor;

use crate::tape::{NodeId, Tape};

/// A named trainable parameter.
///
/// The master copy stays in FP32 even under quantization-aware training —
/// the quantizer is applied as a tape op on the *bound node*, exactly as
/// the paper retrains with quantized weights in the forward pass while
/// updating full-precision weights.
#[derive(Debug, Clone)]
pub struct Param {
    /// Human-readable parameter name (used in reports).
    pub name: String,
    /// The FP32 master value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    node: Option<(u64, NodeId)>,
}

impl Param {
    /// Create a parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: name.into(),
            value,
            grad,
            node: None,
        }
    }

    /// Bind this parameter into a tape for the current step, returning the
    /// node carrying its value.
    ///
    /// Binding is idempotent per tape: a second `bind` on the *same* tape
    /// (e.g. an LSTM cell invoked at every timestep) returns the existing
    /// node, so gradients from all uses accumulate correctly.
    pub fn bind(&mut self, tape: &mut Tape) -> NodeId {
        if let Some((tape_id, node)) = self.node {
            if tape_id == tape.id() {
                return node;
            }
        }
        let id = tape.input(self.value.clone());
        self.node = Some((tape.id(), id));
        id
    }

    /// Pull this step's gradient off the tape (after `tape.backward`),
    /// accumulating into `self.grad`. No-op if the parameter was never
    /// bound on *this* tape or received no gradient.
    pub fn pull_grad(&mut self, tape: &Tape) {
        if let Some((tape_id, id)) = self.node {
            if tape_id == tape.id() {
                self.node = None;
                if let Some(g) = tape.grad(id) {
                    self.grad.axpy(1.0, g);
                }
            }
        }
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_pull_accumulates() {
        let mut p = Param::new("w", Tensor::from_vec(vec![2.0, 3.0], &[1, 2]));
        let mut tape = Tape::new();
        let w = p.bind(&mut tape);
        let y = tape.scale(w, 2.0);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        p.pull_grad(&tape);
        assert_eq!(p.grad.data(), &[2.0, 2.0]);
        // A second step accumulates on top.
        let mut tape2 = Tape::new();
        let w2 = p.bind(&mut tape2);
        let loss2 = tape2.sum_all(w2);
        tape2.backward(loss2);
        p.pull_grad(&tape2);
        assert_eq!(p.grad.data(), &[3.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn rebinding_on_same_tape_reuses_node() {
        // The recurrent case: a weight used at every timestep must get
        // gradient contributions from all of its uses.
        let mut p = Param::new("w", Tensor::from_vec(vec![2.0], &[1, 1]));
        let mut tape = Tape::new();
        let w1 = p.bind(&mut tape);
        let w2 = p.bind(&mut tape);
        assert_eq!(w1, w2, "same tape must reuse the bound node");
        // y = w·w (two uses) → dy/dw = 2w = 4.
        let y = tape.mul(w1, w2);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        p.pull_grad(&tape);
        assert_eq!(p.grad.data(), &[4.0]);
    }

    #[test]
    fn pull_without_bind_is_noop() {
        let mut p = Param::new("w", Tensor::ones(&[2]));
        let tape = Tape::new();
        p.pull_grad(&tape);
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
