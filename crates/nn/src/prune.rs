//! Magnitude pruning — the Deep-Compression technique the paper notes
//! "can be used in combination" with AdaptivFloat quantization.
//!
//! Pruning zeroes the smallest-magnitude weights; AdaptivFloat's exact
//! zero encoding represents them for free, so sparsity and the format
//! compose cleanly (a fixed-point format without exact zero could not).

use crate::param::Param;

/// Statistics from a pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneReport {
    /// Weights zeroed by this pass.
    pub pruned: usize,
    /// Total weights considered.
    pub total: usize,
    /// The magnitude threshold used.
    pub threshold: f32,
}

impl PruneReport {
    /// Fraction of weights now zero.
    pub fn sparsity(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.pruned as f64 / self.total as f64
        }
    }
}

/// Zero the smallest-magnitude `fraction` of a parameter's weights
/// (per-tensor magnitude pruning).
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]`.
pub fn prune_param(param: &mut Param, fraction: f64) -> PruneReport {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let total = param.value.len();
    if total == 0 || fraction == 0.0 {
        return PruneReport {
            pruned: 0,
            total,
            threshold: 0.0,
        };
    }
    let mut mags: Vec<f32> = param.value.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
    let k = ((total as f64 * fraction).round() as usize).min(total);
    let threshold = if k == 0 { 0.0 } else { mags[k - 1] };
    let mut pruned = 0;
    for v in param.value.data_mut() {
        if v.abs() <= threshold && pruned < k {
            *v = 0.0;
            pruned += 1;
        }
    }
    PruneReport {
        pruned,
        total,
        threshold,
    }
}

/// Prune every rank-≥2 parameter of a model's parameter list to the given
/// sparsity (biases and norm affines are left dense, as is conventional).
pub fn prune_weights(params: &mut [&mut Param], fraction: f64) -> PruneReport {
    let mut pruned = 0;
    let mut total = 0;
    let mut threshold = 0.0f32;
    for p in params.iter_mut() {
        if p.value.rank() >= 2 {
            let r = prune_param(p, fraction);
            pruned += r.pruned;
            total += r.total;
            threshold = threshold.max(r.threshold);
        }
    }
    PruneReport {
        pruned,
        total,
        threshold,
    }
}

/// Fraction of exactly-zero weights across rank-≥2 parameters.
pub fn weight_sparsity(params: &[&mut Param]) -> f64 {
    let mut zeros = 0usize;
    let mut total = 0usize;
    for p in params.iter() {
        if p.value.rank() >= 2 {
            zeros += p.value.data().iter().filter(|&&v| v == 0.0).count();
            total += p.value.len();
        }
    }
    if total == 0 {
        0.0
    } else {
        zeros as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_tensor::Tensor;

    #[test]
    fn prunes_exactly_the_smallest() {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.1, -0.5, 0.05, 2.0], &[2, 2]));
        let r = prune_param(&mut p, 0.5);
        assert_eq!(r.pruned, 2);
        assert_eq!(p.value.data(), &[0.0, -0.5, 0.0, 2.0]);
        assert_eq!(r.sparsity(), 0.5);
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        let r = prune_param(&mut p, 0.0);
        assert_eq!(r.pruned, 0);
        assert_eq!(p.value.data(), &[1.0; 4]);
    }

    #[test]
    fn full_fraction_zeroes_everything() {
        let mut p = Param::new("w", Tensor::ones(&[2, 2]));
        let r = prune_param(&mut p, 1.0);
        assert_eq!(r.pruned, 4);
        assert!(p.value.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ties_do_not_over_prune() {
        // All-equal magnitudes: request 50%, get exactly 50%.
        let mut p = Param::new("w", Tensor::ones(&[4]));
        // rank-1 via prune_param directly (prune_weights would skip it).
        let r = prune_param(&mut p, 0.5);
        assert_eq!(r.pruned, 2);
    }

    #[test]
    fn prune_weights_skips_biases() {
        let mut w = Param::new("w", Tensor::ones(&[2, 2]));
        let mut b = Param::new("b", Tensor::ones(&[2]));
        let mut params = vec![&mut w, &mut b];
        let r = prune_weights(&mut params, 0.5);
        assert_eq!(r.total, 4);
        assert_eq!(b.value.data(), &[1.0, 1.0]);
        let mut params = vec![&mut w, &mut b];
        let s = weight_sparsity(
            &params
                .as_mut_slice()
                .iter_mut()
                .map(|p| &mut **p)
                .collect::<Vec<_>>(),
        );
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let mut p = Param::new("w", Tensor::ones(&[2]));
        prune_param(&mut p, 1.5);
    }
}
