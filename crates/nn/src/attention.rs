//! Scaled-dot-product multi-head attention (Transformer and seq2seq
//! attention substrate).

use af_tensor::Tensor;
use rand::Rng;

use crate::layer::Layer;
use crate::linear::Linear;
use crate::param::Param;
use crate::quant::Quantizer;
use crate::tape::{NodeId, Tape};

/// Multi-head attention with separate Q/K/V/output projections.
///
/// Operates on single sequences laid out `[time, d_model]`; the models in
/// `af-models` fold their (small) batches into per-sequence tapes.
#[derive(Debug)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// New attention block with `d_model` features and `heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, d_model: usize, heads: usize) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide by heads");
        MultiHeadAttention {
            wq: Linear::new(rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            head_dim: d_model / heads,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Attend from `query` (`[tq, d]`) over `keys_values` (`[tkv, d]`).
    /// `mask`, if given, is added to the pre-softmax scores of every head
    /// (shape `[tq, tkv]`; use `−1e9` entries for disallowed positions).
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        query: NodeId,
        keys_values: NodeId,
        mask: Option<&Tensor>,
    ) -> NodeId {
        let q = self.wq.forward(tape, query);
        let k = self.wk.forward(tape, keys_values);
        let v = self.wv.forward(tape, keys_values);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mask_node = mask.map(|m| tape.input(m.clone()));
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let start = h * self.head_dim;
            let qh = tape.slice_cols(q, start, self.head_dim);
            let kh = tape.slice_cols(k, start, self.head_dim);
            let vh = tape.slice_cols(v, start, self.head_dim);
            let scores = tape.matmul_t(qh, kh);
            let mut scores = tape.scale(scores, scale);
            if let Some(m) = mask_node {
                scores = tape.add(scores, m);
            }
            let attn = tape.softmax(scores);
            head_outputs.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&head_outputs);
        self.wo.forward(tape, concat)
    }

    /// A causal (lower-triangular) additive mask for self-attention over
    /// `t` positions.
    pub fn causal_mask(t: usize) -> Tensor {
        let mut m = Tensor::zeros(&[t, t]);
        for r in 0..t {
            for c in (r + 1)..t {
                m.set(r, c, -1e9);
            }
        }
        m
    }
}

impl Layer for MultiHeadAttention {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.wq.params_mut();
        p.extend(self.wk.params_mut());
        p.extend(self.wv.params_mut());
        p.extend(self.wo.params_mut());
        p
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.wq.set_weight_quantizer(quantizer.clone());
        self.wk.set_weight_quantizer(quantizer.clone());
        self.wv.set_weight_quantizer(quantizer.clone());
        self.wo.set_weight_quantizer(quantizer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_query() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mha = MultiHeadAttention::new(&mut rng, "attn", 8, 2);
        let mut tape = Tape::new();
        let q = tape.input(Tensor::ones(&[3, 8]));
        let kv = tape.input(Tensor::ones(&[5, 8]));
        let y = mha.forward(&mut tape, q, kv, None);
        assert_eq!(tape.value(y).shape(), &[3, 8]);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let m = MultiHeadAttention::causal_mask(3);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(0, 2), -1e9);
        assert_eq!(m.at(2, 0), 0.0);
    }

    #[test]
    fn masked_position_gets_zero_attention() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mha = MultiHeadAttention::new(&mut rng, "attn", 4, 1);
        // Make V the identity pass-through so output reveals the attention
        // weights: v rows distinct.
        let mut tape = Tape::new();
        let t = 3;
        let q = tape.input(Tensor::from_vec(
            (0..t * 4).map(|i| (i as f32 * 0.7).sin()).collect(),
            &[t, 4],
        ));
        let mask = MultiHeadAttention::causal_mask(t);
        let y = mha.forward(&mut tape, q, q, Some(&mask));
        // Row 0 attends only to position 0; rows would differ if position
        // 1 leaked into row 0. Just assert gradients flow and values are
        // finite (behavioural check is in the transformer model tests).
        assert!(tape.value(y).data().iter().all(|v| v.is_finite()));
        let loss = tape.sum_all(y);
        tape.backward(loss);
        mha.wq.w.pull_grad(&tape);
        assert!(mha.wq.w.grad.data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mha = MultiHeadAttention::new(&mut rng, "attn", 8, 2);
        // 4 projections × (8×8 weights + 8 biases).
        assert_eq!(mha.param_count(), 4 * (64 + 8));
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        MultiHeadAttention::new(&mut rng, "attn", 7, 2);
    }
}
