//! The reverse-mode autograd tape.
//!
//! Values are computed eagerly as ops are recorded; [`Tape::backward`]
//! walks the (topologically ordered) tape in reverse, accumulating
//! gradients. A fresh tape is built per training step.

use adaptivfloat::NumberFormat;
use af_tensor::{col2im, im2col, Conv2dSpec, Tensor};
use std::sync::Arc;

/// Handle to a node on a [`Tape`].
pub type NodeId = usize;

/// Saved backward context per op.
#[derive(Debug)]
enum Op {
    Input,
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    Scale(NodeId, f32),
    Matmul(NodeId, NodeId),
    MatmulT(NodeId, NodeId),
    Relu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    Softmax(NodeId),
    CrossEntropy {
        logits: NodeId,
        targets: Vec<usize>,
        probs: Tensor,
    },
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        xhat: Tensor,
        inv_std: Vec<f32>,
    },
    BatchNormCols {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        xhat: Tensor,
        inv_std: Vec<f32>,
    },
    Embedding {
        table: NodeId,
        indices: Vec<usize>,
    },
    SliceCols {
        a: NodeId,
        start: usize,
    },
    ConcatCols {
        parts: Vec<NodeId>,
    },
    ConcatRows {
        parts: Vec<NodeId>,
    },
    Reshape(NodeId),
    SumAll(NodeId),
    MeanAll(NodeId),
    Conv2d {
        input: NodeId,
        weight: NodeId,
        spec: Conv2dSpec,
        batch: usize,
        h: usize,
        w: usize,
        patches: Tensor,
    },
    ChannelsLastToNchw {
        a: NodeId,
        batch: usize,
        h: usize,
        w: usize,
        c: usize,
    },
    AvgPoolRows {
        a: NodeId,
        group_size: usize,
    },
    FakeQuant(NodeId),
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// A reverse-mode autodiff tape over [`Tensor`] values.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct Tape {
    id: u64,
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::new()
    }
}

impl Tape {
    /// Create an empty tape with a unique identity (parameters use the
    /// identity to bind at most once per tape — a layer invoked at every
    /// timestep of an unrolled RNN must accumulate gradients from all of
    /// its uses through a single input node).
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Tape {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// This tape's unique identity.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of nodes recorded.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        self.nodes.len() - 1
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// The gradient of a node (after [`backward`](Self::backward)).
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Record a leaf holding `value`.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Elementwise `a + b` (equal shapes).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `a − b` (equal shapes).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `a ⊙ b` (equal shapes).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// Add row vector `bias` (rank 1) to every row of `a` (rank 2).
    pub fn add_row(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let v = self.value(a).add_row(self.value(bias));
        self.push(v, Op::AddRow(a, bias))
    }

    /// Multiply by a constant scalar.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::Matmul(a, b))
    }

    /// Matrix product `a · bᵀ` (attention scores, linear layers with
    /// `[out, in]` weights).
    pub fn matmul_t(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul_t(self.value(b));
        self.push(v, Op::MatmulT(a, b))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// Logistic sigmoid (overflow-safe).
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(stable_sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Row-wise softmax of a rank-2 tensor (max-subtracted for stability).
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let v = softmax_rows(self.value(a));
        self.push(v, Op::Softmax(a))
    }

    /// Mean cross-entropy between row logits and integer targets; returns
    /// a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows, or any
    /// target is out of range.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[usize]) -> NodeId {
        let l = self.value(logits);
        assert_eq!(l.rows(), targets.len(), "one target per row");
        let probs = softmax_rows(l);
        let cols = probs.cols();
        let mut loss = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < cols, "target {t} out of range {cols}");
            loss -= (probs.at(r, t).max(1e-12) as f64).ln();
        }
        let loss = (loss / targets.len() as f64) as f32;
        self.push(
            Tensor::from_vec(vec![loss], &[1]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Row-wise layer normalization with affine parameters `gamma`,
    /// `beta` (rank 1, length = columns).
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let cols = xv.cols();
        let rows = xv.rows();
        let g = self.value(gamma).data().to_vec();
        let b = self.value(beta).data().to_vec();
        assert_eq!(g.len(), cols, "gamma length must equal columns");
        assert_eq!(b.len(), cols, "beta length must equal columns");
        let mut xhat = Tensor::zeros(xv.shape());
        let mut out = Tensor::zeros(xv.shape());
        let mut inv_std = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &xv.data()[r * cols..(r + 1) * cols];
            let mean: f32 = row.iter().sum::<f32>() / cols as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std.push(istd);
            for c in 0..cols {
                let xh = (row[c] - mean) * istd;
                xhat.data_mut()[r * cols + c] = xh;
                out.data_mut()[r * cols + c] = xh * g[c] + b[c];
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
        )
    }

    /// Column-wise (per-feature) batch normalization over the rows of a
    /// rank-2 tensor, with affine `gamma`/`beta`. Returns
    /// `(output, batch_mean, batch_var)` — the layer uses the statistics
    /// to update its running averages.
    pub fn batch_norm(
        &mut self,
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> (NodeId, Vec<f32>, Vec<f32>) {
        let xv = self.value(x);
        let (rows, cols) = (xv.rows(), xv.cols());
        assert!(rows > 0, "batch_norm needs at least one row");
        let g = self.value(gamma).data().to_vec();
        let b = self.value(beta).data().to_vec();
        let mut mean = vec![0.0f32; cols];
        let mut var = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += xv.at(r, c);
            }
        }
        mean.iter_mut().for_each(|m| *m /= rows as f32);
        for r in 0..rows {
            for c in 0..cols {
                let d = xv.at(r, c) - mean[c];
                var[c] += d * d;
            }
        }
        var.iter_mut().for_each(|v| *v /= rows as f32);
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(xv.shape());
        let mut out = Tensor::zeros(xv.shape());
        for r in 0..rows {
            for c in 0..cols {
                let xh = (xv.at(r, c) - mean[c]) * inv_std[c];
                xhat.data_mut()[r * cols + c] = xh;
                out.data_mut()[r * cols + c] = xh * g[c] + b[c];
            }
        }
        let id = self.push(
            out,
            Op::BatchNormCols {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            },
        );
        (id, mean, var)
    }

    /// Gather rows of an embedding `table` (rank 2) by `indices`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn embedding(&mut self, table: NodeId, indices: &[usize]) -> NodeId {
        let t = self.value(table);
        let (vocab, dim) = (t.rows(), t.cols());
        let mut out = Vec::with_capacity(indices.len() * dim);
        for &i in indices {
            assert!(i < vocab, "embedding index {i} out of range {vocab}");
            out.extend_from_slice(t.row(i));
        }
        self.push(
            Tensor::from_vec(out, &[indices.len(), dim]),
            Op::Embedding {
                table,
                indices: indices.to_vec(),
            },
        )
    }

    /// Columns `[start, start+width)` of a rank-2 node.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, width: usize) -> NodeId {
        let v = self.value(a).slice_cols(start, width);
        self.push(v, Op::SliceCols { a, start })
    }

    /// Concatenate rank-2 nodes left-to-right.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::concat_cols(&tensors);
        self.push(
            v,
            Op::ConcatCols {
                parts: parts.to_vec(),
            },
        )
    }

    /// Stack rank-2 nodes top-to-bottom (equal column counts) — e.g.
    /// gathering per-timestep LSTM outputs into an attention memory.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows needs at least one node");
        let cols = self.value(parts[0]).cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.cols(), cols, "column mismatch in concat_rows");
            data.extend_from_slice(v.data());
            rows += v.rows();
        }
        self.push(
            Tensor::from_vec(data, &[rows, cols]),
            Op::ConcatRows {
                parts: parts.to_vec(),
            },
        )
    }

    /// Reshape (element count preserved).
    pub fn reshape(&mut self, a: NodeId, shape: &[usize]) -> NodeId {
        let v = self.value(a).reshape(shape);
        self.push(v, Op::Reshape(a))
    }

    /// Sum of all elements → scalar node.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let s = self.value(a).sum();
        self.push(Tensor::from_vec(vec![s], &[1]), Op::SumAll(a))
    }

    /// Mean of all elements → scalar node.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let s = self.value(a).mean();
        self.push(Tensor::from_vec(vec![s], &[1]), Op::MeanAll(a))
    }

    /// 2-D convolution: `input` is `[batch, c·h·w]` NCHW, `weight` is
    /// `[out_channels, c·k·k]`; output is channels-last
    /// `[batch·oh·ow, out_channels]` (ready for per-channel batch norm).
    pub fn conv2d(
        &mut self,
        input: NodeId,
        weight: NodeId,
        spec: Conv2dSpec,
        batch: usize,
        h: usize,
        w: usize,
    ) -> NodeId {
        let patches = im2col(self.value(input), batch, spec.in_channels, h, w, &spec);
        let out = patches.matmul_t(self.value(weight));
        self.push(
            out,
            Op::Conv2d {
                input,
                weight,
                spec,
                batch,
                h,
                w,
                patches,
            },
        )
    }

    /// Convert a channels-last `[batch·h·w, c]` node to NCHW
    /// `[batch, c·h·w]` (the layout the next `conv2d` expects).
    pub fn channels_last_to_nchw(
        &mut self,
        a: NodeId,
        batch: usize,
        h: usize,
        w: usize,
        c: usize,
    ) -> NodeId {
        let v = permute_cl_to_nchw(self.value(a), batch, h, w, c);
        self.push(v, Op::ChannelsLastToNchw { a, batch, h, w, c })
    }

    /// Average consecutive groups of `group_size` rows (global average
    /// pooling over spatial positions when rows are `[batch·h·w]`).
    ///
    /// # Panics
    ///
    /// Panics if the row count is not a multiple of `group_size`.
    pub fn avg_pool_rows(&mut self, a: NodeId, group_size: usize) -> NodeId {
        let v = self.value(a);
        let (rows, cols) = (v.rows(), v.cols());
        assert_eq!(rows % group_size, 0, "rows must divide into groups");
        let groups = rows / group_size;
        let mut out = Tensor::zeros(&[groups, cols]);
        for g in 0..groups {
            for r in 0..group_size {
                for c in 0..cols {
                    out.data_mut()[g * cols + c] += v.at(g * group_size + r, c);
                }
            }
        }
        let inv = 1.0 / group_size as f32;
        let out = out.scale(inv);
        self.push(out, Op::AvgPoolRows { a, group_size })
    }

    /// Fake-quantize through `format` (adaptive parameters derived from
    /// the node's current tensor); the backward pass is the
    /// straight-through estimator (identity).
    pub fn fake_quant(&mut self, a: NodeId, format: &Arc<dyn NumberFormat>) -> NodeId {
        let plan = format.plan(&adaptivfloat::QuantStats::from_slice(self.value(a).data()));
        self.fake_quant_plan(a, &plan)
    }

    /// Fake-quantize with a *calibrated* maximum (activation quantization
    /// from offline statistics); backward is STE.
    pub fn fake_quant_with_max(
        &mut self,
        a: NodeId,
        format: &Arc<dyn NumberFormat>,
        max_abs: f32,
    ) -> NodeId {
        let len = self.value(a).len();
        let plan = format.plan(&adaptivfloat::QuantStats::calibrated_with_len(max_abs, len));
        self.fake_quant_plan(a, &plan)
    }

    /// Fake-quantize through a prebuilt [`adaptivfloat::QuantPlan`] —
    /// the callee for the two builders above, and the entry point for
    /// layers that froze a plan ahead of time; backward is STE.
    pub fn fake_quant_plan(&mut self, a: NodeId, plan: &adaptivfloat::QuantPlan) -> NodeId {
        let v = self.value(a);
        let q = Tensor::from_vec(plan.execute(v.data()), v.shape());
        self.push(q, Op::FakeQuant(a))
    }

    /// Run reverse-mode accumulation from `root` (which must be scalar).
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a single-element node.
    pub fn backward(&mut self, root: NodeId) {
        assert_eq!(
            self.nodes[root].value.len(),
            1,
            "backward root must be scalar"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[root] = Some(Tensor::ones(&[1]));
        for id in (0..=root).rev() {
            let Some(gy) = self.grads[id].take() else {
                continue;
            };
            self.propagate(id, &gy);
            self.grads[id] = Some(gy);
        }
    }

    fn accumulate(&mut self, id: NodeId, delta: Tensor) {
        match &mut self.grads[id] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, id: NodeId, gy: &Tensor) {
        // Temporarily take the op so arms can call `accumulate` (which
        // needs `&mut self`) while borrowing the op's saved tensors.
        let op = std::mem::replace(&mut self.nodes[id].op, Op::Input);
        match &op {
            Op::Input => {}
            Op::Add(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, gy.clone());
                self.accumulate(b, gy.clone());
            }
            Op::Sub(a, b) => {
                let (a, b) = (*a, *b);
                self.accumulate(a, gy.clone());
                self.accumulate(b, gy.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let (a, b) = (*a, *b);
                let da = gy.mul(self.value(b));
                let db = gy.mul(self.value(a));
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::AddRow(a, bias) => {
                let (a, bias) = (*a, *bias);
                self.accumulate(a, gy.clone());
                self.accumulate(bias, gy.sum_rows());
            }
            Op::Scale(a, s) => {
                let (a, s) = (*a, *s);
                self.accumulate(a, gy.scale(s));
            }
            Op::Matmul(a, b) => {
                let (a, b) = (*a, *b);
                let da = gy.matmul_t(self.value(b));
                let db = self.value(a).t_matmul(gy);
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::MatmulT(a, b) => {
                let (a, b) = (*a, *b);
                let da = gy.matmul(self.value(b));
                let db = gy.t_matmul(self.value(a));
                self.accumulate(a, da);
                self.accumulate(b, db);
            }
            Op::Relu(a) => {
                let a = *a;
                let da = gy.zip_map(self.value(a), |g, x| if x > 0.0 { g } else { 0.0 });
                self.accumulate(a, da);
            }
            Op::Sigmoid(a) => {
                let a = *a;
                let y = self.nodes[id].value.clone();
                let da = gy.zip_map(&y, |g, y| g * y * (1.0 - y));
                self.accumulate(a, da);
            }
            Op::Tanh(a) => {
                let a = *a;
                let y = self.nodes[id].value.clone();
                let da = gy.zip_map(&y, |g, y| g * (1.0 - y * y));
                self.accumulate(a, da);
            }
            Op::Softmax(a) => {
                let a = *a;
                let y = &self.nodes[id].value;
                let cols = y.cols();
                let mut da = Tensor::zeros(y.shape());
                for r in 0..y.rows() {
                    let yr = &y.data()[r * cols..(r + 1) * cols];
                    let gr = &gy.data()[r * cols..(r + 1) * cols];
                    let dot: f32 = yr.iter().zip(gr).map(|(&y, &g)| y * g).sum();
                    for c in 0..cols {
                        da.data_mut()[r * cols + c] = yr[c] * (gr[c] - dot);
                    }
                }
                self.accumulate(a, da);
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            } => {
                let logits = *logits;
                let g0 = gy.data()[0];
                let batch = targets.len() as f32;
                let mut da = probs.clone();
                let cols = da.cols();
                for (r, &t) in targets.iter().enumerate() {
                    da.data_mut()[r * cols + t] -= 1.0;
                }
                let da = da.scale(g0 / batch);
                self.accumulate(logits, da);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let (x, gamma, beta) = (*x, *gamma, *beta);
                let xhat = xhat.clone();
                let inv_std = inv_std.clone();
                let g = self.value(gamma).data().to_vec();
                let cols = xhat.cols();
                let mut dx = Tensor::zeros(xhat.shape());
                let mut dgamma = vec![0.0f32; cols];
                let mut dbeta = vec![0.0f32; cols];
                for (r, &istd) in inv_std.iter().enumerate() {
                    let xr = &xhat.data()[r * cols..(r + 1) * cols];
                    let gr = &gy.data()[r * cols..(r + 1) * cols];
                    let mut sum_dg = 0.0f32;
                    let mut sum_dg_x = 0.0f32;
                    for c in 0..cols {
                        let dyg = gr[c] * g[c];
                        sum_dg += dyg;
                        sum_dg_x += dyg * xr[c];
                        dgamma[c] += gr[c] * xr[c];
                        dbeta[c] += gr[c];
                    }
                    let inv_n = 1.0 / cols as f32;
                    for c in 0..cols {
                        let dyg = gr[c] * g[c];
                        dx.data_mut()[r * cols + c] =
                            istd * (dyg - inv_n * sum_dg - xr[c] * inv_n * sum_dg_x);
                    }
                }
                self.accumulate(x, dx);
                self.accumulate(gamma, Tensor::from_vec(dgamma, &[cols]));
                self.accumulate(beta, Tensor::from_vec(dbeta, &[cols]));
            }
            Op::BatchNormCols {
                x,
                gamma,
                beta,
                xhat,
                inv_std,
            } => {
                let (x, gamma, beta) = (*x, *gamma, *beta);
                let xhat = xhat.clone();
                let inv_std = inv_std.clone();
                let g = self.value(gamma).data().to_vec();
                let (rows, cols) = (xhat.rows(), xhat.cols());
                let mut dx = Tensor::zeros(xhat.shape());
                let mut dgamma = vec![0.0f32; cols];
                let mut dbeta = vec![0.0f32; cols];
                let mut sum_dg = vec![0.0f32; cols];
                let mut sum_dg_x = vec![0.0f32; cols];
                for r in 0..rows {
                    for c in 0..cols {
                        let gyv = gy.at(r, c);
                        let xh = xhat.at(r, c);
                        let dyg = gyv * g[c];
                        sum_dg[c] += dyg;
                        sum_dg_x[c] += dyg * xh;
                        dgamma[c] += gyv * xh;
                        dbeta[c] += gyv;
                    }
                }
                let inv_n = 1.0 / rows as f32;
                for r in 0..rows {
                    for c in 0..cols {
                        let dyg = gy.at(r, c) * g[c];
                        dx.data_mut()[r * cols + c] = inv_std[c]
                            * (dyg - inv_n * sum_dg[c] - xhat.at(r, c) * inv_n * sum_dg_x[c]);
                    }
                }
                self.accumulate(x, dx);
                self.accumulate(gamma, Tensor::from_vec(dgamma, &[cols]));
                self.accumulate(beta, Tensor::from_vec(dbeta, &[cols]));
            }
            Op::Embedding { table, indices } => {
                let table = *table;
                let indices = indices.clone();
                let t = self.value(table);
                let (vocab, dim) = (t.rows(), t.cols());
                let mut dt = Tensor::zeros(&[vocab, dim]);
                for (r, &i) in indices.iter().enumerate() {
                    for c in 0..dim {
                        dt.data_mut()[i * dim + c] += gy.at(r, c);
                    }
                }
                self.accumulate(table, dt);
            }
            Op::SliceCols { a, start } => {
                let (a, start) = (*a, *start);
                let full = self.value(a);
                let (rows, cols) = (full.rows(), full.cols());
                let width = gy.cols();
                let mut da = Tensor::zeros(&[rows, cols]);
                for r in 0..rows {
                    for c in 0..width {
                        da.data_mut()[r * cols + start + c] = gy.at(r, c);
                    }
                }
                self.accumulate(a, da);
            }
            Op::ConcatCols { parts } => {
                let parts = parts.clone();
                let mut start = 0;
                for p in parts {
                    let width = self.value(p).cols();
                    let dp = gy.slice_cols(start, width);
                    start += width;
                    self.accumulate(p, dp);
                }
            }
            Op::ConcatRows { parts } => {
                let parts = parts.clone();
                let cols = gy.cols();
                let mut start = 0;
                for p in parts {
                    let rows = self.value(p).rows();
                    let dp = Tensor::from_vec(
                        gy.data()[start * cols..(start + rows) * cols].to_vec(),
                        &[rows, cols],
                    );
                    start += rows;
                    self.accumulate(p, dp);
                }
            }
            Op::Reshape(a) => {
                let a = *a;
                let shape = self.value(a).shape().to_vec();
                self.accumulate(a, gy.reshape(&shape));
            }
            Op::SumAll(a) => {
                let a = *a;
                let g0 = gy.data()[0];
                let da = Tensor::full(self.value(a).shape(), g0);
                self.accumulate(a, da);
            }
            Op::MeanAll(a) => {
                let a = *a;
                let n = self.value(a).len() as f32;
                let g0 = gy.data()[0] / n;
                let da = Tensor::full(self.value(a).shape(), g0);
                self.accumulate(a, da);
            }
            Op::Conv2d {
                input,
                weight,
                spec,
                batch,
                h,
                w,
                patches,
            } => {
                let (input, weight) = (*input, *weight);
                let (spec, batch, h, w) = (*spec, *batch, *h, *w);
                let patches = patches.clone();
                // dW = gyᵀ · patches ; dPatches = gy · W ; dInput = col2im.
                let dw = gy.t_matmul(&patches);
                let dpatches = gy.matmul(self.value(weight));
                let dinput = col2im(&dpatches, batch, spec.in_channels, h, w, &spec);
                self.accumulate(weight, dw);
                self.accumulate(input, dinput);
            }
            Op::ChannelsLastToNchw { a, batch, h, w, c } => {
                let (a, batch, h, w, c) = (*a, *batch, *h, *w, *c);
                let da = permute_nchw_to_cl(gy, batch, h, w, c);
                self.accumulate(a, da);
            }
            Op::AvgPoolRows { a, group_size } => {
                let (a, group_size) = (*a, *group_size);
                let cols = gy.cols();
                let groups = gy.rows();
                let inv = 1.0 / group_size as f32;
                let mut da = Tensor::zeros(&[groups * group_size, cols]);
                for g in 0..groups {
                    for r in 0..group_size {
                        for c in 0..cols {
                            da.data_mut()[(g * group_size + r) * cols + c] = gy.at(g, c) * inv;
                        }
                    }
                }
                self.accumulate(a, da);
            }
            Op::FakeQuant(a) => {
                // Straight-through estimator: gradient passes unchanged.
                let a = *a;
                self.accumulate(a, gy.clone());
            }
        }
        self.nodes[id].op = op;
    }
}

/// A one-slot cache keyed by tape identity: layers that forward several
/// times on one tape (an LSTM cell unrolled over timesteps) use it to
/// build expensive derived nodes — like the fake-quantized view of a
/// weight — only once per tape.
#[derive(Debug, Default, Clone, Copy)]
pub struct NodeCache(Option<(u64, NodeId)>);

impl NodeCache {
    /// Empty cache.
    pub fn new() -> Self {
        NodeCache(None)
    }

    /// Return the cached node for this tape, or build it with `f` and
    /// cache it.
    pub fn get_or_insert_with(
        &mut self,
        tape: &mut Tape,
        f: impl FnOnce(&mut Tape) -> NodeId,
    ) -> NodeId {
        if let Some((tape_id, node)) = self.0 {
            if tape_id == tape.id() {
                return node;
            }
        }
        let node = f(tape);
        self.0 = Some((tape.id(), node));
        node
    }
}

/// Overflow-safe logistic sigmoid.
fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise, max-subtracted softmax.
fn softmax_rows(x: &Tensor) -> Tensor {
    let cols = x.cols();
    let mut out = Tensor::zeros(x.shape());
    for r in 0..x.rows() {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out.data_mut()[r * cols + c] = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for c in 0..cols {
            out.data_mut()[r * cols + c] *= inv;
        }
    }
    out
}

/// `[batch·h·w, c]` (channels-last rows) → `[batch, c·h·w]` (NCHW).
fn permute_cl_to_nchw(x: &Tensor, batch: usize, h: usize, w: usize, c: usize) -> Tensor {
    assert_eq!(x.len(), batch * h * w * c, "permute size mismatch");
    let mut out = vec![0.0f32; x.len()];
    let data = x.data();
    for b in 0..batch {
        for y in 0..h {
            for xx in 0..w {
                for ch in 0..c {
                    let src = ((b * h + y) * w + xx) * c + ch;
                    let dst = ((b * c + ch) * h + y) * w + xx;
                    out[dst] = data[src];
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch, c * h * w])
}

/// `[batch, c·h·w]` (NCHW) → `[batch·h·w, c]` (channels-last rows).
fn permute_nchw_to_cl(x: &Tensor, batch: usize, h: usize, w: usize, c: usize) -> Tensor {
    assert_eq!(x.len(), batch * h * w * c, "permute size mismatch");
    let mut out = vec![0.0f32; x.len()];
    let data = x.data();
    for b in 0..batch {
        for y in 0..h {
            for xx in 0..w {
                for ch in 0..c {
                    let dst = ((b * h + y) * w + xx) * c + ch;
                    let src = ((b * c + ch) * h + y) * w + xx;
                    out[dst] = data[src];
                }
            }
        }
    }
    Tensor::from_vec(out, &[batch * h * w, c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_chain() {
        let mut t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![2.0, 3.0], &[2]));
        let b = t.input(Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let c = t.mul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        assert_eq!(t.grad(a).unwrap().data(), &[4.0, 5.0]);
        assert_eq!(t.grad(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_grads() {
        let mut t = Tape::new();
        let a = t.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = t.input(Tensor::eye(2));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        // dA = 1·Iᵀ = ones; dB = Aᵀ·1.
        assert_eq!(t.grad(a).unwrap().data(), &[1.0; 4]);
        assert_eq!(t.grad(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0],
            &[2, 3],
        ));
        let y = t.softmax(x);
        for r in 0..2 {
            let s: f32 = t.value(y).row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut t = Tape::new();
        let logits = t.input(Tensor::from_vec(
            vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0],
            &[2, 3],
        ));
        let loss = t.cross_entropy(logits, &[0, 1]);
        let p0 = 2.0f32.exp() / (2.0f32.exp() + 2.0);
        let p1 = 3.0f32.exp() / (3.0f32.exp() + 2.0);
        let expected = -(p0.ln() + p1.ln()) / 2.0;
        assert!((t.value(loss).data()[0] - expected).abs() < 1e-5);
        t.backward(loss);
        // Gradient rows sum to zero (softmax − one-hot).
        let g = t.grad(logits).unwrap();
        for r in 0..2 {
            let s: f32 = g.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn fake_quant_is_ste() {
        use adaptivfloat::AdaptivFloat;
        let fmt: Arc<dyn NumberFormat> = Arc::new(AdaptivFloat::new(4, 2).unwrap());
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![1.17, -2.71], &[2]));
        let q = t.fake_quant(x, &fmt);
        // Forward is quantized...
        assert_ne!(t.value(q).data(), t.value(x).data());
        let loss = t.sum_all(q);
        t.backward(loss);
        // ...backward is identity.
        assert_eq!(t.grad(x).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn layer_norm_output_is_normalized() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        let g = t.input(Tensor::ones(&[4]));
        let b = t.input(Tensor::zeros(&[4]));
        let y = t.layer_norm(x, g, b, 1e-5);
        let yv = t.value(y);
        let mean: f32 = yv.data().iter().sum::<f32>() / 4.0;
        let var: f32 = yv
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let mut t = Tape::new();
        let table = t.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[3, 2],
        ));
        let e = t.embedding(table, &[2, 0, 2]);
        assert_eq!(t.value(e).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let loss = t.sum_all(e);
        t.backward(loss);
        // Row 2 used twice, row 0 once, row 1 never.
        assert_eq!(
            t.grad(table).unwrap().data(),
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]
        );
    }

    #[test]
    fn slice_concat_roundtrip_grads() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(
            (0..8).map(|i| i as f32).collect(),
            &[2, 4],
        ));
        let a = t.slice_cols(x, 0, 2);
        let b = t.slice_cols(x, 2, 2);
        let y = t.concat_cols(&[a, b]);
        assert_eq!(t.value(y).data(), t.value(x).data());
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().data(), &[1.0; 8]);
    }

    #[test]
    fn avg_pool_rows_forward_backward() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[4, 1]));
        let y = t.avg_pool_rows(x, 2);
        assert_eq!(t.value(y).data(), &[2.0, 6.0]);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(x).unwrap().data(), &[0.5; 4]);
    }

    #[test]
    fn permutes_are_inverses() {
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 12]);
        let cl = permute_nchw_to_cl(&x, 2, 2, 3, 2);
        let back = permute_cl_to_nchw(&cl, 2, 2, 3, 2);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_from_non_scalar_panics() {
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(&[2]));
        t.backward(x);
    }
}
