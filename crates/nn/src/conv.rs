//! 2-D convolution layer (im2col-backed).

use af_tensor::{uniform, Conv2dSpec, Tensor};
use rand::Rng;

use crate::layer::Layer;
use crate::param::Param;
use crate::quant::{ActObserver, Quantizer};
use crate::tape::{NodeCache, NodeId, Tape};

/// A 2-D convolution over NCHW inputs.
///
/// Input nodes are `[batch, c·h·w]`; the output is channels-last
/// `[batch·oh·ow, out_channels]` so a [`BatchNorm`](crate::BatchNorm) can
/// normalize per channel directly. Use
/// [`Tape::channels_last_to_nchw`] to feed the next convolution.
#[derive(Debug)]
pub struct Conv2d {
    /// Weight parameter, shape `[out_channels, in_channels·k·k]`.
    pub w: Param,
    /// Per-channel bias, shape `[out_channels]`.
    pub b: Param,
    /// The convolution geometry.
    pub spec: Conv2dSpec,
    weight_quant: Option<Quantizer>,
    quant_cache: NodeCache,
    act_quant: Option<Quantizer>,
    /// Output-range observer for activation quantization.
    pub observer: ActObserver,
}

impl Conv2d {
    /// Kaiming-style initialized convolution.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, spec: Conv2dSpec) -> Self {
        let patch = spec.patch_len();
        let bound = (6.0 / patch as f32).sqrt();
        Conv2d {
            w: Param::new(
                format!("{name}.w"),
                uniform(rng, &[spec.out_channels, patch], -bound, bound),
            ),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[spec.out_channels])),
            spec,
            weight_quant: None,
            quant_cache: NodeCache::new(),
            act_quant: None,
            observer: ActObserver::new(),
        }
    }

    /// Install (or clear) an activation quantizer on the output.
    pub fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.act_quant = quantizer;
    }

    /// Forward over a `[batch, c·h·w]` node; returns the channels-last
    /// output node plus the output spatial size.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: usize,
        h: usize,
        w: usize,
    ) -> (NodeId, usize, usize) {
        let mut wt = self.w.bind(tape);
        if let Some(q) = &self.weight_quant {
            wt = self
                .quant_cache
                .get_or_insert_with(tape, |t| t.fake_quant(wt, q));
        }
        let b = self.b.bind(tape);
        let y = tape.conv2d(x, wt, self.spec, batch, h, w);
        let mut y = tape.add_row(y, b);
        self.observer.observe(tape.value(y).data());
        if let Some(q) = &self.act_quant {
            let max = self.observer.max_abs();
            y = tape.fake_quant_with_max(y, q, max);
        }
        let (oh, ow) = self.spec.output_hw(h, w);
        (y, oh, ow)
    }
}

impl Layer for Conv2d {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.weight_quant = quantizer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> Conv2dSpec {
        Conv2dSpec {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            stride: s,
            padding: p,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(&mut rng, "c1", spec(3, 8, 3, 2, 1));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[2, 3 * 8 * 8]));
        let (y, oh, ow) = conv.forward(&mut tape, x, 2, 8, 8);
        assert_eq!((oh, ow), (4, 4));
        assert_eq!(tape.value(y).shape(), &[2 * 4 * 4, 8]);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // A 1×1 conv with identity weights copies the channel.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(&mut rng, "c", spec(1, 1, 1, 1, 0));
        conv.w.value = Tensor::ones(&[1, 1]);
        let mut tape = Tape::new();
        let data: Vec<f32> = (0..4).map(|i| i as f32).collect();
        let x = tape.input(Tensor::from_vec(data.clone(), &[1, 4]));
        let (y, _, _) = conv.forward(&mut tape, x, 1, 2, 2);
        assert_eq!(tape.value(y).data(), &data[..]);
    }

    #[test]
    fn grads_reach_input_and_weight() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(&mut rng, "c", spec(2, 3, 3, 1, 1));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[1, 2 * 4 * 4]));
        let (y, _, _) = conv.forward(&mut tape, x, 1, 4, 4);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        conv.w.pull_grad(&tape);
        conv.b.pull_grad(&tape);
        assert!(conv.w.grad.data().iter().any(|&g| g != 0.0));
        // Bias grad = number of output positions per channel.
        assert_eq!(conv.b.grad.data(), &[16.0, 16.0, 16.0]);
        assert!(tape.grad(x).is_some());
    }
}
