//! A single-layer LSTM (the workhorse of the paper's seq2seq model and of
//! the hardware evaluation's 100-timestep workload).

use af_tensor::Tensor;
use rand::Rng;

use crate::layer::Layer;
use crate::linear::Linear;
use crate::param::Param;
use crate::quant::Quantizer;
use crate::tape::{NodeId, Tape};

/// Recurrent state: hidden and cell nodes, both `[batch, hidden]`.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden state node.
    pub h: NodeId,
    /// Cell state node.
    pub c: NodeId,
}

/// LSTM cell with fused gate projection
/// `z = [x, h] · Wᵀ + b`, `W: [4·hidden, input+hidden]`,
/// gate order `i, f, g, o`.
#[derive(Debug)]
pub struct Lstm {
    /// The fused gate projection.
    pub gates: Linear,
    hidden: usize,
}

impl Lstm {
    /// New LSTM with `input`-dim inputs and `hidden`-dim state.
    /// The forget-gate bias is initialized to 1 (standard practice).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, input: usize, hidden: usize) -> Self {
        let mut gates = Linear::new(rng, &format!("{name}.gates"), input + hidden, 4 * hidden);
        for i in hidden..2 * hidden {
            gates.b.value.data_mut()[i] = 1.0;
        }
        Lstm { gates, hidden }
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Fresh all-zero state for a batch.
    pub fn zero_state(&self, tape: &mut Tape, batch: usize) -> LstmState {
        LstmState {
            h: tape.input(Tensor::zeros(&[batch, self.hidden])),
            c: tape.input(Tensor::zeros(&[batch, self.hidden])),
        }
    }

    /// One timestep: consumes `[batch, input]` and the previous state,
    /// returns the new state (whose `h` is the step output).
    pub fn step(&mut self, tape: &mut Tape, x: NodeId, state: LstmState) -> LstmState {
        let xh = tape.concat_cols(&[x, state.h]);
        let z = self.gates.forward(tape, xh);
        let hd = self.hidden;
        let i = tape.slice_cols(z, 0, hd);
        let f = tape.slice_cols(z, hd, hd);
        let g = tape.slice_cols(z, 2 * hd, hd);
        let o = tape.slice_cols(z, 3 * hd, hd);
        let i = tape.sigmoid(i);
        let f = tape.sigmoid(f);
        let g = tape.tanh(g);
        let o = tape.sigmoid(o);
        let fc = tape.mul(f, state.c);
        let ig = tape.mul(i, g);
        let c = tape.add(fc, ig);
        let tc = tape.tanh(c);
        let h = tape.mul(o, tc);
        LstmState { h, c }
    }

    /// Run a whole sequence, returning the per-step hidden nodes and the
    /// final state.
    pub fn forward_seq(
        &mut self,
        tape: &mut Tape,
        inputs: &[NodeId],
        init: LstmState,
    ) -> (Vec<NodeId>, LstmState) {
        let mut state = init;
        let mut outputs = Vec::with_capacity(inputs.len());
        for &x in inputs {
            state = self.step(tape, x, state);
            outputs.push(state.h);
        }
        (outputs, state)
    }
}

impl Layer for Lstm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.gates.params_mut()
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.gates.set_weight_quantizer(quantizer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn state_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lstm = Lstm::new(&mut rng, "lstm", 3, 4);
        let mut tape = Tape::new();
        let init = lstm.zero_state(&mut tape, 2);
        let x = tape.input(Tensor::ones(&[2, 3]));
        let s = lstm.step(&mut tape, x, init);
        assert_eq!(tape.value(s.h).shape(), &[2, 4]);
        // h = o·tanh(c) is bounded by (−1, 1).
        assert!(tape.value(s.h).data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(&mut rng, "lstm", 2, 3);
        let b = lstm.gates.b.value.data();
        assert_eq!(&b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn sequence_unroll_backprops_through_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lstm = Lstm::new(&mut rng, "lstm", 2, 3);
        let mut tape = Tape::new();
        let init = lstm.zero_state(&mut tape, 1);
        let xs: Vec<NodeId> = (0..5)
            .map(|i| tape.input(Tensor::full(&[1, 2], 0.1 * i as f32)))
            .collect();
        let (outs, _) = lstm.forward_seq(&mut tape, &xs, init);
        assert_eq!(outs.len(), 5);
        let last = *outs.last().unwrap();
        let loss = tape.sum_all(last);
        tape.backward(loss);
        // Gradient flows all the way back to the first input.
        let g0 = tape.grad(xs[0]).expect("grad to first input");
        assert!(g0.data().iter().any(|&g| g != 0.0));
        lstm.gates.w.pull_grad(&tape);
        assert!(lstm.gates.w.grad.data().iter().any(|&g| g != 0.0));
    }

    #[test]
    fn zero_input_zero_state_is_stable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lstm = Lstm::new(&mut rng, "lstm", 2, 2);
        // Zero the biases so the cell has no drive at all.
        lstm.gates.b.value = Tensor::zeros(&[8]);
        let mut tape = Tape::new();
        let init = lstm.zero_state(&mut tape, 1);
        let x = tape.input(Tensor::zeros(&[1, 2]));
        let s = lstm.step(&mut tape, x, init);
        // tanh(g)=0 → c stays 0 → h = o·tanh(0) = 0.
        assert!(tape.value(s.h).data().iter().all(|&v| v == 0.0));
    }
}
