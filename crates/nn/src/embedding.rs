//! Token embedding table.

use af_tensor::randn;
use rand::Rng;

use crate::layer::Layer;
use crate::param::Param;
use crate::quant::Quantizer;
use crate::tape::{NodeCache, NodeId, Tape};

/// A `[vocab, dim]` embedding lookup with optional weight quantization
/// (embeddings count as quantized layers — the paper quantizes *all*
/// layers, including the usually-skipped first and last).
#[derive(Debug)]
pub struct Embedding {
    /// The table parameter, shape `[vocab, dim]`.
    pub table: Param,
    weight_quant: Option<Quantizer>,
    quant_cache: NodeCache,
}

impl Embedding {
    /// Gaussian-initialized table (`std = 0.5/sqrt(dim)`).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, vocab: usize, dim: usize) -> Self {
        let std = 0.5 / (dim as f32).sqrt();
        Embedding {
            table: Param::new(format!("{name}.table"), randn(rng, &[vocab, dim], std)),
            weight_quant: None,
            quant_cache: NodeCache::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Look up `indices`, returning a `[len, dim]` node.
    pub fn forward(&mut self, tape: &mut Tape, indices: &[usize]) -> NodeId {
        let mut t = self.table.bind(tape);
        if let Some(q) = &self.weight_quant {
            t = self
                .quant_cache
                .get_or_insert_with(tape, |tp| tp.fake_quant(t, q));
        }
        tape.embedding(t, indices)
    }
}

impl Layer for Embedding {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.weight_quant = quantizer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_and_grad() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(&mut rng, "emb", 5, 3);
        let mut tape = Tape::new();
        let y = emb.forward(&mut tape, &[1, 1, 4]);
        assert_eq!(tape.value(y).shape(), &[3, 3]);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        emb.table.pull_grad(&tape);
        // Row 1 hit twice, row 4 once, others zero.
        assert_eq!(emb.table.grad.row(1), &[2.0, 2.0, 2.0]);
        assert_eq!(emb.table.grad.row(4), &[1.0, 1.0, 1.0]);
        assert_eq!(emb.table.grad.row(0), &[0.0, 0.0, 0.0]);
    }
}
