//! Optimizers: SGD with momentum and Adam.

use af_tensor::Tensor;

use crate::param::Param;

/// An optimizer that steps a fixed, ordered set of parameters.
///
/// The parameter list must be presented in the same order every step
/// (optimizer state is positional).
pub trait Optimizer {
    /// Apply one update from the accumulated gradients, then zero them.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Change the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Rescale gradients so their global L2 norm is at most `max_norm`
/// (standard recurrent-network stabilization). Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params.iter() {
        for &g in p.grad.data() {
            sq += (g as f64) * (g as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            let scaled = p.grad.scale(scale);
            p.grad = scaled;
        }
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// SGD with learning rate `lr` and momentum coefficient `momentum`
    /// (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "param set changed size");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.momentum > 0.0 {
                *v = v.scale(self.momentum);
                v.axpy(1.0, &p.grad);
                p.value.axpy(-self.lr, v);
            } else {
                let grad = p.grad.clone();
                p.value.axpy(-self.lr, &grad);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the usual defaults `β1 = 0.9`, `β2 = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.m.len(), params.len(), "param set changed size");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use af_tensor::Tensor;

    /// Minimize (w − 3)² with each optimizer; both must converge.
    fn converge(opt: &mut dyn Optimizer) -> f32 {
        let mut p = Param::new("w", Tensor::from_vec(vec![0.0], &[1]));
        for _ in 0..500 {
            let mut tape = Tape::new();
            let w = p.bind(&mut tape);
            let target = tape.input(Tensor::from_vec(vec![3.0], &[1]));
            let d = tape.sub(w, target);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            p.pull_grad(&tape);
            opt.step(&mut [&mut p]);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_quadratic() {
        let w = converge(&mut Sgd::new(0.1, 0.0));
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = converge(&mut Sgd::new(0.05, 0.9));
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_quadratic() {
        let w = converge(&mut Adam::new(0.05));
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn step_zeroes_grads() {
        let mut p = Param::new("w", Tensor::ones(&[2]));
        p.grad = Tensor::ones(&[2]);
        let mut opt = Sgd::new(0.5, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data(), &[0.5, 0.5]);
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn lr_schedule_hooks() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
