//! Numerical gradient checking for the autograd engine.
//!
//! Every op's backward rule is validated against central finite
//! differences (see `crates/nn/tests/grad_check.rs` for the per-op suite).

use af_tensor::Tensor;

use crate::tape::{NodeId, Tape};

/// Compare the analytic gradient of `build`'s scalar output with central
/// finite differences at `x0`, returning the maximum relative error.
///
/// `build` must construct the graph on the given tape from the provided
/// input node and return the scalar loss node. It is called `2·len + 1`
/// times and must be deterministic.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar node.
pub fn check_gradient(x0: &Tensor, build: impl Fn(&mut Tape, NodeId) -> NodeId) -> f64 {
    let eps = 1e-3f32;
    // Analytic gradient.
    let mut tape = Tape::new();
    let x = tape.input(x0.clone());
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let analytic = tape
        .grad(x)
        .cloned()
        .unwrap_or_else(|| Tensor::zeros(x0.shape()));
    // Finite differences.
    let eval = |t: &Tensor| -> f64 {
        let mut tape = Tape::new();
        let x = tape.input(t.clone());
        let loss = build(&mut tape, x);
        tape.value(loss).data()[0] as f64
    };
    let mut max_rel = 0.0f64;
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
        let a = analytic.data()[i] as f64;
        let denom = a.abs().max(numeric.abs()).max(1.0);
        let rel = (a - numeric).abs() / denom;
        max_rel = max_rel.max(rel);
    }
    max_rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_correct_gradient() {
        let x0 = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
        let err = check_gradient(&x0, |t, x| {
            let y = t.tanh(x);
            t.sum_all(y)
        });
        assert!(err < 1e-3, "rel err {err}");
    }

    #[test]
    fn would_catch_a_wrong_rule() {
        // A deliberately wrong "gradient": compare sum(x²)'s analytic grad
        // against the finite difference of sum(2x²) — must disagree.
        let x0 = Tensor::from_vec(vec![0.5, 1.5], &[1, 2]);
        let mut tape = Tape::new();
        let x = tape.input(x0.clone());
        let sq = tape.mul(x, x);
        let loss = tape.sum_all(sq);
        tape.backward(loss);
        let analytic = tape.grad(x).unwrap().clone();
        // d/dx of 2x² is 4x ≠ 2x.
        assert!((analytic.data()[0] - 1.0).abs() < 1e-5);
        assert!((analytic.data()[0] - 2.0).abs() > 0.5);
    }
}
