//! The [`Layer`] trait tying parameters, forward passes, and quantization
//! together.

use crate::param::Param;
use crate::quant::Quantizer;

/// A trainable network component.
///
/// Layers bind their parameters into a fresh [`Tape`](crate::Tape) on each
/// forward call (hence `&mut self`), so the trainer can pull gradients
/// afterwards via [`params_mut`](Layer::params_mut).
pub trait Layer {
    /// Mutable access to every parameter, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Set the weight quantizer used in the forward pass (`None` disables
    /// fake quantization). The default ignores the call — override in
    /// layers with quantizable weights.
    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        let _ = quantizer;
    }

    /// Switch between training and inference behaviour (batch-norm
    /// statistics etc.). Default: no-op.
    fn set_training(&mut self, training: bool) {
        let _ = training;
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_tensor::Tensor;

    struct Dummy {
        w: Param,
    }

    impl Layer for Dummy {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.w]
        }
    }

    #[test]
    fn param_count_sums_elements() {
        let mut d = Dummy {
            w: Param::new("w", Tensor::zeros(&[3, 4])),
        };
        assert_eq!(d.param_count(), 12);
    }
}
