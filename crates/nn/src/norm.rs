//! Layer normalization and batch normalization.
//!
//! The paper's central observation hinges on these two: batch norm
//! (ResNet) reparameterizes weights into narrow distributions, while layer
//! norm (Transformer, seq2seq) does not — producing the wide, heavy-tailed
//! weights that break fixed-range formats.

use af_tensor::Tensor;

use crate::layer::Layer;
use crate::param::Param;
use crate::tape::{NodeId, Tape};

/// Row-wise layer normalization with learned affine parameters.
#[derive(Debug)]
pub struct LayerNorm {
    /// Scale, shape `[dim]`.
    pub gamma: Param,
    /// Shift, shape `[dim]`.
    pub beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Unit-gamma, zero-beta layer norm over `dim` features.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }

    /// Forward through a tape.
    pub fn forward(&mut self, tape: &mut Tape, x: NodeId) -> NodeId {
        let g = self.gamma.bind(tape);
        let b = self.beta.bind(tape);
        tape.layer_norm(x, g, b, self.eps)
    }
}

impl Layer for LayerNorm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Per-feature (column) batch normalization with running statistics.
///
/// In training mode it normalizes with batch statistics and updates
/// exponential running averages; in inference mode it applies the frozen
/// running statistics as a per-column affine map.
#[derive(Debug)]
pub struct BatchNorm {
    /// Scale, shape `[dim]`.
    pub gamma: Param,
    /// Shift, shape `[dim]`.
    pub beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    training: bool,
}

impl BatchNorm {
    /// Fresh batch norm over `dim` features (running stats at 0 mean /
    /// unit variance).
    pub fn new(name: &str, dim: usize) -> Self {
        BatchNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
            training: true,
        }
    }

    /// The frozen running mean.
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// The frozen running variance.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// Forward through a tape. Rows are samples (or spatial positions),
    /// columns are features/channels.
    pub fn forward(&mut self, tape: &mut Tape, x: NodeId) -> NodeId {
        if self.training {
            let g = self.gamma.bind(tape);
            let b = self.beta.bind(tape);
            let (y, mean, var) = tape.batch_norm(x, g, b, self.eps);
            for c in 0..mean.len() {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            y
        } else {
            // Inference: an affine map with frozen statistics, expressed
            // with differentiable ops so QAR can still fine-tune γ/β.
            let g = self.gamma.bind(tape);
            let b = self.beta.bind(tape);
            let dim = self.running_mean.len();
            let scale: Vec<f32> = self
                .running_var
                .iter()
                .map(|&v| 1.0 / (v + self.eps).sqrt())
                .collect();
            let neg_mean_scaled: Vec<f32> = self
                .running_mean
                .iter()
                .zip(&scale)
                .map(|(&m, &s)| -m * s)
                .collect();
            let scale_node = tape.input(Tensor::from_vec(scale, &[dim]));
            let shift_node = tape.input(Tensor::from_vec(neg_mean_scaled, &[dim]));
            // xhat = x*scale + shift (broadcast rows), y = xhat*gamma + beta
            let rows = tape.value(x).rows();
            let scale_mat = broadcast_rows(tape, scale_node, rows);
            let xs = tape.mul(x, scale_mat);
            let xhat = tape.add_row(xs, shift_node);
            let gamma_mat = broadcast_rows(tape, g, rows);
            let xg = tape.mul(xhat, gamma_mat);
            tape.add_row(xg, b)
        }
    }
}

/// Tile a rank-1 node into `rows` identical rows (constant w.r.t. grads
/// except the sum over rows, which is exactly the broadcast adjoint).
fn broadcast_rows(tape: &mut Tape, v: NodeId, rows: usize) -> NodeId {
    let dim = tape.value(v).len();
    let ones = tape.input(Tensor::ones(&[rows, 1]));
    let v2 = tape.reshape(v, &[1, dim]);
    tape.matmul(ones, v2)
}

impl Layer for BatchNorm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_norm_rows_standardized() {
        let mut ln = LayerNorm::new("ln", 4);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 20.0, 20.0],
            &[2, 4],
        ));
        let y = ln.forward(&mut tape, x);
        for r in 0..2 {
            let row = tape.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
        }
    }

    #[test]
    fn batch_norm_training_standardizes_columns() {
        let mut bn = BatchNorm::new("bn", 2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 100.0, 3.0, 300.0], &[2, 2]));
        let y = bn.forward(&mut tape, x);
        let yv = tape.value(y);
        for c in 0..2 {
            let mean = (yv.at(0, c) + yv.at(1, c)) / 2.0;
            assert!(mean.abs() < 1e-4, "col {c} mean {mean}");
        }
        // Running stats moved toward the batch stats.
        assert!(bn.running_mean()[0] > 0.0);
        assert!(bn.running_mean()[1] > 0.0);
    }

    #[test]
    fn batch_norm_inference_uses_running_stats() {
        let mut bn = BatchNorm::new("bn", 1);
        // Train on several identical batches to converge the stats.
        for _ in 0..200 {
            let mut tape = Tape::new();
            let x = tape.input(Tensor::from_vec(vec![4.0, 6.0], &[2, 1]));
            bn.forward(&mut tape, x);
        }
        bn.set_training(false);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![5.0], &[1, 1]));
        let y = bn.forward(&mut tape, x);
        // mean→5, var→1: (5−5)/1 = 0.
        assert!(tape.value(y).data()[0].abs() < 0.05);
    }

    #[test]
    fn inference_path_is_differentiable() {
        let mut bn = BatchNorm::new("bn", 2);
        bn.set_training(false);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let y = bn.forward(&mut tape, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        bn.gamma.pull_grad(&tape);
        bn.beta.pull_grad(&tape);
        assert!(bn.beta.grad.data().iter().all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(bn.gamma.grad.data().iter().any(|&g| g != 0.0));
        assert!(tape.grad(x).is_some());
    }
}
