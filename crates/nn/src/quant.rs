//! Quantization plumbing: format specs, shared quantizer handles, and
//! activation-range observers.
//!
//! Three regimes from the paper:
//!
//! * **PTQ** (post-training quantization): weights are replaced in place by
//!   their quantized rendering — [`QuantSpec::quantize_param`].
//! * **QAR** (quantization-aware retraining): a [`Quantizer`] is installed
//!   on each layer; the forward pass fake-quantizes bound weights through
//!   a straight-through estimator while the FP32 masters keep training.
//! * **Weight + activation** (Table 3): an [`ActObserver`] first calibrates
//!   each activation site's |max| from offline batches, then clamps and
//!   quantizes activations with the calibrated range.

use adaptivfloat::{FormatError, FormatKind, NumberFormat, QuantStats};
use std::sync::Arc;

use crate::param::Param;

/// A shareable handle to a number format used for fake quantization.
pub type Quantizer = Arc<dyn NumberFormat>;

/// A (format kind, bit width) pair — one cell of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantSpec {
    /// The format family.
    pub kind: FormatKind,
    /// Word size in bits.
    pub bits: u32,
}

impl QuantSpec {
    /// Create a spec.
    pub fn new(kind: FormatKind, bits: u32) -> Self {
        QuantSpec { kind, bits }
    }

    /// Build the concrete format with the paper's per-kind field split.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the kind cannot be built at
    /// this width.
    pub fn build(self) -> Result<Quantizer, FormatError> {
        Ok(Arc::from(self.kind.build(self.bits)?))
    }

    /// Post-training-quantize a parameter in place (per-tensor adaptive
    /// parameters, exactly Algorithm 1 applied to a trained layer).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the format cannot be built.
    pub fn quantize_param(self, param: &mut Param) -> Result<(), FormatError> {
        let fmt = self.build()?;
        let plan = fmt.plan(&QuantStats::from_slice(param.value.data()));
        plan.execute_in_place(param.value.data_mut());
        Ok(())
    }
}

impl std::fmt::Display for QuantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}b", self.kind, self.bits)
    }
}

/// Running |max| observer for one activation site.
///
/// During calibration it tracks the maximum absolute activation seen; at
/// inference the frozen range parameterizes the activation quantizer
/// (the paper: "the exp_bias for the dynamic activations are informed
/// from statistics during offline batch inference").
#[derive(Debug, Clone)]
pub struct ActObserver {
    max_abs: f32,
    calibrating: bool,
}

impl Default for ActObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl ActObserver {
    /// New observer in calibration mode with an empty range.
    pub fn new() -> Self {
        ActObserver {
            max_abs: 0.0,
            calibrating: true,
        }
    }

    /// Record a batch of activations (no-op when frozen).
    pub fn observe(&mut self, data: &[f32]) {
        if !self.calibrating {
            return;
        }
        for &v in data {
            if v.is_finite() {
                self.max_abs = self.max_abs.max(v.abs());
            }
        }
    }

    /// Stop calibrating; the recorded range is frozen.
    pub fn freeze(&mut self) {
        self.calibrating = false;
    }

    /// Re-enter calibration (keeps the current maximum).
    pub fn unfreeze(&mut self) {
        self.calibrating = true;
    }

    /// Whether the observer is still recording.
    pub fn is_calibrating(&self) -> bool {
        self.calibrating
    }

    /// The calibrated |max| (0.0 if nothing was observed).
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_tensor::Tensor;

    #[test]
    fn spec_builds_all_paper_cells() {
        for kind in FormatKind::ALL {
            for bits in [4, 5, 6, 7, 8, 16] {
                let spec = QuantSpec::new(kind, bits);
                let fmt = spec.build().unwrap();
                assert_eq!(fmt.bits(), bits);
            }
        }
    }

    #[test]
    fn quantize_param_in_place() {
        let mut p = Param::new("w", Tensor::from_vec(vec![1.17, -2.71, 0.07], &[3]));
        QuantSpec::new(FormatKind::AdaptivFloat, 4)
            .quantize_param(&mut p)
            .unwrap();
        // The paper split at 4 bits is AdaptivFloat<4,3> (m = 0): a
        // power-of-two grid from 2^-5 to 2 for max |w| = 2.71. So
        // 1.17 → 1, −2.71 clamps to −2 (value_max), 0.07 → 0.0625.
        assert_eq!(p.value.data(), &[1.0, -2.0, 0.0625]);
    }

    #[test]
    fn observer_tracks_then_freezes() {
        let mut obs = ActObserver::new();
        obs.observe(&[0.5, -2.0]);
        assert_eq!(obs.max_abs(), 2.0);
        obs.freeze();
        obs.observe(&[100.0]);
        assert_eq!(obs.max_abs(), 2.0);
        assert!(!obs.is_calibrating());
    }

    #[test]
    fn observer_ignores_non_finite() {
        let mut obs = ActObserver::new();
        obs.observe(&[1.0, f32::INFINITY, f32::NAN]);
        assert_eq!(obs.max_abs(), 1.0);
    }

    #[test]
    fn spec_display() {
        let s = QuantSpec::new(FormatKind::AdaptivFloat, 8);
        assert_eq!(s.to_string(), "AdaptivFloat@8b");
    }
}
