//! # af-nn — autograd, layers, and quantization-aware training
//!
//! A compact reverse-mode automatic-differentiation engine ([`Tape`])
//! over `af-tensor`, the neural-network layers needed by the paper's three
//! model families (Linear, Conv2d, BatchNorm, LayerNorm, Embedding, LSTM,
//! multi-head attention), optimizers (SGD, Adam), and the quantization
//! machinery that makes the AdaptivFloat experiments possible:
//!
//! * **fake-quantization ops** with a straight-through estimator for
//!   quantization-aware retraining (the paper's "QAR" rows),
//! * **post-training quantization** of layer weights (the "PTQ" rows),
//! * **activation observers** that calibrate per-layer ranges from offline
//!   batch statistics (the paper's Table 3 weight+activation setting).
//!
//! ```
//! use af_nn::{Tape, Param};
//! use af_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let y = tape.scale(x, 3.0);
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! assert_eq!(tape.grad(x).unwrap().data(), &[3.0, 3.0]);
//! # let _ = Param::new("unused", Tensor::zeros(&[1]));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attention;
pub mod conv;
pub mod embedding;
pub mod grad_check;
pub mod layer;
pub mod linear;
pub mod lstm;
pub mod norm;
pub mod optim;
pub mod param;
pub mod prune;
pub mod quant;
pub mod tape;

pub use attention::MultiHeadAttention;
pub use conv::Conv2d;
pub use embedding::Embedding;
pub use layer::Layer;
pub use linear::Linear;
pub use lstm::{Lstm, LstmState};
pub use norm::{BatchNorm, LayerNorm};
pub use optim::{clip_grad_norm, Adam, Optimizer, Sgd};
pub use param::Param;
pub use prune::{prune_param, prune_weights, weight_sparsity, PruneReport};
pub use quant::{ActObserver, QuantSpec, Quantizer};
pub use tape::{NodeId, Tape};
