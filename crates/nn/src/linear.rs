//! Fully-connected layer with optional weight fake-quantization and
//! activation observation.

use af_tensor::{xavier_uniform, Tensor};
use rand::Rng;

use crate::layer::Layer;
use crate::param::Param;
use crate::quant::{ActObserver, Quantizer};
use crate::tape::{NodeCache, NodeId, Tape};

/// `y = x · Wᵀ + b` with `W: [out, in]`.
///
/// When a weight quantizer is installed, the bound weight node is passed
/// through a fake-quant op (STE backward); when an activation quantizer is
/// installed the *output* is observed/quantized, reproducing the paper's
/// weight-and-activation setting.
#[derive(Debug)]
pub struct Linear {
    /// Weight parameter, shape `[out, in]`.
    pub w: Param,
    /// Bias parameter, shape `[out]`.
    pub b: Param,
    weight_quant: Option<Quantizer>,
    quant_cache: NodeCache,
    act_quant: Option<Quantizer>,
    /// Output-range observer for activation quantization.
    pub observer: ActObserver,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, name: &str, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            w: Param::new(format!("{name}.w"), xavier_uniform(rng, &[out_dim, in_dim])),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[out_dim])),
            weight_quant: None,
            quant_cache: NodeCache::new(),
            act_quant: None,
            observer: ActObserver::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Install (or clear) an activation quantizer on the output.
    pub fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.act_quant = quantizer;
    }

    /// Forward through a tape: binds parameters, applies quantizers.
    pub fn forward(&mut self, tape: &mut Tape, x: NodeId) -> NodeId {
        let mut w = self.w.bind(tape);
        if let Some(q) = &self.weight_quant {
            // Quantize the bound weight once per tape, even when this
            // layer forwards at every timestep of an unrolled RNN.
            w = self
                .quant_cache
                .get_or_insert_with(tape, |t| t.fake_quant(w, q));
        }
        let b = self.b.bind(tape);
        let y = tape.matmul_t(x, w);
        let mut y = tape.add_row(y, b);
        self.observer.observe(tape.value(y).data());
        if let Some(q) = &self.act_quant {
            let max = self.observer.max_abs();
            y = tape.fake_quant_with_max(y, q, max);
        }
        y
    }
}

impl Layer for Linear {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.weight_quant = quantizer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivfloat::{AdaptivFloat, NumberFormat};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(&mut rng, "fc", 3, 2);
        layer.b.value = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros(&[4, 3]));
        let y = layer.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), &[4, 2]);
        // Zero input → pure bias.
        assert_eq!(tape.value(y).row(0), &[10.0, 20.0]);
    }

    #[test]
    fn gradients_flow_to_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(&mut rng, "fc", 2, 2);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[1, 2]));
        let y = layer.forward(&mut tape, x);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        for p in layer.params_mut() {
            p.pull_grad(&tape);
            assert!(p.grad.data().iter().any(|&g| g != 0.0), "{}", p.name);
        }
    }

    #[test]
    fn weight_quantizer_changes_forward_not_master() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Linear::new(&mut rng, "fc", 8, 8);
        let master = layer.w.value.clone();
        let fmt: Quantizer = Arc::new(AdaptivFloat::new(4, 2).unwrap());
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[1, 8]));
        let y_fp = layer.forward(&mut tape, x);
        layer.set_weight_quantizer(Some(fmt.clone()));
        let y_q = layer.forward(&mut tape, x);
        assert_ne!(tape.value(y_fp).data(), tape.value(y_q).data());
        // The master copy is untouched (QAT trains FP32 weights).
        assert_eq!(layer.w.value.data(), master.data());
        // And the quantized forward equals using pre-quantized weights.
        let wq = fmt.quantize_slice(master.data());
        let manual = Tensor::from_vec(wq, master.shape());
        let expect = Tensor::ones(&[1, 8]).matmul_t(&manual);
        for (a, b) in tape.value(y_q).data().iter().zip(expect.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_weight_node_cached_per_tape() {
        // An RNN-style double forward on one tape must not re-quantize
        // the weight; a fresh tape must.
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Linear::new(&mut rng, "fc", 4, 4);
        let fmt: Quantizer = Arc::new(AdaptivFloat::new(8, 3).unwrap());
        layer.set_weight_quantizer(Some(fmt));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[1, 4]));
        let _ = layer.forward(&mut tape, x);
        let after_first = tape.len();
        let _ = layer.forward(&mut tape, x);
        let after_second = tape.len();
        // Second forward adds matmul + bias + (no param bind, no quant):
        // strictly fewer nodes than the first.
        assert!(after_second - after_first < after_first);
        // A fresh tape re-binds and re-quantizes without panicking, and
        // produces identical output values.
        let mut tape2 = Tape::new();
        let x2 = tape2.input(Tensor::ones(&[1, 4]));
        let y2 = layer.forward(&mut tape2, x2);
        let mut tape3 = Tape::new();
        let x3 = tape3.input(Tensor::ones(&[1, 4]));
        let y3 = layer.forward(&mut tape3, x3);
        assert_eq!(tape2.value(y2).data(), tape3.value(y3).data());
    }

    #[test]
    fn act_quantizer_uses_calibrated_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(&mut rng, "fc", 2, 2);
        let fmt: Quantizer = Arc::new(AdaptivFloat::new(8, 3).unwrap());
        layer.set_act_quantizer(Some(fmt));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::ones(&[1, 2]));
        let y = layer.forward(&mut tape, x);
        // Output is on an 8-bit grid — requantizing is a no-op.
        let out = tape.value(y).data().to_vec();
        let fmt2 = AdaptivFloat::new(8, 3).unwrap();
        let again = fmt2.quantize_slice_with_max(layer.observer.max_abs(), &out);
        assert_eq!(out, again);
    }
}
