//! Finite-difference validation of every backward rule in the tape.

use af_nn::grad_check::check_gradient;
use af_nn::Tape;
use af_tensor::{Conv2dSpec, Tensor};

const TOL: f64 = 2e-2; // central differences at eps=1e-3 in f32

fn x(vals: &[f32], shape: &[usize]) -> Tensor {
    Tensor::from_vec(vals.to_vec(), shape)
}

fn seq(n: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
    (0..n).map(f).collect()
}

#[test]
fn grad_add_sub_mul() {
    let a = x(&seq(6, |i| (i as f32 * 0.37).sin()), &[2, 3]);
    for err in [
        check_gradient(&a, |t, x| {
            let c = t.input(Tensor::full(&[2, 3], 0.5));
            let y = t.add(x, c);
            let y = t.mul(y, y);
            t.sum_all(y)
        }),
        check_gradient(&a, |t, x| {
            let c = t.input(Tensor::full(&[2, 3], 0.5));
            let y = t.sub(x, c);
            let y = t.mul(y, x);
            t.sum_all(y)
        }),
    ] {
        assert!(err < TOL, "err {err}");
    }
}

#[test]
fn grad_matmul_both_sides() {
    let a = x(&seq(6, |i| (i as f32 * 0.53).cos()), &[2, 3]);
    let err = check_gradient(&a, |t, x| {
        let b = t.input(Tensor::from_vec(
            seq(12, |i| (i as f32 * 0.29).sin()),
            &[3, 4],
        ));
        let y = t.matmul(x, b);
        let y = t.mul(y, y);
        t.mean_all(y)
    });
    assert!(err < TOL, "lhs err {err}");
    let b0 = x(&seq(12, |i| (i as f32 * 0.29).sin()), &[3, 4]);
    let err = check_gradient(&b0, |t, x| {
        let a = t.input(Tensor::from_vec(
            seq(6, |i| (i as f32 * 0.53).cos()),
            &[2, 3],
        ));
        let y = t.matmul(a, x);
        let y = t.mul(y, y);
        t.mean_all(y)
    });
    assert!(err < TOL, "rhs err {err}");
}

#[test]
fn grad_matmul_t() {
    let a = x(&seq(6, |i| (i as f32 * 0.41).sin()), &[2, 3]);
    let err = check_gradient(&a, |t, x| {
        let b = t.input(Tensor::from_vec(
            seq(12, |i| (i as f32 * 0.31).cos()),
            &[4, 3],
        ));
        let y = t.matmul_t(x, b);
        let y = t.mul(y, y);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_activations() {
    let a = x(&seq(8, |i| (i as f32 - 3.5) * 0.6), &[2, 4]);
    for (name, err) in [
        (
            "relu",
            check_gradient(&a, |t, x| {
                let y = t.relu(x);
                let y = t.mul(y, y);
                t.sum_all(y)
            }),
        ),
        (
            "sigmoid",
            check_gradient(&a, |t, x| {
                let y = t.sigmoid(x);
                t.sum_all(y)
            }),
        ),
        (
            "tanh",
            check_gradient(&a, |t, x| {
                let y = t.tanh(x);
                t.sum_all(y)
            }),
        ),
    ] {
        assert!(err < TOL, "{name} err {err}");
    }
}

#[test]
fn grad_softmax() {
    let a = x(&seq(6, |i| (i as f32 * 0.9).sin() * 2.0), &[2, 3]);
    let err = check_gradient(&a, |t, x| {
        let y = t.softmax(x);
        // A non-symmetric functional of the softmax rows.
        let w = t.input(Tensor::from_vec(
            vec![1.0, -2.0, 3.0, 0.5, 1.5, -1.0],
            &[2, 3],
        ));
        let y = t.mul(y, w);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_cross_entropy() {
    let a = x(&seq(6, |i| (i as f32 * 1.3).cos()), &[2, 3]);
    let err = check_gradient(&a, |t, x| t.cross_entropy(x, &[2, 0]));
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_layer_norm_input_gamma_beta() {
    let a = x(&seq(8, |i| (i as f32 * 0.77).sin() + 0.2), &[2, 4]);
    let err = check_gradient(&a, |t, x| {
        let g = t.input(Tensor::from_vec(vec![1.0, 0.5, 2.0, -1.0], &[4]));
        let b = t.input(Tensor::from_vec(vec![0.1, -0.2, 0.0, 0.3], &[4]));
        let y = t.layer_norm(x, g, b, 1e-5);
        let w = t.input(Tensor::from_vec(
            seq(8, |i| (i as f32 * 0.17).cos()),
            &[2, 4],
        ));
        let y = t.mul(y, w);
        t.sum_all(y)
    });
    assert!(err < TOL, "input err {err}");
    // Gamma gradient.
    let g0 = x(&[1.0, 0.5, 2.0, -1.0], &[4]);
    let err = check_gradient(&g0, |t, g| {
        let xv = t.input(Tensor::from_vec(
            seq(8, |i| (i as f32 * 0.77).sin() + 0.2),
            &[2, 4],
        ));
        let b = t.input(Tensor::zeros(&[4]));
        let y = t.layer_norm(xv, g, b, 1e-5);
        let w = t.input(Tensor::from_vec(
            seq(8, |i| (i as f32 * 0.17).cos()),
            &[2, 4],
        ));
        let y = t.mul(y, w);
        t.sum_all(y)
    });
    assert!(err < TOL, "gamma err {err}");
}

#[test]
fn grad_batch_norm_input() {
    let a = x(&seq(12, |i| (i as f32 * 0.61).sin() * 1.5), &[4, 3]);
    let err = check_gradient(&a, |t, x| {
        let g = t.input(Tensor::from_vec(vec![1.0, 2.0, 0.5], &[3]));
        let b = t.input(Tensor::from_vec(vec![0.0, 0.1, -0.1], &[3]));
        let (y, _, _) = t.batch_norm(x, g, b, 1e-5);
        let w = t.input(Tensor::from_vec(
            seq(12, |i| (i as f32 * 0.23).cos()),
            &[4, 3],
        ));
        let y = t.mul(y, w);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_embedding_table() {
    let table = x(&seq(10, |i| (i as f32 * 0.33).sin()), &[5, 2]);
    let err = check_gradient(&table, |t, tab| {
        let e = t.embedding(tab, &[0, 3, 3, 1]);
        let e = t.mul(e, e);
        t.sum_all(e)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_slice_concat() {
    let a = x(&seq(8, |i| i as f32 * 0.4 - 1.0), &[2, 4]);
    let err = check_gradient(&a, |t, x| {
        let l = t.slice_cols(x, 0, 2);
        let r = t.slice_cols(x, 2, 2);
        let prod = t.mul(l, r);
        let y = t.concat_cols(&[prod, l]);
        let y = t.mul(y, y);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_conv2d_input_and_weight() {
    let spec = Conv2dSpec {
        in_channels: 2,
        out_channels: 3,
        kernel: 3,
        stride: 2,
        padding: 1,
    };
    let input = x(
        &seq(2 * 2 * 5 * 5, |i| (i as f32 * 0.19).sin()),
        &[2, 2 * 5 * 5],
    );
    let err = check_gradient(&input, |t, x| {
        let w = t.input(Tensor::from_vec(
            seq(3 * 18, |i| (i as f32 * 0.27).cos()),
            &[3, 18],
        ));
        let y = t.conv2d(x, w, spec, 2, 5, 5);
        let y = t.mul(y, y);
        t.mean_all(y)
    });
    assert!(err < TOL, "input err {err}");
    let w0 = x(&seq(3 * 18, |i| (i as f32 * 0.27).cos()), &[3, 18]);
    let err = check_gradient(&w0, |t, w| {
        let xin = t.input(Tensor::from_vec(
            seq(2 * 2 * 5 * 5, |i| (i as f32 * 0.19).sin()),
            &[2, 2 * 5 * 5],
        ));
        let y = t.conv2d(xin, w, spec, 2, 5, 5);
        let y = t.mul(y, y);
        t.mean_all(y)
    });
    assert!(err < TOL, "weight err {err}");
}

#[test]
fn grad_permute_and_pool() {
    let a = x(&seq(24, |i| (i as f32 * 0.11).sin()), &[8, 3]);
    let err = check_gradient(&a, |t, x| {
        let n = t.channels_last_to_nchw(x, 2, 2, 2, 3);
        let n = t.mul(n, n);
        t.sum_all(n)
    });
    assert!(err < TOL, "permute err {err}");
    let err = check_gradient(&a, |t, x| {
        let p = t.avg_pool_rows(x, 4);
        let p = t.mul(p, p);
        t.sum_all(p)
    });
    assert!(err < TOL, "pool err {err}");
}

#[test]
fn grad_full_lstm_step_composition() {
    // A hand-rolled LSTM step out of primitive ops, gradient-checked
    // end-to-end (this exercises concat → slice → sigmoid/tanh → mul/add).
    let xin = x(&seq(4, |i| (i as f32 * 0.81).sin()), &[1, 4]);
    let err = check_gradient(&xin, |t, x| {
        let h0 = t.input(Tensor::from_vec(seq(3, |i| i as f32 * 0.1), &[1, 3]));
        let c0 = t.input(Tensor::from_vec(seq(3, |i| 0.2 - i as f32 * 0.1), &[1, 3]));
        let w = t.input(Tensor::from_vec(
            seq(12 * 7, |i| (i as f32 * 0.05).sin() * 0.4),
            &[12, 7],
        ));
        let xh = t.concat_cols(&[x, h0]);
        let z = t.matmul_t(xh, w);
        let i = t.slice_cols(z, 0, 3);
        let f = t.slice_cols(z, 3, 3);
        let g = t.slice_cols(z, 6, 3);
        let o = t.slice_cols(z, 9, 3);
        let i = t.sigmoid(i);
        let f = t.sigmoid(f);
        let g = t.tanh(g);
        let o = t.sigmoid(o);
        let fc = t.mul(f, c0);
        let ig = t.mul(i, g);
        let c = t.add(fc, ig);
        let tc = t.tanh(c);
        let h = t.mul(o, tc);
        let h2 = t.mul(h, h);
        t.sum_all(h2)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_concat_rows() {
    let a = x(&seq(6, |i| (i as f32 * 0.43).sin()), &[2, 3]);
    let err = check_gradient(&a, |t, x| {
        let b = t.input(Tensor::from_vec(seq(3, |i| i as f32 * 0.2), &[1, 3]));
        let stacked = t.concat_rows(&[x, b, x]);
        let y = t.mul(stacked, stacked);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_scale_reshape_meanall() {
    let a = x(&seq(6, |i| i as f32 - 2.0), &[2, 3]);
    let err = check_gradient(&a, |t, x| {
        let y = t.scale(x, -1.7);
        let y = t.reshape(y, &[3, 2]);
        let y = t.mul(y, y);
        t.mean_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_add_row_bias() {
    let bias = x(&[0.3, -0.4, 0.5], &[3]);
    let err = check_gradient(&bias, |t, b| {
        let xv = t.input(Tensor::from_vec(
            seq(6, |i| (i as f32 * 0.37).cos()),
            &[2, 3],
        ));
        let y = t.add_row(xv, b);
        let y = t.mul(y, y);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn grad_attention_block() {
    use af_nn::MultiHeadAttention;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // Gradient-check the full multi-head attention w.r.t. its input.
    let q0 = x(&seq(12, |i| (i as f32 * 0.47).sin()), &[3, 4]);
    let err = check_gradient(&q0, |t, q| {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mha = MultiHeadAttention::new(&mut rng, "a", 4, 2);
        let mask = MultiHeadAttention::causal_mask(3);
        let y = mha.forward(t, q, q, Some(&mask));
        let y = t.mul(y, y);
        t.sum_all(y)
    });
    assert!(err < TOL, "err {err}");
}

#[test]
fn tape_reuse_values_after_backward() {
    // backward must not corrupt forward values (op restore check).
    let mut t = Tape::new();
    let a = t.input(x(&[1.0, 2.0], &[2]));
    let y = t.tanh(a);
    let before = t.value(y).data().to_vec();
    let loss = t.sum_all(y);
    t.backward(loss);
    assert_eq!(t.value(y).data(), &before[..]);
}
