//! Pins the micro-batching invariant the serving engine is built on:
//! `FrozenMlp::evaluate_batch` is bit-identical, row for row, to
//! per-sample `FrozenMlp::evaluate` — at every batch size, for FP32 and
//! for every quantized format, with and without calibrated activation
//! quantization.
//!
//! `scripts/ci.sh` runs this suite twice (default threads and
//! `AF_NUM_THREADS=1`) so the thread-count half of the invariant is
//! exercised too: the blocked matmul's ascending-k accumulation makes
//! the outputs independent of how rows are fanned out.

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};

const BATCH_SIZES: [usize; 6] = [1, 2, 3, 5, 16, 33];

fn assert_batch_matches_per_sample(model: &FrozenMlp, label: &str) {
    for &batch in &BATCH_SIZES {
        let inputs = FrozenMlp::synth_inputs(0xBA7C + batch as u64, batch, model.in_dim());
        let batched = model.evaluate_batch(&inputs);
        assert_eq!(batched.shape(), &[batch, model.out_dim()], "{label}");
        for r in 0..batch {
            let single = model.evaluate(inputs.row(r));
            let got: Vec<u32> = batched.row(r).iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, want,
                "{label}: batch {batch} row {r} diverged from per-sample evaluate"
            );
        }
    }
}

#[test]
fn fp32_batch_is_bit_identical_to_per_sample() {
    for family in [
        ModelFamily::Transformer,
        ModelFamily::Seq2Seq,
        ModelFamily::ResNet,
    ] {
        let m = FrozenMlp::synthesize(family, 21, &[40, 48, 24]);
        assert_batch_matches_per_sample(&m, family.label());
    }
}

#[test]
fn quantized_weight_batch_is_bit_identical_to_per_sample() {
    for kind in FormatKind::ALL {
        let m = FrozenMlp::synthesize(ModelFamily::Transformer, 22, &[40, 48, 24])
            .quantize_weights(kind, 8)
            .unwrap();
        assert_batch_matches_per_sample(&m, m.format_name().to_string().as_str());
    }
}

#[test]
fn act_quantized_batch_is_bit_identical_to_per_sample() {
    // Activation quantization is the serve-path stage most tempted to
    // peek at batch statistics; the calibrated-max contract forbids it.
    let calib = FrozenMlp::synth_inputs(0xCA11, 32, 40);
    for kind in FormatKind::ALL {
        let m = FrozenMlp::synthesize(ModelFamily::Seq2Seq, 23, &[40, 48, 24])
            .quantize_weights(kind, 8)
            .unwrap()
            .with_act_quant(kind, 8, &calib)
            .unwrap();
        let label = format!("{} + act", m.format_name());
        assert_batch_matches_per_sample(&m, &label);
    }
}

#[test]
fn narrow_input_crossing_the_lut_threshold_stays_bit_identical() {
    // in_dim 20 < MIN_LUT_LEN: a single sample quantizes activations on
    // the scalar path while larger batches take the LUT codebook; the
    // two are bit-exact by construction, and this pins it end to end.
    let calib = FrozenMlp::synth_inputs(0x17, 32, 20);
    let m = FrozenMlp::synthesize(ModelFamily::ResNet, 24, &[20, 48, 24])
        .quantize_weights(FormatKind::Uniform, 8)
        .unwrap()
        .with_act_quant(FormatKind::Uniform, 8, &calib)
        .unwrap();
    assert_batch_matches_per_sample(&m, "Uniform<8> narrow input");
}
