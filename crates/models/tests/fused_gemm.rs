//! End-to-end bit-identity of the fused quantized-domain GEMM: a
//! [`FrozenMlp`] with packed weights must answer every request with
//! exactly the bits the dense dequantize-then-matmul model serves, at
//! every batch size (the serving engine's micro-batcher varies it per
//! tick) and under any thread count (the fused kernel is serial, the
//! dense one is not — identical results are what make that a pure
//! implementation detail).

use adaptivfloat::FormatKind;
use af_models::{BatchScratch, FrozenMlp, ModelFamily};

const DIMS: &[usize] = &[40, 96, 96, 24];

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

fn build_pair(kind: FormatKind, n: u32) -> (FrozenMlp, FrozenMlp) {
    let dense = FrozenMlp::synthesize(ModelFamily::Transformer, 0xF00D, DIMS)
        .quantize_weights(kind, n)
        .unwrap();
    let fused = FrozenMlp::synthesize(ModelFamily::Transformer, 0xF00D, DIMS)
        .quantize_weights(kind, n)
        .unwrap()
        .with_fused_gemm();
    (dense, fused)
}

#[test]
fn fused_matches_dense_at_every_batch_size() {
    for (kind, n) in [
        (FormatKind::AdaptivFloat, 8),
        (FormatKind::AdaptivFloat, 4),
        (FormatKind::Uniform, 8),
        (FormatKind::Uniform, 4),
    ] {
        let (dense, fused) = build_pair(kind, n);
        assert_eq!(fused.fused_layers(), fused.depth(), "{kind} n={n}");
        assert_eq!(dense.fused_layers(), 0);
        let mut ds = BatchScratch::new();
        let mut fs = BatchScratch::new();
        for rows in 1..=9 {
            let x = FrozenMlp::synth_inputs(rows as u64 * 31 + 7, rows, DIMS[0]);
            let want = dense.evaluate_batch_into(x.data(), rows, &mut ds).to_vec();
            let got = fused.evaluate_batch_into(x.data(), rows, &mut fs).to_vec();
            assert_eq!(bits(&got), bits(&want), "{kind} n={n} rows={rows}");
        }
    }
}

#[test]
fn fused_matches_per_sample_reference_with_act_quant() {
    // The per-sample evaluate() path stays dense by design, so this
    // cross-checks the fused batch kernel against independently written
    // code — the same invariant frozen_batch.rs pins for dense models.
    let calib = FrozenMlp::synth_inputs(99, 32, DIMS[0]);
    let fused = FrozenMlp::synthesize(ModelFamily::Seq2Seq, 0xBEEF, DIMS)
        .quantize_weights(FormatKind::AdaptivFloat, 8)
        .unwrap()
        .with_fused_gemm()
        .with_act_quant(FormatKind::AdaptivFloat, 8, &calib)
        .unwrap();
    assert_eq!(fused.fused_layers(), fused.depth());
    let rows = 6;
    let x = FrozenMlp::synth_inputs(5, rows, DIMS[0]);
    let mut scratch = BatchScratch::new();
    let batch = fused
        .evaluate_batch_into(x.data(), rows, &mut scratch)
        .to_vec();
    for r in 0..rows {
        let one = fused.evaluate(x.row(r));
        assert_eq!(
            bits(&one),
            bits(&batch[r * fused.out_dim()..(r + 1) * fused.out_dim()]),
            "row {r}"
        );
    }
}

#[test]
fn packed_weights_shrink_weight_traffic() {
    let (dense, fused8) = build_pair(FormatKind::AdaptivFloat, 8);
    let (_, fused4) = build_pair(FormatKind::Uniform, 4);
    assert!(
        fused8.weight_bytes() * 3 < dense.weight_bytes(),
        "8-bit codes should cut weight bytes ~4x: {} vs {}",
        fused8.weight_bytes(),
        dense.weight_bytes()
    );
    assert!(
        fused4.weight_bytes() * 6 < dense.weight_bytes(),
        "4-bit codes should cut weight bytes ~8x: {} vs {}",
        fused4.weight_bytes(),
        dense.weight_bytes()
    );
}

#[test]
#[should_panic(expected = "quantize_weights first")]
fn fused_gemm_refuses_fp32_weights() {
    FrozenMlp::synthesize(ModelFamily::ResNet, 1, &[8, 4]).with_fused_gemm();
}

#[test]
#[should_panic(expected = "no recipe")]
fn fused_gemm_refuses_swapped_weights() {
    let m = FrozenMlp::synthesize(ModelFamily::ResNet, 1, &[8, 4])
        .quantize_weights(FormatKind::AdaptivFloat, 8)
        .unwrap();
    let w = vec![m.weight_data(0).0.to_vec()];
    m.with_weight_data(w, "decoded").with_fused_gemm();
}
