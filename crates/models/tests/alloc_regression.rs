//! Allocation-regression harness for the serve hot path.
//!
//! The batcher's whole reason for calling
//! [`FrozenMlp::evaluate_batch_into`] with a reused [`BatchScratch`] is
//! that a warmed lane performs **zero** heap allocations per request:
//! frozen activation plans execute in place, the blocked matmul writes
//! into caller scratch, and the ping-pong buffers grow once and are
//! never released. This binary holds a counting `#[global_allocator]`
//! and exactly one test, so nothing else allocates while the counter is
//! armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use adaptivfloat::FormatKind;
use af_models::{BatchScratch, FrozenMlp, ModelFamily};

struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn evaluate_batch_into_is_allocation_free_after_warmup() {
    // Both backend families the act plans can freeze: the bit-twiddled
    // kernel (AdaptivFloat) and the LUT codebook (Uniform at n = 8).
    // Tensors stay well under the parallel fan-out threshold, so the
    // whole evaluation runs on this thread.
    for kind in [FormatKind::AdaptivFloat, FormatKind::Uniform] {
        let calib = FrozenMlp::synth_inputs(0xA110C, 32, 40);
        let model = FrozenMlp::synthesize(ModelFamily::Transformer, 31, &[40, 48, 24])
            .quantize_weights(kind, 8)
            .expect("valid format")
            .with_act_quant(kind, 8, &calib)
            .expect("valid format");

        let rows = 16;
        let inputs = FrozenMlp::synth_inputs(0xF00D, rows, model.in_dim());
        let flat = inputs.data();

        // Warmup: grows both scratch buffers to their steady-state size.
        let mut scratch = BatchScratch::new();
        let warm = model.evaluate_batch_into(flat, rows, &mut scratch).to_vec();

        ALLOCATIONS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        let mut checksum = 0.0f64;
        for _ in 0..8 {
            let out = model.evaluate_batch_into(flat, rows, &mut scratch);
            checksum += out[0] as f64;
        }
        COUNTING.store(false, Ordering::SeqCst);

        let allocs = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            allocs,
            0,
            "{}: warmed evaluate_batch_into allocated {allocs} times",
            model.format_name()
        );
        // The counted runs computed the same thing as the warmup.
        assert_eq!(checksum, warm[0] as f64 * 8.0, "{}", model.format_name());
    }
}
