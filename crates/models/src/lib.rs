//! # af-models — the paper's three model families, in miniature
//!
//! The paper evaluates AdaptivFloat on a Transformer (WMT'17, BLEU), an
//! attention-based LSTM seq2seq (LibriSpeech, WER), and ResNet-50
//! (ImageNet, Top-1). Training those at full scale is out of scope for a
//! laptop reproduction, so this crate provides *miniature* versions of
//! the same architectures trained on synthetic tasks that preserve the
//! operative property: layer-norm sequence models develop wide, heavy-
//! tailed weight distributions; batch-norm CNNs stay narrow.
//!
//! It also ships a **weight-ensemble synthesizer** ([`ensembles`]) that
//! generates per-layer tensors matching the weight ranges the paper
//! reports (Table 1 / Figure 1), which is all the RMS-error study
//! (Figure 4) needs.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod data;
pub mod ensembles;
pub mod frozen;
pub mod metrics;
pub mod model;
pub mod positional;
pub mod resnet;
pub mod seq2seq;
pub mod transformer;

pub use frozen::{BatchScratch, FrozenMlp};
pub use model::{evaluate_with_weight_transform, ModelFamily, QuantizableModel};
pub use resnet::MiniResNet;
pub use seq2seq::Seq2Seq;
pub use transformer::MiniTransformer;
