//! Sinusoidal positional encodings (Vaswani et al. 2017).

use af_tensor::Tensor;

/// The standard sinusoidal positional-encoding table, shape
/// `[max_len, d_model]`: `PE(p, 2i) = sin(p / 10000^(2i/d))`,
/// `PE(p, 2i+1) = cos(p / 10000^(2i/d))`.
///
/// # Panics
///
/// Panics if `d_model` is odd.
///
/// # Examples
///
/// ```
/// use af_models::positional::sinusoidal;
///
/// let pe = sinusoidal(10, 8);
/// assert_eq!(pe.shape(), &[10, 8]);
/// assert_eq!(pe.at(0, 0), 0.0); // sin(0)
/// assert_eq!(pe.at(0, 1), 1.0); // cos(0)
/// ```
pub fn sinusoidal(max_len: usize, d_model: usize) -> Tensor {
    assert_eq!(d_model % 2, 0, "d_model must be even");
    let mut pe = Tensor::zeros(&[max_len, d_model]);
    for p in 0..max_len {
        for i in 0..d_model / 2 {
            let rate = 1.0f64 / 10000f64.powf(2.0 * i as f64 / d_model as f64);
            let angle = p as f64 * rate;
            pe.set(p, 2 * i, angle.sin() as f32);
            pe.set(p, 2 * i + 1, angle.cos() as f32);
        }
    }
    pe
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distinct() {
        let pe = sinusoidal(16, 8);
        for a in 0..16 {
            for b in (a + 1)..16 {
                let dist: f32 = pe
                    .row(a)
                    .iter()
                    .zip(pe.row(b))
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(dist > 1e-3, "positions {a} and {b} collide");
            }
        }
    }

    #[test]
    fn values_bounded() {
        let pe = sinusoidal(32, 16);
        assert!(pe.abs_max() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_panics() {
        sinusoidal(4, 7);
    }
}
