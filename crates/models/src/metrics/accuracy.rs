//! Classification accuracy.

/// Top-1 accuracy in percent.
///
/// Returns `0.0` for empty inputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use af_models::metrics::top1_accuracy;
///
/// assert_eq!(top1_accuracy(&[1, 2, 3], &[1, 0, 3]), 200.0 / 3.0);
/// ```
pub fn top1_accuracy(targets: &[usize], predictions: &[usize]) -> f64 {
    assert_eq!(
        targets.len(),
        predictions.len(),
        "one prediction per target"
    );
    if targets.is_empty() {
        return 0.0;
    }
    let correct = targets
        .iter()
        .zip(predictions)
        .filter(|(t, p)| t == p)
        .count();
    100.0 * correct as f64 / targets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct() {
        assert_eq!(top1_accuracy(&[0, 1, 2], &[0, 1, 2]), 100.0);
    }

    #[test]
    fn all_wrong() {
        assert_eq!(top1_accuracy(&[0, 1], &[1, 0]), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(top1_accuracy(&[], &[]), 0.0);
    }
}
