//! Task metrics: BLEU, word error rate, Top-1 accuracy.

pub mod accuracy;
pub mod bleu;
pub mod wer;

pub use accuracy::top1_accuracy;
pub use bleu::corpus_bleu;
pub use wer::{edit_distance, word_error_rate};
