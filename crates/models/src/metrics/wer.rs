//! Word error rate via Levenshtein edit distance.

/// Levenshtein distance between two token sequences
/// (insertions + deletions + substitutions).
///
/// # Examples
///
/// ```
/// use af_models::metrics::edit_distance;
///
/// assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
/// assert_eq!(edit_distance(&[1, 2, 3], &[1, 9, 3]), 1);
/// assert_eq!(edit_distance(&[1, 2, 3], &[]), 3);
/// ```
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr = vec![0usize; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Corpus word error rate in percent:
/// `100 · Σ edit_distance / Σ reference_length`.
///
/// Can exceed 100 when hypotheses are much longer than references (the
/// paper reports WERs like 76 at 4-bit BFP, and "inf" when decoding
/// diverges entirely — we saturate divergent output at the caller level).
///
/// Returns `0.0` when the references are all empty.
///
/// # Panics
///
/// Panics if the corpora have different lengths.
pub fn word_error_rate(references: &[Vec<usize>], hypotheses: &[Vec<usize>]) -> f64 {
    assert_eq!(
        references.len(),
        hypotheses.len(),
        "one hypothesis per reference"
    );
    let total_ref: usize = references.iter().map(|r| r.len()).sum();
    if total_ref == 0 {
        return 0.0;
    }
    let total_err: usize = references
        .iter()
        .zip(hypotheses)
        .map(|(r, h)| edit_distance(r, h))
        .sum();
    100.0 * total_err as f64 / total_ref as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_transcription_is_zero() {
        let refs = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(word_error_rate(&refs, &refs), 0.0);
    }

    #[test]
    fn single_substitution_rate() {
        let refs = vec![vec![1, 2, 3, 4]];
        let hyps = vec![vec![1, 9, 3, 4]];
        assert_eq!(word_error_rate(&refs, &hyps), 25.0);
    }

    #[test]
    fn deletions_and_insertions() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(edit_distance(&[1, 3], &[1, 2, 3]), 1);
        assert_eq!(edit_distance(&[], &[]), 0);
    }

    #[test]
    fn wer_can_exceed_100() {
        let refs = vec![vec![1]];
        let hyps = vec![vec![2, 3, 4, 5]];
        assert!(word_error_rate(&refs, &hyps) > 100.0);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let a = [1, 2, 3, 4, 5];
        let b = [1, 3, 5, 7];
        let c = [2, 4, 6];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }
}
