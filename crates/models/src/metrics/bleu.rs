//! Corpus-level BLEU (Papineni et al. 2002) with add-one smoothing for
//! higher-order n-grams (Lin & Och 2004) so tiny corpora don't zero out.

use std::collections::HashMap;

/// Corpus BLEU-4 on token-ID sequences, scaled to 0–100.
///
/// Modified n-gram precisions (n = 1..4) are pooled over the corpus; the
/// geometric mean is multiplied by the brevity penalty. Higher-order
/// counts are add-one smoothed.
///
/// Returns `0.0` for an empty corpus.
///
/// # Panics
///
/// Panics if `hypotheses` and `references` have different lengths.
///
/// # Examples
///
/// ```
/// use af_models::metrics::corpus_bleu;
///
/// let refs = vec![vec![1, 2, 3, 4, 5]];
/// let perfect = corpus_bleu(&refs, &refs);
/// assert!(perfect > 99.0);
/// ```
pub fn corpus_bleu(references: &[Vec<usize>], hypotheses: &[Vec<usize>]) -> f64 {
    assert_eq!(
        references.len(),
        hypotheses.len(),
        "one hypothesis per reference"
    );
    if references.is_empty() {
        return 0.0;
    }
    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    let mut matched = [0u64; 4];
    let mut total = [0u64; 4];
    for (r, h) in references.iter().zip(hypotheses) {
        hyp_len += h.len();
        ref_len += r.len();
        for n in 1..=4usize {
            let ref_counts = ngram_counts(r, n);
            let hyp_counts = ngram_counts(h, n);
            for (gram, &count) in &hyp_counts {
                total[n - 1] += count;
                if let Some(&rc) = ref_counts.get(gram) {
                    matched[n - 1] += count.min(rc);
                }
            }
        }
    }
    let mut log_sum = 0.0f64;
    for n in 0..4 {
        // Add-one smoothing above unigrams.
        let (m, t) = if n == 0 {
            (matched[0] as f64, total[0] as f64)
        } else {
            (matched[n] as f64 + 1.0, total[n] as f64 + 1.0)
        };
        if t == 0.0 || m == 0.0 {
            return 0.0;
        }
        log_sum += (m / t).ln() / 4.0;
    }
    let bp = if hyp_len >= ref_len || hyp_len == 0 {
        if hyp_len == 0 {
            return 0.0;
        }
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    100.0 * bp * log_sum.exp()
}

fn ngram_counts(seq: &[usize], n: usize) -> HashMap<&[usize], u64> {
    let mut counts = HashMap::new();
    if seq.len() >= n {
        for w in seq.windows(n) {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_is_near_100() {
        let refs = vec![vec![1, 2, 3, 4, 5, 6], vec![7, 8, 9, 10]];
        let bleu = corpus_bleu(&refs, &refs);
        assert!(bleu > 99.0, "bleu {bleu}");
    }

    #[test]
    fn disjoint_tokens_score_zero() {
        let refs = vec![vec![1, 2, 3, 4]];
        let hyps = vec![vec![5, 6, 7, 8]];
        assert_eq!(corpus_bleu(&refs, &hyps), 0.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let refs = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let hyps = vec![vec![1, 2, 3, 4, 9, 10, 11, 12]];
        let bleu = corpus_bleu(&refs, &hyps);
        assert!(bleu > 0.0 && bleu < 80.0, "bleu {bleu}");
    }

    #[test]
    fn brevity_penalty_punishes_short_output() {
        let refs = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let full = corpus_bleu(&refs, &refs);
        let short = corpus_bleu(&refs, &[vec![1, 2, 3, 4]]);
        assert!(short < full, "short {short} full {full}");
    }

    #[test]
    fn order_matters() {
        let refs = vec![vec![1, 2, 3, 4, 5, 6]];
        let shuffled = corpus_bleu(&refs, &[vec![6, 5, 4, 3, 2, 1]]);
        let exact = corpus_bleu(&refs, &refs);
        assert!(shuffled < exact * 0.6, "shuffled {shuffled} exact {exact}");
    }

    #[test]
    fn empty_corpus_and_empty_hypothesis() {
        assert_eq!(corpus_bleu(&[], &[]), 0.0);
        assert_eq!(corpus_bleu(&[vec![1, 2, 3]], &[vec![]]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one hypothesis per reference")]
    fn mismatched_corpus_sizes_panic() {
        corpus_bleu(&[vec![1]], &[]);
    }
}
