//! Frozen inference snapshots: the immutable, thread-shareable model
//! artifact the serving engine ships requests through.
//!
//! The training models in this crate ([`crate::MiniResNet`] & co.) are
//! `&mut self` objects carrying optimizers, data streams, and autograd
//! tapes — the wrong shape for a server that fans one `Arc`'d model out
//! across worker threads. A [`FrozenMlp`] is the deployment rendering:
//! a stack of dense layers whose weights were synthesized from the
//! paper-calibrated [`crate::ensembles`] ranges (Table 1 / Figure 1),
//! quantized **once** at registration time, with optional calibrated
//! activation quantization exactly as the paper prescribes ("informed
//! from statistics during offline batch inference", §IV).
//!
//! ## The bit-identity invariant
//!
//! [`FrozenMlp::evaluate_batch`] over any batch must produce, row for
//! row, **bit-identical** outputs to per-sample [`FrozenMlp::evaluate`]
//! — at any batch size and any `AF_NUM_THREADS`. This is what makes
//! dynamic micro-batching a pure throughput optimization: a request's
//! answer cannot depend on which other requests shared its batch. It
//! holds because every stage is row-independent: the cache-blocked
//! matmul accumulates each output element in ascending-`k` order
//! regardless of tiling or thread count, bias add and ReLU are
//! elementwise, and calibrated activation quantization is an
//! elementwise map under a *fixed* per-layer range (never a per-batch
//! statistic). `tests/frozen_batch.rs` pins the invariant.

use adaptivfloat::{
    AdaptivFloat, AdaptivParams, FormatError, FormatKind, NumberFormat, PlanParams, QuantPlan,
    QuantStats, Uniform,
};
use af_tensor::{PackedDecode, PackedGemm, PackedGemmScratch, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ensembles::EnsembleKind;
use crate::model::ModelFamily;

/// One dense layer of a frozen network: `y = x · W + b`.
#[derive(Debug, Clone)]
struct FrozenLayer {
    /// `[in, out]` row-major weight matrix.
    weight: Tensor,
    /// `[out]` bias (kept FP32, as is conventional).
    bias: Tensor,
    /// Fused quantized-domain GEMM operand, when
    /// [`FrozenMlp::with_fused_gemm`] was applied: the same weights as
    /// packed codes, multiplied without dequantizing to a f32 matrix.
    packed: Option<PackedGemm>,
}

/// The weight-quantization recipe recorded by
/// [`FrozenMlp::quantize_weights`]: the format geometry plus each
/// layer's frozen per-tensor parameters. This is what lets
/// [`FrozenMlp::with_fused_gemm`] re-encode the (already quantized)
/// weights into exact packed codes after the fact.
#[derive(Debug, Clone)]
struct WeightQuant {
    kind: FormatKind,
    n: u32,
    params: Vec<PlanParams>,
}

/// Calibrated activation quantization: one format applied to every
/// layer input under a fixed per-layer range.
#[derive(Debug)]
struct ActQuant {
    format: Box<dyn NumberFormat>,
    /// One frozen [`QuantPlan`] per layer, built once at calibration
    /// time from the layer input's abs-max; execution never re-derives
    /// parameters or touches the codebook cache.
    plans: Vec<QuantPlan>,
    /// The format geometry the plans were built through — the portable
    /// half of the recipe a durable store persists.
    kind: FormatKind,
    n: u32,
    /// The frozen per-layer abs-max ranges. Re-planning from these via
    /// [`FrozenMlp::with_act_quant_frozen`] reproduces the plans
    /// bit-identically without rerunning the calibration forward pass.
    maxes: Vec<f32>,
}

/// An immutable feed-forward inference snapshot (ReLU MLP).
///
/// Construction is a builder chain, mirroring a serving registry's
/// load path: [`synthesize`](FrozenMlp::synthesize) →
/// [`quantize_weights`](FrozenMlp::quantize_weights) →
/// [`with_act_quant`](FrozenMlp::with_act_quant) →
/// [`prewarm_codebooks`](FrozenMlp::prewarm_codebooks).
#[derive(Debug)]
pub struct FrozenMlp {
    family: ModelFamily,
    format: String,
    layers: Vec<FrozenLayer>,
    act: Option<ActQuant>,
    /// Set by [`quantize_weights`](FrozenMlp::quantize_weights); `None`
    /// for FP32 or externally-swapped weights (which carry no recipe).
    weight_quant: Option<WeightQuant>,
}

fn ensemble_kind(family: ModelFamily) -> EnsembleKind {
    match family {
        ModelFamily::Transformer => EnsembleKind::Transformer,
        ModelFamily::Seq2Seq => EnsembleKind::Seq2Seq,
        ModelFamily::ResNet => EnsembleKind::ResNet50,
    }
}

impl FrozenMlp {
    /// Synthesize an FP32 snapshot with layer widths `dims`
    /// (`dims[0]` inputs → `dims.last()` outputs) whose per-layer weight
    /// distributions follow the family's paper-calibrated ensemble.
    /// Deterministic under `(family, seed, dims)`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has fewer than two entries or any zero width.
    pub fn synthesize(family: ModelFamily, seed: u64, dims: &[usize]) -> FrozenMlp {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let n_layers = dims.len() - 1;
        let layer_size = dims
            .windows(2)
            .map(|w| w[0] * w[1])
            .max()
            .expect("at least one layer")
            .max(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let ensemble = ensemble_kind(family).generate(&mut rng, n_layers, layer_size);
        let layers = ensemble
            .layers
            .into_iter()
            .zip(dims.windows(2))
            .map(|((_, w), d)| {
                let (cin, cout) = (d[0], d[1]);
                let bias: Vec<f32> = (0..cout).map(|_| rng.gen_range(-0.1f32..0.1)).collect();
                FrozenLayer {
                    weight: Tensor::from_vec(w[..cin * cout].to_vec(), &[cin, cout]),
                    bias: Tensor::from_vec(bias, &[cout]),
                    packed: None,
                }
            })
            .collect();
        FrozenMlp {
            family,
            format: "fp32".to_string(),
            layers,
            act: None,
            weight_quant: None,
        }
    }

    /// A deterministic input batch (`rows × in_dim`, values in ±2) —
    /// used for activation calibration, tests, and load generation.
    pub fn synth_inputs(seed: u64, rows: usize, in_dim: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * in_dim)
            .map(|_| rng.gen_range(-2.0f32..2.0))
            .collect();
        Tensor::from_vec(data, &[rows, in_dim])
    }

    /// Quantize every weight matrix per-tensor through `kind` at word
    /// size `n` (the registration-time PTQ step; biases stay FP32).
    /// Call before [`with_act_quant`](Self::with_act_quant).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the format cannot be
    /// built at `n`.
    ///
    /// # Panics
    ///
    /// Panics if activation quantization is already installed (weights
    /// must be frozen before activation ranges are calibrated).
    pub fn quantize_weights(self, kind: FormatKind, n: u32) -> Result<FrozenMlp, FormatError> {
        assert!(
            self.act.is_none(),
            "quantize weights before calibrating activations"
        );
        let fmt = kind.build(n)?;
        let mut params = Vec::with_capacity(self.layers.len());
        let layers = self
            .layers
            .into_iter()
            .map(|l| {
                let shape = l.weight.shape().to_vec();
                let plan = fmt.plan(&QuantStats::from_slice(l.weight.data()));
                let q = plan.execute(l.weight.data());
                params.push(*plan.params());
                FrozenLayer {
                    weight: Tensor::from_vec(q, &shape),
                    bias: l.bias,
                    packed: None,
                }
            })
            .collect();
        Ok(FrozenMlp {
            family: self.family,
            format: fmt.name(),
            layers,
            act: self.act,
            weight_quant: Some(WeightQuant { kind, n, params }),
        })
    }

    /// Switch eligible layers to the fused quantized-domain GEMM: each
    /// weight matrix is re-encoded into its `n`-bit codes and kept
    /// packed (`n/8` bytes per weight instead of 4), decoded on the fly
    /// inside the matmul microkernel. Batched evaluation stays
    /// **bit-identical** — the packed kernel reproduces the dense
    /// blocked matmul's ascending-`k` accumulation exactly, and every
    /// re-encoded code is verified to decode back to the served weight's
    /// bit pattern here (any violation panics rather than serving
    /// subtly different results).
    ///
    /// Supported: [`FormatKind::AdaptivFloat`] and
    /// [`FormatKind::Uniform`] weights at `n ∈ {4, 8}`. The per-sample
    /// [`evaluate`](Self::evaluate) reference deliberately keeps using
    /// the dense weights, so the batch-vs-reference bit-identity tests
    /// cross-check the fused kernel end to end.
    ///
    /// # Panics
    ///
    /// Panics if the weights were not quantized through
    /// [`quantize_weights`](Self::quantize_weights) (FP32 or swapped-in
    /// weights carry no encoding recipe), if the format/word size is
    /// unsupported, or if any weight fails the exact re-encode check.
    pub fn with_fused_gemm(mut self) -> FrozenMlp {
        let wq = self
            .weight_quant
            .clone()
            .expect("fused GEMM needs quantize_weights first (no recipe on these weights)");
        assert!(
            matches!(wq.kind, FormatKind::AdaptivFloat | FormatKind::Uniform),
            "fused GEMM supports AdaptivFloat and Uniform weights, not {}",
            wq.kind
        );
        assert!(
            wq.n == 4 || wq.n == 8,
            "fused GEMM packs 4- or 8-bit codes, not {}-bit",
            wq.n
        );
        for (layer, params) in self.layers.iter_mut().zip(&wq.params) {
            let shape = layer.weight.shape();
            let (k, n_cols) = (shape[0], shape[1]);
            let w = layer.weight.data();
            let (table, codes, decode): (Vec<f32>, Vec<u32>, PackedDecode) = match *params {
                PlanParams::AdaptivFloat { exp_bias } => {
                    // Same field split FormatKind::build uses.
                    let e = 3.min(wq.n - 1);
                    let af = AdaptivFloat::new(wq.n, e).expect("paper field split");
                    let ap = AdaptivParams {
                        n: wq.n,
                        e,
                        exp_bias,
                    };
                    let table = (0..1u32 << wq.n).map(|c| af.decode_with(&ap, c)).collect();
                    let codes = w.iter().map(|&v| af.encode_with(&ap, v)).collect();
                    (
                        table,
                        codes,
                        PackedDecode::AdaptivFloat {
                            m: wq.n - e - 1,
                            exp_bias,
                        },
                    )
                }
                PlanParams::Uniform { scale } => {
                    let uni = Uniform::new(wq.n).expect("valid word size");
                    let table = (0..1u32 << wq.n)
                        .map(|c| uni.decode_code(scale, c))
                        .collect();
                    let codes = w.iter().map(|&v| uni.encode_code(scale, v)).collect();
                    (table, codes, PackedDecode::Uniform { scale })
                }
                other => panic!("weight plan params {other:?} do not match the recipe format"),
            };
            // The bit-identity keystone: every packed code must decode to
            // exactly the f32 the dense path serves.
            for (i, (&v, &c)) in w.iter().zip(&codes).enumerate() {
                assert_eq!(
                    table[c as usize].to_bits(),
                    v.to_bits(),
                    "weight {i} re-encode mismatch: {v} -> code {c} -> {}",
                    table[c as usize]
                );
            }
            layer.packed = Some(PackedGemm::build(k, n_cols, wq.n, &codes, table, decode));
        }
        self
    }

    /// How many layers run the fused quantized-domain GEMM.
    pub fn fused_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.packed.is_some()).count()
    }

    /// Bytes of weight storage the batched path streams per request:
    /// packed code bytes for fused layers, `4 · k · n` f32 bytes for
    /// dense ones (biases excluded — both paths read them identically).
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match &l.packed {
                Some(pg) => pg.packed_bytes(),
                None => 4 * l.weight.len(),
            })
            .sum()
    }

    /// Install calibrated activation quantization: run `calib` (a
    /// `[rows, in_dim]` batch) through the network once, record each
    /// layer input's abs-max, and quantize every layer input through
    /// `kind` at word size `n` under those fixed ranges from then on.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the format cannot be
    /// built at `n`.
    pub fn with_act_quant(
        self,
        kind: FormatKind,
        n: u32,
        calib: &Tensor,
    ) -> Result<FrozenMlp, FormatError> {
        let last = self.layers.len() - 1;
        let mut max = Vec::with_capacity(self.layers.len());
        let mut x = calib.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            max.push(x.abs_max().max(f32::MIN_POSITIVE));
            x = x.matmul(&layer.weight).add_row(&layer.bias);
            if l < last {
                x = x.map(|v| v.max(0.0));
            }
        }
        self.with_act_quant_frozen(kind, n, &max)
    }

    /// Install activation quantization from already-frozen per-layer
    /// ranges — the warm-start path a durable store uses on recovery.
    /// Builds exactly the plans [`with_act_quant`](Self::with_act_quant)
    /// would have built from the same ranges (same
    /// `QuantStats::calibrated` construction), skipping only the
    /// calibration forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the format cannot be
    /// built at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `maxes.len()` differs from the layer count.
    pub fn with_act_quant_frozen(
        mut self,
        kind: FormatKind,
        n: u32,
        maxes: &[f32],
    ) -> Result<FrozenMlp, FormatError> {
        assert_eq!(
            maxes.len(),
            self.layers.len(),
            "one calibrated range per layer"
        );
        let fmt = kind.build(n)?;
        // Freeze one plan per layer now; every later evaluate call just
        // executes it (and any LUT codebook it needs is resolved here,
        // so the serving hot path never takes the cache lock).
        let plans = maxes
            .iter()
            .map(|&m| fmt.plan(&QuantStats::calibrated(m)))
            .collect();
        self.act = Some(ActQuant {
            format: fmt,
            plans,
            kind,
            n,
            maxes: maxes.to_vec(),
        });
        Ok(self)
    }

    /// The frozen activation-quantization recipe: format kind, word
    /// size, and the calibrated per-layer ranges. `None` until
    /// [`with_act_quant`](Self::with_act_quant) runs. Persisting this
    /// and replaying it through
    /// [`with_act_quant_frozen`](Self::with_act_quant_frozen) restores
    /// activation quantization without recalibrating.
    pub fn act_recipe(&self) -> Option<(FormatKind, u32, &[f32])> {
        self.act.as_ref().map(|a| (a.kind, a.n, a.maxes.as_slice()))
    }

    /// The weight-quantization recipe recorded by
    /// [`quantize_weights`](Self::quantize_weights): format kind, word
    /// size, and each layer's frozen per-tensor parameters. `None` for
    /// FP32 or externally-swapped weights.
    pub fn weight_quant_recipe(&self) -> Option<(FormatKind, u32, &[PlanParams])> {
        self.weight_quant
            .as_ref()
            .map(|wq| (wq.kind, wq.n, wq.params.as_slice()))
    }

    /// Pre-build the LUT codebooks the activation-quantization path will
    /// need, so no request ever pays a codebook build (or the cache's
    /// write lock). Returns how many layers report a warm codebook path.
    pub fn prewarm_codebooks(&self) -> usize {
        match &self.act {
            None => 0,
            // Plans were frozen at calibration time, which already built
            // (and cached) any codebook they reference — counting warm
            // layers is now a pure inspection.
            Some(act) => act.plans.iter().filter(|p| p.uses_codebook()).count(),
        }
    }

    /// The model family whose weight distribution this snapshot carries.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// The weight format name (`"fp32"` until quantized).
    pub fn format_name(&self) -> &str {
        &self.format
    }

    /// The activation format name, if activation quantization is on.
    pub fn act_format_name(&self) -> Option<String> {
        self.act.as_ref().map(|a| a.format.name())
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].weight.shape()[0]
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].weight.shape()[1]
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Layer `l`'s weight matrix: its values and `[in, out]` shape.
    /// This is the surface a protected weight store reads to build its
    /// master copy and encoded codes from.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.depth()`.
    pub fn weight_data(&self, l: usize) -> (&[f32], &[usize]) {
        let layer = &self.layers[l];
        (layer.weight.data(), layer.weight.shape())
    }

    /// Replace every weight matrix with externally-supplied values (one
    /// `Vec<f32>` per layer, matching the existing shapes) and relabel
    /// the weight format. This is the re-entry point from a protected
    /// weight store: codes decoded from (possibly scrubbed) storage
    /// become the served weights, so the served model is bit-identical
    /// to what the storage actually holds. Biases are untouched.
    ///
    /// # Panics
    ///
    /// Panics if activation quantization is already installed (weight
    /// swaps must precede calibration, like
    /// [`quantize_weights`](Self::quantize_weights)), or if the layer
    /// count or any layer's element count mismatches.
    pub fn with_weight_data(self, weights: Vec<Vec<f32>>, format: &str) -> FrozenMlp {
        assert!(
            self.act.is_none(),
            "swap weights before calibrating activations"
        );
        assert_eq!(weights.len(), self.layers.len(), "layer count mismatch");
        let layers = self
            .layers
            .into_iter()
            .zip(weights)
            .map(|(l, w)| {
                let shape = l.weight.shape().to_vec();
                assert_eq!(
                    w.len(),
                    l.weight.len(),
                    "weight element count mismatch for shape {shape:?}"
                );
                FrozenLayer {
                    weight: Tensor::from_vec(w, &shape),
                    bias: l.bias,
                    packed: None,
                }
            })
            .collect();
        FrozenMlp {
            family: self.family,
            format: format.to_string(),
            layers,
            act: self.act,
            // Externally-decoded weights carry no encoding recipe, so a
            // later with_fused_gemm must (and does) refuse them.
            weight_quant: None,
        }
    }

    /// Replace every weight matrix with externally-supplied
    /// already-quantized values *and* reinstate the encoding recipe that
    /// produced them — the warm-start counterpart of
    /// [`quantize_weights`](Self::quantize_weights). Because the recipe
    /// survives, [`with_fused_gemm`](Self::with_fused_gemm) works on the
    /// restored snapshot (its exact re-encode check still verifies every
    /// weight against the recipe).
    ///
    /// # Panics
    ///
    /// Panics if activation quantization is already installed, or if the
    /// layer count, any layer's element count, or the params count
    /// mismatches.
    pub fn with_quantized_weights(
        self,
        kind: FormatKind,
        n: u32,
        params: &[PlanParams],
        weights: Vec<Vec<f32>>,
        format: &str,
    ) -> FrozenMlp {
        assert_eq!(
            params.len(),
            self.layers.len(),
            "one frozen params record per layer"
        );
        let mut restored = self.with_weight_data(weights, format);
        restored.weight_quant = Some(WeightQuant {
            kind,
            n,
            params: params.to_vec(),
        });
        restored
    }

    /// Total scalar parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight.len() + l.bias.len())
            .sum()
    }

    /// Per-sample forward pass — the serving reference semantics.
    ///
    /// Implemented as an independent naive loop (ascending-`k`
    /// accumulation per output element) rather than by delegating to
    /// [`evaluate_batch`](Self::evaluate_batch), so the batch path's
    /// bit-identity is checked against separately-written code.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.in_dim()`.
    pub fn evaluate(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.in_dim(), "input width mismatch");
        let last = self.layers.len() - 1;
        let mut x = input.to_vec();
        for (l, layer) in self.layers.iter().enumerate() {
            if let Some(act) = &self.act {
                x = act.plans[l].execute(&x);
            }
            let out = layer.weight.shape()[1];
            let w = layer.weight.data();
            let mut y = vec![0.0f32; out];
            for (p, &a) in x.iter().enumerate() {
                let w_row = &w[p * out..(p + 1) * out];
                for (o, &wv) in y.iter_mut().zip(w_row) {
                    *o += a * wv;
                }
            }
            for (o, &b) in y.iter_mut().zip(layer.bias.data()) {
                *o += b;
            }
            if l < last {
                for o in y.iter_mut() {
                    *o = o.max(0.0);
                }
            }
            x = y;
        }
        x
    }

    /// Batched forward pass over `[batch, in_dim]` inputs — one blocked
    /// matmul per layer. Row `i` of the result is bit-identical to
    /// `self.evaluate(inputs.row(i))` at any batch size and thread count
    /// (see the module docs for why).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not rank 2 with `in_dim` columns.
    pub fn evaluate_batch(&self, inputs: &Tensor) -> Tensor {
        assert_eq!(inputs.rank(), 2, "inputs must be [batch, in_dim]");
        assert_eq!(inputs.cols(), self.in_dim(), "input width mismatch");
        let rows = inputs.rows();
        let mut scratch = BatchScratch::new();
        let out = self.evaluate_batch_into(inputs.data(), rows, &mut scratch);
        Tensor::from_vec(out.to_vec(), &[rows, self.out_dim()])
    }

    /// The widest `rows × width` buffer any stage of a `rows`-row batch
    /// needs.
    fn scratch_len(&self, rows: usize) -> usize {
        let widest = self
            .layers
            .iter()
            .flat_map(|l| l.weight.shape().iter().copied())
            .max()
            .expect("at least one layer");
        rows * widest
    }

    /// Batched forward pass into caller-owned scratch — the serving hot
    /// path. Bit-identical to [`evaluate_batch`](Self::evaluate_batch)
    /// (which delegates here); performs **zero heap allocations** once
    /// `scratch` has grown to this model's widest stage (quantization
    /// executes frozen plans in place, each matmul writes into the
    /// ping-pong buffer, bias/ReLU are in-place). The returned slice
    /// (`rows × out_dim`, borrowed from `scratch`) is valid until the
    /// next call.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows * self.in_dim()`.
    pub fn evaluate_batch_into<'s>(
        &self,
        inputs: &[f32],
        rows: usize,
        scratch: &'s mut BatchScratch,
    ) -> &'s [f32] {
        assert_eq!(inputs.len(), rows * self.in_dim(), "input width mismatch");
        let last = self.layers.len() - 1;
        scratch.reserve(self.scratch_len(rows));
        let BatchScratch { a, b, packed } = scratch;
        let (mut cur, mut nxt) = (a, b);
        let mut width = self.in_dim();
        cur[..rows * width].copy_from_slice(inputs);
        for (l, layer) in self.layers.iter().enumerate() {
            let out_w = layer.weight.shape()[1];
            if let Some(act) = &self.act {
                act.plans[l].execute_in_place(&mut cur[..rows * width]);
            }
            match &layer.packed {
                // Fused path: decode packed codes inside the kernel —
                // bit-identical to the dense matmul below (pinned by
                // tests/fused_gemm.rs), reading width/8 of the bytes.
                Some(pg) => {
                    pg.matmul_into(&cur[..rows * width], rows, &mut nxt[..rows * out_w], packed)
                }
                None => Tensor::matmul_slice_into(
                    &cur[..rows * width],
                    rows,
                    width,
                    &layer.weight,
                    &mut nxt[..rows * out_w],
                ),
            }
            for row in nxt[..rows * out_w].chunks_mut(out_w) {
                for (o, &b) in row.iter_mut().zip(layer.bias.data()) {
                    *o += b;
                }
            }
            if l < last {
                for o in nxt[..rows * out_w].iter_mut() {
                    *o = o.max(0.0);
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
            width = out_w;
        }
        &cur[..rows * width]
    }
}

/// Reusable ping-pong buffers for [`FrozenMlp::evaluate_batch_into`].
///
/// Grows (once) to the widest stage it has seen and never shrinks, so a
/// long-lived worker thread reaches a steady state with no per-request
/// heap traffic.
#[derive(Debug, Default)]
pub struct BatchScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    /// Decode tile for fused packed-GEMM layers (unused — and unsized —
    /// on dense-only models).
    packed: PackedGemmScratch,
}

impl BatchScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Ensure both buffers hold at least `len` elements.
    fn reserve(&mut self, len: usize) {
        if self.a.len() < len {
            self.a.resize(len, 0.0);
        }
        if self.b.len() < len {
            self.b.resize(len, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_is_deterministic_and_shaped() {
        let a = FrozenMlp::synthesize(ModelFamily::ResNet, 9, &[12, 20, 6]);
        let b = FrozenMlp::synthesize(ModelFamily::ResNet, 9, &[12, 20, 6]);
        assert_eq!(a.in_dim(), 12);
        assert_eq!(a.out_dim(), 6);
        assert_eq!(a.depth(), 2);
        assert_eq!(a.param_count(), 12 * 20 + 20 + 20 * 6 + 6);
        let x = FrozenMlp::synth_inputs(3, 1, 12);
        assert_eq!(a.evaluate(x.row(0)), b.evaluate(x.row(0)));
        // Different seed, different weights.
        let c = FrozenMlp::synthesize(ModelFamily::ResNet, 10, &[12, 20, 6]);
        assert_ne!(a.evaluate(x.row(0)), c.evaluate(x.row(0)));
    }

    #[test]
    fn quantized_weights_change_outputs_but_stay_deterministic() {
        let base = FrozenMlp::synthesize(ModelFamily::Transformer, 4, &[16, 24, 8]);
        let x = FrozenMlp::synth_inputs(5, 1, 16);
        let fp32 = base.evaluate(x.row(0));
        let q = FrozenMlp::synthesize(ModelFamily::Transformer, 4, &[16, 24, 8])
            .quantize_weights(FormatKind::AdaptivFloat, 4)
            .unwrap();
        assert_eq!(q.format_name(), "AdaptivFloat<4,3>");
        let ql = q.evaluate(x.row(0));
        assert_ne!(fp32, ql, "4-bit weights must perturb the outputs");
        assert_eq!(ql, q.evaluate(x.row(0)));
    }

    #[test]
    fn act_quant_calibration_is_deterministic() {
        let build = || {
            let calib = FrozenMlp::synth_inputs(77, 16, 10);
            FrozenMlp::synthesize(ModelFamily::Seq2Seq, 8, &[10, 32, 4])
                .quantize_weights(FormatKind::Uniform, 8)
                .unwrap()
                .with_act_quant(FormatKind::Uniform, 8, &calib)
                .unwrap()
        };
        let (a, b) = (build(), build());
        assert_eq!(a.act_format_name().as_deref(), Some("Uniform<8>"));
        let x = FrozenMlp::synth_inputs(6, 1, 10);
        let (ya, yb) = (a.evaluate(x.row(0)), b.evaluate(x.row(0)));
        assert_eq!(ya, yb);
        assert!(a.prewarm_codebooks() > 0);
    }

    #[test]
    fn weight_swap_roundtrips_and_relabels() {
        let m = FrozenMlp::synthesize(ModelFamily::ResNet, 21, &[10, 14, 4]);
        let x = FrozenMlp::synth_inputs(2, 1, 10);
        let want = m.evaluate(x.row(0));
        // Read out every layer's weights and feed them straight back:
        // the rebuilt model must be bit-identical.
        let weights: Vec<Vec<f32>> = (0..m.depth())
            .map(|l| m.weight_data(l).0.to_vec())
            .collect();
        let same = FrozenMlp::synthesize(ModelFamily::ResNet, 21, &[10, 14, 4])
            .with_weight_data(weights.clone(), "decoded-fp32");
        assert_eq!(same.format_name(), "decoded-fp32");
        let got = same.evaluate(x.row(0));
        let bits = |v: &[f32]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
        // Perturbed weights change the outputs (the swap is real).
        let mut bent = weights;
        bent[0][0] += 1.0;
        let other = FrozenMlp::synthesize(ModelFamily::ResNet, 21, &[10, 14, 4])
            .with_weight_data(bent, "bent");
        assert_ne!(other.evaluate(x.row(0)), want);
    }

    #[test]
    #[should_panic(expected = "element count mismatch")]
    fn weight_swap_rejects_wrong_shape() {
        let m = FrozenMlp::synthesize(ModelFamily::ResNet, 1, &[8, 4]);
        m.with_weight_data(vec![vec![0.0; 3]], "bad");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_rejected() {
        let m = FrozenMlp::synthesize(ModelFamily::ResNet, 1, &[8, 4]);
        m.evaluate(&[0.0; 7]);
    }
}
