//! Paper-calibrated weight ensembles.
//!
//! Figure 1 and Figure 4 of the paper only depend on the *distribution*
//! of trained weights, not on the tasks. This module synthesizes
//! per-layer weight tensors whose ranges match what the paper reports
//! (Table 1 and Figure 1) and whose shapes match the published
//! observations: batch-norm CNNs are narrow and near-Gaussian; layer-norm
//! NLP models are wide with heavy tails.

use rand::Rng;

/// The model families shown in the paper's Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleKind {
    /// ResNet-50 — narrow batch-norm CNN, range ≈ [−0.78, 1.32] (Table 1).
    ResNet50,
    /// Inception-v3 — narrow CNN, range ≈ ±1.6.
    InceptionV3,
    /// DenseNet-201 — narrow CNN, range ≈ ±2.1.
    DenseNet201,
    /// LSTM seq2seq — moderate, range ≈ [−2.21, 2.39] (Table 1).
    Seq2Seq,
    /// BERT — wide layer-norm NLP model, range ≈ ±10.
    Bert,
    /// GPT — wide, range ≈ ±13.
    Gpt,
    /// Transformer (WMT'17) — range [−12.46, 20.41] (Table 1).
    Transformer,
    /// XLNet — wide, range ≈ ±17.
    Xlnet,
    /// XLM — widest shown, range ≈ ±25.
    Xlm,
}

impl EnsembleKind {
    /// The kinds in the paper's Figure 1, CNNs first.
    pub const ALL: [EnsembleKind; 9] = [
        EnsembleKind::ResNet50,
        EnsembleKind::InceptionV3,
        EnsembleKind::DenseNet201,
        EnsembleKind::Seq2Seq,
        EnsembleKind::Bert,
        EnsembleKind::Gpt,
        EnsembleKind::Transformer,
        EnsembleKind::Xlnet,
        EnsembleKind::Xlm,
    ];

    /// The three kinds evaluated in Tables 2–3 / Figure 4.
    pub const EVALUATED: [EnsembleKind; 3] = [
        EnsembleKind::Transformer,
        EnsembleKind::Seq2Seq,
        EnsembleKind::ResNet50,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EnsembleKind::ResNet50 => "ResNet-50",
            EnsembleKind::InceptionV3 => "Inception-v3",
            EnsembleKind::DenseNet201 => "DenseNet-201",
            EnsembleKind::Seq2Seq => "Seq2Seq",
            EnsembleKind::Bert => "BERT",
            EnsembleKind::Gpt => "GPT",
            EnsembleKind::Transformer => "Transformer",
            EnsembleKind::Xlnet => "XLNet",
            EnsembleKind::Xlm => "XLM",
        }
    }

    /// Whether the family uses batch norm (narrow weights) or layer norm
    /// (wide weights) — the paper's Figure 1 dichotomy.
    pub fn is_cnn(self) -> bool {
        matches!(
            self,
            EnsembleKind::ResNet50 | EnsembleKind::InceptionV3 | EnsembleKind::DenseNet201
        )
    }

    /// The target full-model weight range `(min, max)`.
    pub fn target_range(self) -> (f32, f32) {
        match self {
            EnsembleKind::ResNet50 => (-0.78, 1.32),
            EnsembleKind::InceptionV3 => (-1.6, 1.5),
            EnsembleKind::DenseNet201 => (-2.1, 2.0),
            EnsembleKind::Seq2Seq => (-2.21, 2.39),
            EnsembleKind::Bert => (-10.0, 9.2),
            EnsembleKind::Gpt => (-13.0, 12.1),
            EnsembleKind::Transformer => (-12.46, 20.41),
            EnsembleKind::Xlnet => (-17.0, 16.2),
            EnsembleKind::Xlm => (-25.0, 23.4),
        }
    }

    /// Per-layer Gaussian core width (CNNs are tight; NLP layers vary an
    /// order of magnitude, which is what per-layer adaptation exploits).
    fn layer_sigma(self, layer: usize, layers: usize) -> f32 {
        let t = layer as f32 / layers.max(1) as f32;
        if self.is_cnn() {
            0.02 + 0.03 * t
        } else {
            // Early layers tight, late layers broad (embeddings/output
            // projections carry the big weights).
            0.02 * (1.0 + 30.0 * t)
        }
    }

    /// Fraction of heavy-tail outliers per layer.
    fn outlier_fraction(self) -> f32 {
        if self.is_cnn() {
            0.0005
        } else {
            0.01
        }
    }

    /// Synthesize the ensemble: `layers` tensors of `layer_size` weights.
    /// The last layer is pinned so the whole-model range matches
    /// [`target_range`](Self::target_range) exactly.
    pub fn generate<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        layers: usize,
        layer_size: usize,
    ) -> WeightEnsemble {
        assert!(layers >= 1 && layer_size >= 4, "ensemble too small");
        let (lo, hi) = self.target_range();
        let mut out = Vec::with_capacity(layers);
        for l in 0..layers {
            let sigma = self.layer_sigma(l, layers);
            let mut w = Vec::with_capacity(layer_size);
            for _ in 0..layer_size {
                // Box–Muller Gaussian core.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                let mut v = g * sigma;
                // Heavy tail: occasional large-magnitude outliers.
                if rng.gen_range(0.0f32..1.0) < self.outlier_fraction() {
                    v *= rng.gen_range(5.0f32..12.0);
                }
                // Keep within the model-level envelope.
                w.push(v.clamp(lo, hi));
            }
            if l == layers - 1 {
                // Pin the global extremes (Figure 1 plots exact ranges).
                w[0] = lo;
                w[1] = hi;
            }
            out.push((format!("{}.layer{}", self.label(), l), w));
        }
        WeightEnsemble {
            kind: self,
            layers: out,
        }
    }
}

impl std::fmt::Display for EnsembleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A synthesized set of per-layer weight tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightEnsemble {
    /// Which family this ensemble models.
    pub kind: EnsembleKind,
    /// Named per-layer weight vectors.
    pub layers: Vec<(String, Vec<f32>)>,
}

impl WeightEnsemble {
    /// The global (min, max) over all layers.
    pub fn range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for (_, w) in &self.layers {
            for &v in w {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }

    /// Total weight count.
    pub fn len(&self) -> usize {
        self.layers.iter().map(|(_, w)| w.len()).sum()
    }

    /// Whether the ensemble holds no weights.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_match_paper_targets() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in EnsembleKind::ALL {
            let e = kind.generate(&mut rng, 8, 2048);
            let (lo, hi) = e.range();
            let (tlo, thi) = kind.target_range();
            assert_eq!(lo, tlo, "{kind} min");
            assert_eq!(hi, thi, "{kind} max");
        }
    }

    #[test]
    fn nlp_wider_than_cnn() {
        // The >10× claim of Figure 1.
        let mut rng = StdRng::seed_from_u64(1);
        let cnn = EnsembleKind::ResNet50.generate(&mut rng, 8, 1024);
        let nlp = EnsembleKind::Transformer.generate(&mut rng, 8, 1024);
        let cnn_max = cnn.range().1.abs().max(cnn.range().0.abs());
        let nlp_max = nlp.range().1.abs().max(nlp.range().0.abs());
        assert!(nlp_max > 10.0 * cnn_max, "{nlp_max} vs {cnn_max}");
    }

    #[test]
    fn nlp_has_heavier_tails() {
        use adaptivfloat::TensorStats;
        let mut rng = StdRng::seed_from_u64(2);
        let cnn = EnsembleKind::ResNet50.generate(&mut rng, 4, 8192);
        let nlp = EnsembleKind::Gpt.generate(&mut rng, 4, 8192);
        let k = |e: &WeightEnsemble| {
            let all: Vec<f32> = e.layers.iter().flat_map(|(_, w)| w.clone()).collect();
            TensorStats::from_slice(&all).kurtosis
        };
        assert!(k(&nlp) > k(&cnn), "nlp {} vs cnn {}", k(&nlp), k(&cnn));
    }

    #[test]
    fn layer_sigmas_vary_for_nlp() {
        use adaptivfloat::TensorStats;
        let mut rng = StdRng::seed_from_u64(3);
        let e = EnsembleKind::Transformer.generate(&mut rng, 8, 4096);
        let first = TensorStats::from_slice(&e.layers[0].1).std;
        let last = TensorStats::from_slice(&e.layers[6].1).std;
        assert!(last > 4.0 * first, "first {first} last {last}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = EnsembleKind::Bert.generate(&mut StdRng::seed_from_u64(7), 3, 128);
        let b = EnsembleKind::Bert.generate(&mut StdRng::seed_from_u64(7), 3, 128);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_ensemble_rejected() {
        EnsembleKind::Bert.generate(&mut StdRng::seed_from_u64(0), 0, 128);
    }
}
