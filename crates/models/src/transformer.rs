//! A miniature encoder–decoder Transformer (the paper's machine-
//! translation model, scaled to the toy task).
//!
//! One post-LN encoder layer and one decoder layer, d_model 32, 2 heads,
//! FFN 64 — every structural element of the full model is present:
//! embeddings, sinusoidal positions, (masked/cross) multi-head attention,
//! layer norm, position-wise FFN, and an output projection. All of them
//! are quantized in the experiments, including the embeddings ("we
//! quantize all of the layers ... unlike several works that intentionally
//! skip the sensitive first and last layers").

use af_nn::{
    Adam, Embedding, Layer, Linear, MultiHeadAttention, NodeId, Optimizer, Param, Quantizer, Tape,
};
use af_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::translation::{TranslationDataset, BOS, EOS, VOCAB};
use crate::metrics::corpus_bleu;
use crate::model::{ModelFamily, QuantizableModel};
use crate::positional::sinusoidal;

const D_MODEL: usize = 32;
const HEADS: usize = 2;
const D_FF: usize = 64;
const MAX_LEN: usize = 16;
const BATCH: usize = 8;

/// The miniature Transformer with its task, optimizer, and data stream.
#[derive(Debug)]
pub struct MiniTransformer {
    emb_src: Embedding,
    emb_tgt: Embedding,
    enc_attn: MultiHeadAttention,
    enc_ln1: af_nn::LayerNorm,
    enc_ff1: Linear,
    enc_ff2: Linear,
    enc_ln2: af_nn::LayerNorm,
    dec_self: MultiHeadAttention,
    dec_ln1: af_nn::LayerNorm,
    dec_cross: MultiHeadAttention,
    dec_ln2: af_nn::LayerNorm,
    dec_ff1: Linear,
    dec_ff2: Linear,
    dec_ln3: af_nn::LayerNorm,
    out_proj: Linear,
    pos: Tensor,
    opt: Adam,
    dataset: TranslationDataset,
    rng: StdRng,
    eval_seed: u64,
}

impl MiniTransformer {
    /// Build with a training seed (evaluation uses an independent fixed
    /// seed so PTQ/QAR comparisons share their test set).
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        MiniTransformer {
            emb_src: Embedding::new(&mut rng, "enc.emb", VOCAB, D_MODEL),
            emb_tgt: Embedding::new(&mut rng, "dec.emb", VOCAB, D_MODEL),
            enc_attn: MultiHeadAttention::new(&mut rng, "enc.attn", D_MODEL, HEADS),
            enc_ln1: af_nn::LayerNorm::new("enc.ln1", D_MODEL),
            enc_ff1: Linear::new(&mut rng, "enc.ff1", D_MODEL, D_FF),
            enc_ff2: Linear::new(&mut rng, "enc.ff2", D_FF, D_MODEL),
            enc_ln2: af_nn::LayerNorm::new("enc.ln2", D_MODEL),
            dec_self: MultiHeadAttention::new(&mut rng, "dec.self", D_MODEL, HEADS),
            dec_ln1: af_nn::LayerNorm::new("dec.ln1", D_MODEL),
            dec_cross: MultiHeadAttention::new(&mut rng, "dec.cross", D_MODEL, HEADS),
            dec_ln2: af_nn::LayerNorm::new("dec.ln2", D_MODEL),
            dec_ff1: Linear::new(&mut rng, "dec.ff1", D_MODEL, D_FF),
            dec_ff2: Linear::new(&mut rng, "dec.ff2", D_FF, D_MODEL),
            dec_ln3: af_nn::LayerNorm::new("dec.ln3", D_MODEL),
            out_proj: Linear::new(&mut rng, "dec.out", D_MODEL, VOCAB),
            pos: sinusoidal(MAX_LEN, D_MODEL),
            opt: Adam::new(2e-3),
            dataset: TranslationDataset::new(),
            rng,
            eval_seed: 0xE7A1,
        }
    }

    fn add_positions(&self, tape: &mut Tape, x: NodeId, len: usize) -> NodeId {
        let pe = Tensor::from_vec(self.pos.data()[..len * D_MODEL].to_vec(), &[len, D_MODEL]);
        let pe = tape.input(pe);
        tape.add(x, pe)
    }

    fn encode(&mut self, tape: &mut Tape, src: &[usize]) -> NodeId {
        let x = self.emb_src.forward(tape, src);
        let x = self.add_positions(tape, x, src.len());
        let a = self.enc_attn.forward(tape, x, x, None);
        let x = tape.add(x, a);
        let x = self.enc_ln1.forward(tape, x);
        let f = self.enc_ff1.forward(tape, x);
        let f = tape.relu(f);
        let f = self.enc_ff2.forward(tape, f);
        let x2 = tape.add(x, f);
        self.enc_ln2.forward(tape, x2)
    }

    fn decode(&mut self, tape: &mut Tape, tgt_in: &[usize], enc_out: NodeId) -> NodeId {
        let y = self.emb_tgt.forward(tape, tgt_in);
        let y = self.add_positions(tape, y, tgt_in.len());
        let mask = MultiHeadAttention::causal_mask(tgt_in.len());
        let a = self.dec_self.forward(tape, y, y, Some(&mask));
        let y = tape.add(y, a);
        let y = self.dec_ln1.forward(tape, y);
        let c = self.dec_cross.forward(tape, y, enc_out, None);
        let y2 = tape.add(y, c);
        let y = self.dec_ln2.forward(tape, y2);
        let f = self.dec_ff1.forward(tape, y);
        let f = tape.relu(f);
        let f = self.dec_ff2.forward(tape, f);
        let y3 = tape.add(y, f);
        let y = self.dec_ln3.forward(tape, y3);
        self.out_proj.forward(tape, y)
    }

    /// Greedy decoding of one source sequence.
    pub fn greedy_decode(&mut self, src: &[usize]) -> Vec<usize> {
        let max_out = src.len() + 3;
        let mut tgt_in = vec![BOS];
        let mut out = Vec::new();
        for _ in 0..max_out {
            let mut tape = Tape::new();
            let enc = self.encode(&mut tape, src);
            let logits = self.decode(&mut tape, &tgt_in, enc);
            let last = tape.value(logits).rows() - 1;
            let next = tape
                .value(logits)
                .row(last)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .unwrap_or(EOS);
            if next == EOS {
                break;
            }
            out.push(next);
            tgt_in.push(next);
        }
        out
    }

    fn all_layers(&mut self) -> Vec<&mut dyn Layer> {
        vec![
            &mut self.emb_src,
            &mut self.emb_tgt,
            &mut self.enc_attn,
            &mut self.enc_ln1,
            &mut self.enc_ff1,
            &mut self.enc_ff2,
            &mut self.enc_ln2,
            &mut self.dec_self,
            &mut self.dec_ln1,
            &mut self.dec_cross,
            &mut self.dec_ln2,
            &mut self.dec_ff1,
            &mut self.dec_ff2,
            &mut self.dec_ln3,
            &mut self.out_proj,
        ]
    }

    fn linears(&mut self) -> Vec<&mut Linear> {
        vec![
            &mut self.enc_attn.wq,
            &mut self.enc_attn.wk,
            &mut self.enc_attn.wv,
            &mut self.enc_attn.wo,
            &mut self.enc_ff1,
            &mut self.enc_ff2,
            &mut self.dec_self.wq,
            &mut self.dec_self.wk,
            &mut self.dec_self.wv,
            &mut self.dec_self.wo,
            &mut self.dec_cross.wq,
            &mut self.dec_cross.wk,
            &mut self.dec_cross.wv,
            &mut self.dec_cross.wo,
            &mut self.dec_ff1,
            &mut self.dec_ff2,
            &mut self.out_proj,
        ]
    }
}

impl QuantizableModel for MiniTransformer {
    fn family(&self) -> ModelFamily {
        ModelFamily::Transformer
    }

    fn train_steps(&mut self, steps: usize) {
        for _ in 0..steps {
            let batch = self.dataset.batch(&mut self.rng, BATCH);
            for sample in &batch {
                let mut tape = Tape::new();
                let enc = self.encode(&mut tape, &sample.src);
                let mut tgt_in = vec![BOS];
                tgt_in.extend_from_slice(&sample.tgt);
                let mut targets = sample.tgt.clone();
                targets.push(EOS);
                let logits = self.decode(&mut tape, &tgt_in, enc);
                let loss = tape.cross_entropy(logits, &targets);
                tape.backward(loss);
                for p in self.params_mut() {
                    p.pull_grad(&tape);
                }
            }
            // Take the optimizer out so it can borrow the params mutably.
            let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
            opt.step(&mut self.params_mut());
            self.opt = opt;
        }
    }

    fn evaluate(&mut self, samples: usize) -> f64 {
        let mut eval_rng = StdRng::seed_from_u64(self.eval_seed);
        let eval_set = self.dataset.batch(&mut eval_rng, samples);
        let mut refs = Vec::with_capacity(samples);
        let mut hyps = Vec::with_capacity(samples);
        for s in &eval_set {
            hyps.push(self.greedy_decode(&s.src));
            refs.push(s.tgt.clone());
        }
        corpus_bleu(&refs, &hyps)
    }

    fn reset_optimizer(&mut self) {
        self.opt = Adam::new(2e-3);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in self.all_layers() {
            out.extend(layer.params_mut());
        }
        out
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        for layer in self.all_layers() {
            layer.set_weight_quantizer(quantizer.clone());
        }
    }

    fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>) {
        for linear in self.linears() {
            linear.set_act_quantizer(quantizer.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_produces_tokens_in_vocab() {
        let mut m = MiniTransformer::new(1);
        let out = m.greedy_decode(&[3, 4, 5, 6, 7]);
        assert!(out.len() <= 8);
        assert!(out.iter().all(|&t| t < VOCAB));
    }

    #[test]
    fn one_train_step_reduces_loss_direction() {
        let mut m = MiniTransformer::new(2);
        let before = m.param_count();
        m.train_steps(2);
        assert_eq!(m.param_count(), before);
        // Parameters actually moved.
        let moved = m
            .params_mut()
            .iter()
            .any(|p| p.value.data().iter().any(|&v| v != 0.0));
        assert!(moved);
    }

    #[test]
    fn untrained_bleu_is_low() {
        let mut m = MiniTransformer::new(3);
        let bleu = m.evaluate(10);
        assert!(bleu < 40.0, "untrained BLEU {bleu}");
    }

    #[test]
    fn eval_is_deterministic() {
        let mut m = MiniTransformer::new(4);
        let a = m.evaluate(5);
        let b = m.evaluate(5);
        assert_eq!(a, b);
    }
}
