//! A miniature attention-based LSTM sequence-to-sequence model (the
//! paper's speech-to-text network, scaled to the toy task).
//!
//! Structure mirrors the paper's: a stacked LSTM encoder over feature
//! frames, a single-layer LSTM decoder with dot-product attention over
//! the encoder outputs, and a joint `[hidden, context] → vocab`
//! classifier.

use af_nn::{Adam, Embedding, Layer, Linear, Lstm, NodeId, Optimizer, Param, Quantizer, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::speech::{SpeechDataset, FEAT_DIM, VOCAB};
use crate::data::translation::{BOS, EOS};
use crate::metrics::word_error_rate;
use crate::model::{ModelFamily, QuantizableModel};

const HIDDEN: usize = 32;
const EMB: usize = 16;
const BATCH: usize = 8;

/// The miniature seq2seq model with its task, optimizer, and data stream.
#[derive(Debug)]
pub struct Seq2Seq {
    enc1: Lstm,
    enc2: Lstm,
    dec: Lstm,
    emb: Embedding,
    attn_query: Linear,
    out: Linear,
    opt: Adam,
    dataset: SpeechDataset,
    rng: StdRng,
    eval_seed: u64,
}

impl Seq2Seq {
    /// Build with a training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Seq2Seq {
            enc1: Lstm::new(&mut rng, "enc1", FEAT_DIM, HIDDEN),
            enc2: Lstm::new(&mut rng, "enc2", HIDDEN, HIDDEN),
            dec: Lstm::new(&mut rng, "dec", EMB + HIDDEN, HIDDEN),
            emb: Embedding::new(&mut rng, "dec.emb", VOCAB, EMB),
            attn_query: Linear::new(&mut rng, "attn.q", HIDDEN, HIDDEN),
            out: Linear::new(&mut rng, "out", 2 * HIDDEN, VOCAB),
            opt: Adam::new(2e-3),
            dataset: SpeechDataset::new(),
            rng,
            eval_seed: 0x5E72,
        }
    }

    /// Encode the frame matrix into a `[frames, HIDDEN]` memory node.
    fn encode(&mut self, tape: &mut Tape, frames: &af_tensor::Tensor) -> NodeId {
        let t = frames.rows();
        let frame_nodes: Vec<NodeId> = (0..t)
            .map(|i| {
                tape.input(af_tensor::Tensor::from_vec(
                    frames.row(i).to_vec(),
                    &[1, FEAT_DIM],
                ))
            })
            .collect();
        let init1 = self.enc1.zero_state(tape, 1);
        let (h1, _) = self.enc1.forward_seq(tape, &frame_nodes, init1);
        let init2 = self.enc2.zero_state(tape, 1);
        let (h2, _) = self.enc2.forward_seq(tape, &h1, init2);
        tape.concat_rows(&h2)
    }

    /// One decoder step: previous token + previous context → logits and
    /// the new context.
    fn decode_step(
        &mut self,
        tape: &mut Tape,
        prev_token: usize,
        context: NodeId,
        state: af_nn::LstmState,
        memory: NodeId,
    ) -> (NodeId, NodeId, af_nn::LstmState) {
        let e = self.emb.forward(tape, &[prev_token]);
        let x = tape.concat_cols(&[e, context]);
        let state = self.dec.step(tape, x, state);
        // Dot-product attention: q = Wq·h, scores = q · memoryᵀ.
        let q = self.attn_query.forward(tape, state.h);
        let scores = tape.matmul_t(q, memory);
        let scores = tape.scale(scores, 1.0 / (HIDDEN as f32).sqrt());
        let attn = tape.softmax(scores);
        let new_context = tape.matmul(attn, memory);
        let hc = tape.concat_cols(&[state.h, new_context]);
        let logits = self.out.forward(tape, hc);
        (logits, new_context, state)
    }

    /// Mean teacher-forced cross-entropy on fresh samples (a training
    /// diagnostic: decoding quality should track this loss).
    pub fn teacher_forced_loss(&mut self, samples: usize) -> f32 {
        let mut eval_rng = StdRng::seed_from_u64(self.eval_seed ^ 0xABCD);
        let set = self.dataset.batch(&mut eval_rng, samples);
        let mut total = 0.0f32;
        let mut count = 0usize;
        for sample in &set {
            let mut tape = Tape::new();
            let memory = self.encode(&mut tape, &sample.frames);
            let mut state = self.dec.zero_state(&mut tape, 1);
            let mut context = tape.input(af_tensor::Tensor::zeros(&[1, HIDDEN]));
            let mut prev = BOS;
            let mut targets = sample.tokens.clone();
            targets.push(EOS);
            for &target in &targets {
                let (logits, ctx, st) = self.decode_step(&mut tape, prev, context, state, memory);
                context = ctx;
                state = st;
                let l = tape.cross_entropy(logits, &[target]);
                total += tape.value(l).data()[0];
                count += 1;
                prev = target;
            }
        }
        total / count.max(1) as f32
    }

    /// Greedy transcription of one utterance.
    pub fn greedy_decode(&mut self, frames: &af_tensor::Tensor) -> Vec<usize> {
        let max_out = frames.rows() / 2 + 3;
        let mut tape = Tape::new();
        let memory = self.encode(&mut tape, frames);
        let mut state = self.dec.zero_state(&mut tape, 1);
        let mut context = tape.input(af_tensor::Tensor::zeros(&[1, HIDDEN]));
        let mut prev = BOS;
        let mut out = Vec::new();
        for _ in 0..max_out {
            let (logits, ctx, st) = self.decode_step(&mut tape, prev, context, state, memory);
            context = ctx;
            state = st;
            let next = tape
                .value(logits)
                .row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .unwrap_or(EOS);
            if next == EOS {
                break;
            }
            out.push(next);
            prev = next;
        }
        out
    }

    fn all_layers(&mut self) -> Vec<&mut dyn Layer> {
        vec![
            &mut self.enc1,
            &mut self.enc2,
            &mut self.dec,
            &mut self.emb,
            &mut self.attn_query,
            &mut self.out,
        ]
    }
}

impl QuantizableModel for Seq2Seq {
    fn family(&self) -> ModelFamily {
        ModelFamily::Seq2Seq
    }

    fn train_steps(&mut self, steps: usize) {
        for _ in 0..steps {
            let batch = self.dataset.batch(&mut self.rng, BATCH);
            for sample in &batch {
                let mut tape = Tape::new();
                let memory = self.encode(&mut tape, &sample.frames);
                let mut state = self.dec.zero_state(&mut tape, 1);
                let mut context = tape.input(af_tensor::Tensor::zeros(&[1, HIDDEN]));
                let mut prev = BOS;
                let mut step_losses = Vec::new();
                let mut targets = sample.tokens.clone();
                targets.push(EOS);
                for &target in &targets {
                    let (logits, ctx, st) =
                        self.decode_step(&mut tape, prev, context, state, memory);
                    context = ctx;
                    state = st;
                    step_losses.push(tape.cross_entropy(logits, &[target]));
                    prev = target; // teacher forcing
                }
                // Mean of the per-step scalar losses.
                let mut total = step_losses[0];
                for &l in &step_losses[1..] {
                    total = tape.add(total, l);
                }
                let loss = tape.scale(total, 1.0 / step_losses.len() as f32);
                let loss = tape.sum_all(loss);
                tape.backward(loss);
                for p in self.params_mut() {
                    p.pull_grad(&tape);
                }
            }
            let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
            let mut params = self.params_mut();
            af_nn::clip_grad_norm(&mut params, 5.0);
            opt.step(&mut params);
            drop(params);
            self.opt = opt;
        }
    }

    fn evaluate(&mut self, samples: usize) -> f64 {
        let mut eval_rng = StdRng::seed_from_u64(self.eval_seed);
        let eval_set = self.dataset.batch(&mut eval_rng, samples);
        let mut refs = Vec::with_capacity(samples);
        let mut hyps = Vec::with_capacity(samples);
        for s in &eval_set {
            hyps.push(self.greedy_decode(&s.frames));
            refs.push(s.tokens.clone());
        }
        word_error_rate(&refs, &hyps)
    }

    fn reset_optimizer(&mut self) {
        self.opt = Adam::new(2e-3);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in self.all_layers() {
            out.extend(layer.params_mut());
        }
        out
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        for layer in self.all_layers() {
            layer.set_weight_quantizer(quantizer.clone());
        }
    }

    fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>) {
        self.enc1.gates.set_act_quantizer(quantizer.clone());
        self.enc2.gates.set_act_quantizer(quantizer.clone());
        self.dec.gates.set_act_quantizer(quantizer.clone());
        self.attn_query.set_act_quantizer(quantizer.clone());
        self.out.set_act_quantizer(quantizer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_wer_is_high() {
        let mut m = Seq2Seq::new(1);
        let wer = m.evaluate(8);
        assert!(wer > 50.0, "untrained WER {wer}");
    }

    #[test]
    fn decode_respects_vocab() {
        let mut m = Seq2Seq::new(2);
        let mut rng = StdRng::seed_from_u64(9);
        let s = m.dataset.sample(&mut rng);
        let out = m.greedy_decode(&s.frames);
        assert!(out.iter().all(|&t| t < VOCAB));
    }

    #[test]
    fn training_step_moves_params() {
        let mut m = Seq2Seq::new(3);
        let before: Vec<f32> = m.out.w.value.data().to_vec();
        m.train_steps(1);
        assert_ne!(m.out.w.value.data(), &before[..]);
    }

    #[test]
    fn eval_deterministic() {
        let mut m = Seq2Seq::new(4);
        assert_eq!(m.evaluate(4), m.evaluate(4));
    }
}
