//! Synthetic datasets standing in for WMT'17, LibriSpeech, and ImageNet.

pub mod images;
pub mod speech;
pub mod translation;

pub use images::{ImageDataset, ImageSample};
pub use speech::{SpeechDataset, SpeechSample};
pub use translation::{TranslationDataset, TranslationSample, BOS, EOS, PAD, VOCAB};
