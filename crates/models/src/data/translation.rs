//! Toy machine-translation task (the Transformer's stand-in for WMT'17
//! En→De).
//!
//! The "language pair" is deterministic: the target is the source
//! sequence reversed with every content token cyclically shifted. A
//! sequence model with attention must learn both the token mapping and
//! the reordering — enough structure for BLEU to discriminate between
//! quantization levels.

use rand::Rng;

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;
/// Vocabulary size (specials + 13 content tokens).
pub const VOCAB: usize = 16;

const CONTENT_BASE: usize = 3;
const CONTENT_COUNT: usize = VOCAB - CONTENT_BASE;
const SHIFT: usize = 5;

/// One source/target pair (content tokens only — models add BOS/EOS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslationSample {
    /// Source token ids.
    pub src: Vec<usize>,
    /// Reference translation token ids.
    pub tgt: Vec<usize>,
}

/// Generator for the toy translation task.
#[derive(Debug, Clone, Copy)]
pub struct TranslationDataset {
    min_len: usize,
    max_len: usize,
}

impl Default for TranslationDataset {
    fn default() -> Self {
        Self::new()
    }
}

impl TranslationDataset {
    /// The standard configuration: sequences of 5–8 content tokens.
    pub fn new() -> Self {
        TranslationDataset {
            min_len: 5,
            max_len: 8,
        }
    }

    /// The ground-truth "translation" of a source sequence: reverse and
    /// cyclically shift each content token by 5.
    ///
    /// # Panics
    ///
    /// Panics if `src` contains a special token.
    pub fn translate(src: &[usize]) -> Vec<usize> {
        src.iter()
            .rev()
            .map(|&t| {
                assert!(
                    (CONTENT_BASE..VOCAB).contains(&t),
                    "not a content token: {t}"
                );
                CONTENT_BASE + ((t - CONTENT_BASE) + SHIFT) % CONTENT_COUNT
            })
            .collect()
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TranslationSample {
        let len = rng.gen_range(self.min_len..=self.max_len);
        let src: Vec<usize> = (0..len)
            .map(|_| rng.gen_range(CONTENT_BASE..VOCAB))
            .collect();
        let tgt = Self::translate(&src);
        TranslationSample { src, tgt }
    }

    /// Draw a batch of samples.
    pub fn batch<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<TranslationSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn translation_rule_is_reverse_and_shift() {
        let src = vec![3, 4, 15];
        // reversed: 15, 4, 3 → shifted: 3+((12+5)%13)=3+4=7, 3+((1+5)%13)=9, 3+5=8.
        assert_eq!(TranslationDataset::translate(&src), vec![7, 9, 8]);
    }

    #[test]
    fn translation_is_a_bijection_on_content() {
        let all: Vec<usize> = (CONTENT_BASE..VOCAB).collect();
        let mapped = TranslationDataset::translate(&all);
        let mut sorted = mapped.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, all);
    }

    #[test]
    fn samples_are_well_formed() {
        let ds = TranslationDataset::new();
        let mut rng = StdRng::seed_from_u64(0);
        for s in ds.batch(&mut rng, 50) {
            assert!(s.src.len() >= 5 && s.src.len() <= 8);
            assert_eq!(s.src.len(), s.tgt.len());
            assert!(s.src.iter().all(|&t| (CONTENT_BASE..VOCAB).contains(&t)));
            assert_eq!(s.tgt, TranslationDataset::translate(&s.src));
        }
    }

    #[test]
    #[should_panic(expected = "not a content token")]
    fn specials_rejected() {
        TranslationDataset::translate(&[BOS]);
    }
}
