//! Toy speech-to-text task (the seq2seq model's stand-in for
//! LibriSpeech).
//!
//! Each "phoneme" token has a fixed feature prototype; an utterance emits
//! two noisy frames per token. The attention-based LSTM must segment and
//! classify the frames — transcription quality (WER) degrades gracefully
//! as weights are compressed.

use af_tensor::Tensor;
use rand::Rng;

/// Feature dimension of each frame.
pub const FEAT_DIM: usize = 8;
/// Number of distinct phoneme tokens (ids `3..3+PHONEMES`; 0..2 are
/// PAD/BOS/EOS shared with the translation vocabulary layout).
pub const PHONEMES: usize = 8;
/// Vocabulary size for the decoder (specials + phonemes).
pub const VOCAB: usize = 3 + PHONEMES;
/// Frames emitted per phoneme.
pub const FRAMES_PER_TOKEN: usize = 2;

/// One utterance: a frame matrix and its transcription.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechSample {
    /// Frames, shape `[tokens · FRAMES_PER_TOKEN, FEAT_DIM]`.
    pub frames: Tensor,
    /// Ground-truth token ids (content only).
    pub tokens: Vec<usize>,
}

/// Generator for the toy speech task.
#[derive(Debug, Clone, Copy)]
pub struct SpeechDataset {
    min_len: usize,
    max_len: usize,
    noise: f32,
}

impl Default for SpeechDataset {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeechDataset {
    /// Standard configuration: 4–7 tokens per utterance, noise σ = 0.15.
    pub fn new() -> Self {
        SpeechDataset {
            min_len: 4,
            max_len: 7,
            noise: 0.15,
        }
    }

    /// The deterministic feature prototype of a phoneme (unit-ish vectors
    /// spread around the feature space).
    pub fn prototype(token: usize) -> [f32; FEAT_DIM] {
        let mut proto = [0.0f32; FEAT_DIM];
        for (d, p) in proto.iter_mut().enumerate() {
            let phase = (token * 131 + d * 37) as f32 * 0.61803;
            *p = phase.sin();
        }
        proto
    }

    /// Draw one utterance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SpeechSample {
        let len = rng.gen_range(self.min_len..=self.max_len);
        let tokens: Vec<usize> = (0..len).map(|_| 3 + rng.gen_range(0..PHONEMES)).collect();
        let mut frames = Vec::with_capacity(len * FRAMES_PER_TOKEN * FEAT_DIM);
        for &t in &tokens {
            let proto = Self::prototype(t);
            for _ in 0..FRAMES_PER_TOKEN {
                for &p in &proto {
                    let noise: f32 = rng.gen_range(-1.0..1.0) * self.noise;
                    frames.push(p + noise);
                }
            }
        }
        SpeechSample {
            frames: Tensor::from_vec(frames, &[len * FRAMES_PER_TOKEN, FEAT_DIM]),
            tokens,
        }
    }

    /// Draw a batch of utterances.
    pub fn batch<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<SpeechSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prototypes_are_distinct() {
        for a in 0..PHONEMES {
            for b in (a + 1)..PHONEMES {
                let pa = SpeechDataset::prototype(3 + a);
                let pb = SpeechDataset::prototype(3 + b);
                let dist: f32 = pa
                    .iter()
                    .zip(&pb)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 0.5, "prototypes {a} and {b} too close: {dist}");
            }
        }
    }

    #[test]
    fn frames_near_prototypes() {
        let ds = SpeechDataset::new();
        let mut rng = StdRng::seed_from_u64(0);
        let s = ds.sample(&mut rng);
        assert_eq!(s.frames.rows(), s.tokens.len() * FRAMES_PER_TOKEN);
        assert_eq!(s.frames.cols(), FEAT_DIM);
        for (i, &t) in s.tokens.iter().enumerate() {
            let proto = SpeechDataset::prototype(t);
            let frame = s.frames.row(i * FRAMES_PER_TOKEN);
            for (f, p) in frame.iter().zip(&proto) {
                assert!((f - p).abs() <= 0.15 + 1e-6);
            }
        }
    }

    #[test]
    fn token_range() {
        let ds = SpeechDataset::new();
        let mut rng = StdRng::seed_from_u64(1);
        for s in ds.batch(&mut rng, 20) {
            assert!(s.tokens.iter().all(|&t| (3..VOCAB).contains(&t)));
        }
    }
}
