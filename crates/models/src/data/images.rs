//! Procedural image-classification task (the ResNet's stand-in for
//! ImageNet): ten classes of oriented gratings at different spatial
//! frequencies, with additive noise.

use af_tensor::Tensor;
use rand::Rng;

/// Image side length.
pub const IMG_SIZE: usize = 12;
/// Input channels.
pub const CHANNELS: usize = 1;
/// Number of classes.
pub const CLASSES: usize = 10;

/// One labelled image.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSample {
    /// Pixels, shape `[CHANNELS · IMG_SIZE · IMG_SIZE]` (NCHW order).
    pub pixels: Tensor,
    /// Class label in `0..CLASSES`.
    pub label: usize,
}

/// Generator for the procedural image task.
#[derive(Debug, Clone, Copy)]
pub struct ImageDataset {
    noise: f32,
}

impl Default for ImageDataset {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageDataset {
    /// Standard configuration: noise σ ≈ 0.25.
    pub fn new() -> Self {
        ImageDataset { noise: 0.25 }
    }

    /// The noiseless pattern for a class: classes 0–4 are horizontal
    /// gratings of increasing frequency, 5–9 vertical.
    pub fn pattern(class: usize) -> Tensor {
        assert!(class < CLASSES, "class {class} out of range");
        let freq = (class % 5 + 1) as f32;
        let vertical = class >= 5;
        let mut px = Vec::with_capacity(IMG_SIZE * IMG_SIZE);
        for y in 0..IMG_SIZE {
            for x in 0..IMG_SIZE {
                let coord = if vertical { x } else { y } as f32;
                let v = (2.0 * std::f32::consts::PI * freq * coord / IMG_SIZE as f32).sin();
                px.push(v);
            }
        }
        Tensor::from_vec(px, &[CHANNELS * IMG_SIZE * IMG_SIZE])
    }

    /// Draw one labelled image (random class, random phase jitter, noise).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ImageSample {
        let label = rng.gen_range(0..CLASSES);
        let base = Self::pattern(label);
        let mut pixels = base.clone();
        for p in pixels.data_mut() {
            *p += rng.gen_range(-1.0f32..1.0) * self.noise;
        }
        ImageSample { pixels, label }
    }

    /// Draw a batch, returning a stacked `[n, C·H·W]` tensor and labels.
    pub fn batch<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * CHANNELS * IMG_SIZE * IMG_SIZE);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let s = self.sample(rng);
            data.extend_from_slice(s.pixels.data());
            labels.push(s.label);
        }
        (
            Tensor::from_vec(data, &[n, CHANNELS * IMG_SIZE * IMG_SIZE]),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patterns_are_distinct() {
        for a in 0..CLASSES {
            for b in (a + 1)..CLASSES {
                let pa = ImageDataset::pattern(a);
                let pb = ImageDataset::pattern(b);
                let dist: f32 = pa
                    .data()
                    .iter()
                    .zip(pb.data())
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(dist > 1.0, "classes {a} and {b} too close: {dist}");
            }
        }
    }

    #[test]
    fn batch_shapes() {
        let ds = ImageDataset::new();
        let mut rng = StdRng::seed_from_u64(0);
        let (x, labels) = ds.batch(&mut rng, 7);
        assert_eq!(x.shape(), &[7, CHANNELS * IMG_SIZE * IMG_SIZE]);
        assert_eq!(labels.len(), 7);
        assert!(labels.iter().all(|&l| l < CLASSES));
    }

    #[test]
    fn noise_stays_bounded() {
        let ds = ImageDataset::new();
        let mut rng = StdRng::seed_from_u64(1);
        let s = ds.sample(&mut rng);
        assert!(s.pixels.abs_max() <= 1.0 + 0.25 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_panics() {
        ImageDataset::pattern(10);
    }
}
