//! A miniature residual CNN with batch normalization (the paper's
//! ResNet-50 stand-in).
//!
//! Structure: conv stem → residual block (8 ch, 12×12) → strided
//! downsample (16 ch, 6×6) → residual block → global average pool → FC.
//! Batch norm is the load-bearing component: it is what keeps CNN weight
//! distributions narrow (the paper's Figure 1 contrast).

use af_nn::{Adam, BatchNorm, Conv2d, Layer, Linear, NodeId, Optimizer, Param, Quantizer, Tape};
use af_tensor::Conv2dSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::images::{ImageDataset, CHANNELS, CLASSES, IMG_SIZE};
use crate::metrics::top1_accuracy;
use crate::model::{ModelFamily, QuantizableModel};

const BATCH: usize = 16;

fn spec3(cin: usize, cout: usize, stride: usize) -> Conv2dSpec {
    Conv2dSpec {
        in_channels: cin,
        out_channels: cout,
        kernel: 3,
        stride,
        padding: 1,
    }
}

fn spec1(cin: usize, cout: usize, stride: usize) -> Conv2dSpec {
    Conv2dSpec {
        in_channels: cin,
        out_channels: cout,
        kernel: 1,
        stride,
        padding: 0,
    }
}

/// The miniature ResNet with its task, optimizer, and data stream.
#[derive(Debug)]
pub struct MiniResNet {
    stem: Conv2d,
    stem_bn: BatchNorm,
    b1_conv1: Conv2d,
    b1_bn1: BatchNorm,
    b1_conv2: Conv2d,
    b1_bn2: BatchNorm,
    down: Conv2d,
    down_bn: BatchNorm,
    down_skip: Conv2d,
    b2_conv1: Conv2d,
    b2_bn1: BatchNorm,
    b2_conv2: Conv2d,
    b2_bn2: BatchNorm,
    fc: Linear,
    opt: Adam,
    dataset: ImageDataset,
    rng: StdRng,
    eval_seed: u64,
}

impl MiniResNet {
    /// Build with a training seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        MiniResNet {
            stem: Conv2d::new(&mut rng, "stem", spec3(CHANNELS, 8, 1)),
            stem_bn: BatchNorm::new("stem.bn", 8),
            b1_conv1: Conv2d::new(&mut rng, "b1.conv1", spec3(8, 8, 1)),
            b1_bn1: BatchNorm::new("b1.bn1", 8),
            b1_conv2: Conv2d::new(&mut rng, "b1.conv2", spec3(8, 8, 1)),
            b1_bn2: BatchNorm::new("b1.bn2", 8),
            down: Conv2d::new(&mut rng, "down", spec3(8, 16, 2)),
            down_bn: BatchNorm::new("down.bn", 16),
            down_skip: Conv2d::new(&mut rng, "down.skip", spec1(8, 16, 2)),
            b2_conv1: Conv2d::new(&mut rng, "b2.conv1", spec3(16, 16, 1)),
            b2_bn1: BatchNorm::new("b2.bn1", 16),
            b2_conv2: Conv2d::new(&mut rng, "b2.conv2", spec3(16, 16, 1)),
            b2_bn2: BatchNorm::new("b2.bn2", 16),
            fc: Linear::new(&mut rng, "fc", 16, CLASSES),
            opt: Adam::new(2e-3),
            dataset: ImageDataset::new(),
            rng,
            eval_seed: 0x4E57,
        }
    }

    /// Forward a `[batch, C·H·W]` input to class logits `[batch, 10]`.
    fn forward(&mut self, tape: &mut Tape, x: NodeId, batch: usize) -> NodeId {
        let s = IMG_SIZE;
        // Stem.
        let (y, _, _) = self.stem.forward(tape, x, batch, s, s);
        let y = self.stem_bn.forward(tape, y);
        let y = tape.relu(y); // [batch·144, 8] channels-last
                              // Residual block 1 at 12×12, 8 channels.
        let skip = y;
        let x1 = tape.channels_last_to_nchw(y, batch, s, s, 8);
        let (y, _, _) = self.b1_conv1.forward(tape, x1, batch, s, s);
        let y = self.b1_bn1.forward(tape, y);
        let y = tape.relu(y);
        let x2 = tape.channels_last_to_nchw(y, batch, s, s, 8);
        let (y, _, _) = self.b1_conv2.forward(tape, x2, batch, s, s);
        let y = self.b1_bn2.forward(tape, y);
        let y = tape.add(y, skip);
        let y = tape.relu(y);
        // Downsample to 6×6, 16 channels (strided conv + 1×1 skip).
        let x3 = tape.channels_last_to_nchw(y, batch, s, s, 8);
        let (main, oh, ow) = self.down.forward(tape, x3, batch, s, s);
        let main = self.down_bn.forward(tape, main);
        let (skip16, _, _) = self.down_skip.forward(tape, x3, batch, s, s);
        let y = tape.add(main, skip16);
        let y = tape.relu(y); // [batch·36, 16]
                              // Residual block 2 at 6×6, 16 channels.
        let skip = y;
        let x4 = tape.channels_last_to_nchw(y, batch, oh, ow, 16);
        let (y, _, _) = self.b2_conv1.forward(tape, x4, batch, oh, ow);
        let y = self.b2_bn1.forward(tape, y);
        let y = tape.relu(y);
        let x5 = tape.channels_last_to_nchw(y, batch, oh, ow, 16);
        let (y, _, _) = self.b2_conv2.forward(tape, x5, batch, oh, ow);
        let y = self.b2_bn2.forward(tape, y);
        let y = tape.add(y, skip);
        let y = tape.relu(y);
        // Global average pool over the 36 spatial positions, then FC.
        let pooled = tape.avg_pool_rows(y, oh * ow);
        self.fc.forward(tape, pooled)
    }

    /// Predict labels for a stacked image batch.
    pub fn predict(&mut self, images: &af_tensor::Tensor) -> Vec<usize> {
        let batch = images.rows();
        let mut tape = Tape::new();
        let x = tape.input(images.clone());
        let logits = self.forward(&mut tape, x, batch);
        tape.value(logits).argmax_rows()
    }

    fn all_layers(&mut self) -> Vec<&mut dyn Layer> {
        vec![
            &mut self.stem,
            &mut self.stem_bn,
            &mut self.b1_conv1,
            &mut self.b1_bn1,
            &mut self.b1_conv2,
            &mut self.b1_bn2,
            &mut self.down,
            &mut self.down_bn,
            &mut self.down_skip,
            &mut self.b2_conv1,
            &mut self.b2_bn1,
            &mut self.b2_conv2,
            &mut self.b2_bn2,
            &mut self.fc,
        ]
    }

    fn convs(&mut self) -> Vec<&mut Conv2d> {
        vec![
            &mut self.stem,
            &mut self.b1_conv1,
            &mut self.b1_conv2,
            &mut self.down,
            &mut self.down_skip,
            &mut self.b2_conv1,
            &mut self.b2_conv2,
        ]
    }

    /// Switch batch-norm layers between batch statistics (training) and
    /// frozen running statistics (inference).
    pub fn set_training(&mut self, training: bool) {
        for layer in self.all_layers() {
            layer.set_training(training);
        }
    }
}

impl QuantizableModel for MiniResNet {
    fn family(&self) -> ModelFamily {
        ModelFamily::ResNet
    }

    fn train_steps(&mut self, steps: usize) {
        self.set_training(true);
        for _ in 0..steps {
            let (images, labels) = self.dataset.batch(&mut self.rng, BATCH);
            let mut tape = Tape::new();
            let x = tape.input(images);
            let logits = self.forward(&mut tape, x, BATCH);
            let loss = tape.cross_entropy(logits, &labels);
            tape.backward(loss);
            for p in self.params_mut() {
                p.pull_grad(&tape);
            }
            let mut opt = std::mem::replace(&mut self.opt, Adam::new(0.0));
            opt.step(&mut self.params_mut());
            self.opt = opt;
        }
    }

    fn evaluate(&mut self, samples: usize) -> f64 {
        self.set_training(false);
        let mut eval_rng = StdRng::seed_from_u64(self.eval_seed);
        let (images, labels) = self.dataset.batch(&mut eval_rng, samples);
        let preds = self.predict(&images);
        self.set_training(true);
        top1_accuracy(&labels, &preds)
    }

    fn reset_optimizer(&mut self) {
        self.opt = Adam::new(2e-3);
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        for layer in self.all_layers() {
            out.extend(layer.params_mut());
        }
        out
    }

    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>) {
        for layer in self.all_layers() {
            layer.set_weight_quantizer(quantizer.clone());
        }
    }

    fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>) {
        for conv in self.convs() {
            conv.set_act_quantizer(quantizer.clone());
        }
        self.fc.set_act_quantizer(quantizer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut m = MiniResNet::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        let (images, _) = m.dataset.batch(&mut rng, 4);
        let preds = m.predict(&images);
        assert_eq!(preds.len(), 4);
        assert!(preds.iter().all(|&p| p < CLASSES));
    }

    #[test]
    fn untrained_accuracy_near_chance() {
        let mut m = MiniResNet::new(2);
        let acc = m.evaluate(40);
        assert!(acc < 50.0, "untrained accuracy {acc}");
    }

    #[test]
    fn train_step_moves_weights() {
        let mut m = MiniResNet::new(3);
        let before: Vec<f32> = m.fc.w.value.data().to_vec();
        m.train_steps(1);
        assert_ne!(m.fc.w.value.data(), &before[..]);
    }
}
