//! The [`QuantizableModel`] trait: a uniform handle over the three model
//! families so the experiment harness (Tables 2 and 3) can sweep
//! format × bit-width × {PTQ, QAR} without knowing the architecture.

use adaptivfloat::FormatError;
use af_nn::{Param, QuantSpec, Quantizer};

/// The paper's three evaluation families (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Machine translation, BLEU (higher better). Paper FP32: 27.4.
    Transformer,
    /// Speech-to-text, WER (lower better). Paper FP32: 13.34.
    Seq2Seq,
    /// Image classification, Top-1 (higher better). Paper FP32: 76.2.
    ResNet,
}

impl ModelFamily {
    /// Row label used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Transformer => "Transformer",
            ModelFamily::Seq2Seq => "Seq2Seq",
            ModelFamily::ResNet => "ResNet",
        }
    }

    /// Parse a [`label`](Self::label) back to its family — the inverse
    /// a durable store needs when rebuilding a variant from disk.
    pub fn from_label(label: &str) -> Option<ModelFamily> {
        Some(match label {
            "Transformer" => ModelFamily::Transformer,
            "Seq2Seq" => ModelFamily::Seq2Seq,
            "ResNet" => ModelFamily::ResNet,
            _ => return None,
        })
    }

    /// The metric the paper reports for this family.
    pub fn metric(self) -> &'static str {
        match self {
            ModelFamily::Transformer => "BLEU",
            ModelFamily::Seq2Seq => "WER",
            ModelFamily::ResNet => "Top-1",
        }
    }

    /// Whether larger metric values are better.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, ModelFamily::Seq2Seq)
    }

    /// The FP32 reference the paper reports (for EXPERIMENTS.md
    /// side-by-side tables).
    pub fn paper_fp32(self) -> f64 {
        match self {
            ModelFamily::Transformer => 27.4,
            ModelFamily::Seq2Seq => 13.34,
            ModelFamily::ResNet => 76.2,
        }
    }

    /// The full-model weight range the paper reports (Table 1).
    pub fn paper_weight_range(self) -> (f64, f64) {
        match self {
            ModelFamily::Transformer => (-12.46, 20.41),
            ModelFamily::Seq2Seq => (-2.21, 2.39),
            ModelFamily::ResNet => (-0.78, 1.32),
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A trainable, quantizable model with a task metric.
pub trait QuantizableModel {
    /// Which family this model belongs to.
    fn family(&self) -> ModelFamily;

    /// Run `steps` optimizer steps of training (each step is one
    /// mini-batch).
    fn train_steps(&mut self, steps: usize);

    /// Evaluate the task metric on `samples` held-out samples drawn from
    /// a fixed evaluation seed (deterministic across calls).
    fn evaluate(&mut self, samples: usize) -> f64;

    /// Every trainable parameter, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Install (or clear) a fake-quantizer on all weight matrices
    /// (rank ≥ 2 parameters; biases and norm affines stay FP32, as is
    /// conventional).
    fn set_weight_quantizer(&mut self, quantizer: Option<Quantizer>);

    /// Install (or clear) activation quantizers at every layer output
    /// (ranges come from each layer's running observer).
    fn set_act_quantizer(&mut self, quantizer: Option<Quantizer>);

    /// Post-training quantization: overwrite every weight matrix with its
    /// quantized rendering (Algorithm 1 per tensor).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the spec cannot be built.
    fn quantize_weights_ptq(&mut self, spec: QuantSpec) -> Result<(), FormatError> {
        for p in self.params_mut() {
            if p.value.rank() >= 2 {
                spec.quantize_param(p)?;
            }
        }
        Ok(())
    }

    /// Reset optimizer state (fresh moments) — call after
    /// [`restore`](Self::restore) so a new quantization cell starts from
    /// clean training dynamics.
    fn reset_optimizer(&mut self);

    /// Copy out all parameter values (the FP32 plateau snapshot).
    fn snapshot(&mut self) -> Vec<af_tensor::Tensor> {
        self.params_mut().iter().map(|p| p.value.clone()).collect()
    }

    /// Restore parameter values from a snapshot and zero the gradients.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the parameter list.
    fn restore(&mut self, snapshot: &[af_tensor::Tensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snapshot.len(), "snapshot size mismatch");
        for (p, s) in params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
            p.value = s.clone();
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Concatenated weight-matrix values (for range/statistics reports).
    fn weight_values(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        for p in self.params_mut() {
            if p.value.rank() >= 2 {
                out.extend_from_slice(p.value.data());
            }
        }
        out
    }

    /// Per-layer weight tensors with names (for Figure 4's per-layer RMS).
    fn weight_layers(&mut self) -> Vec<(String, Vec<f32>)> {
        self.params_mut()
            .into_iter()
            .filter(|p| p.value.rank() >= 2)
            .map(|p| (p.name.clone(), p.value.data().to_vec()))
            .collect()
    }
}

/// Quantization-aware retraining: install the fake-quantizer described by
/// `spec` and fine-tune for `steps`. The quantizer stays installed, so a
/// following [`QuantizableModel::evaluate`] measures the quantized model.
///
/// # Errors
///
/// Returns [`FormatError::InvalidBits`] if the spec cannot be built.
pub fn retrain_quantized(
    model: &mut dyn QuantizableModel,
    spec: QuantSpec,
    steps: usize,
) -> Result<(), FormatError> {
    let q = spec.build()?;
    model.set_weight_quantizer(Some(q));
    model.train_steps(steps);
    Ok(())
}

/// Evaluate the model with every weight matrix passed through
/// `transform` (layer index, weight slice in place), then restore the
/// original weights — the hook fault-injection campaigns use to measure
/// end-task damage: the transform encodes the weights into a storage
/// format, corrupts the stored bits, and decodes them back.
///
/// Biases and norm affines (rank < 2) are left untouched, matching
/// [`QuantizableModel::quantize_weights_ptq`]. The layer index counts
/// rank ≥ 2 parameters only, in the model's stable parameter order, so
/// it lines up with [`QuantizableModel::weight_layers`]. With an
/// identity transform the returned metric is bit-identical to a plain
/// [`evaluate`](QuantizableModel::evaluate).
pub fn evaluate_with_weight_transform(
    model: &mut dyn QuantizableModel,
    samples: usize,
    mut transform: impl FnMut(usize, &mut [f32]),
) -> f64 {
    let snapshot = model.snapshot();
    for (layer, p) in model
        .params_mut()
        .into_iter()
        .filter(|p| p.value.rank() >= 2)
        .enumerate()
    {
        transform(layer, p.value.data_mut());
    }
    let metric = model.evaluate(samples);
    model.restore(&snapshot);
    metric
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_transform_eval_restores_and_identity_matches_plain() {
        use crate::resnet::MiniResNet;
        let mut m = MiniResNet::new(11);
        m.train_steps(5);
        let before = m.snapshot();
        let plain = m.evaluate(4);
        // Identity transform: same metric, weights untouched afterwards.
        let identity = evaluate_with_weight_transform(&mut m, 4, |_, _| {});
        assert_eq!(identity.to_bits(), plain.to_bits());
        // Destructive transform: metric may move, weights must come back.
        let _ = evaluate_with_weight_transform(&mut m, 4, |_, w| {
            for v in w.iter_mut() {
                *v = 0.0;
            }
        });
        let after = m.snapshot();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.data(), b.data(), "weights must be restored");
        }
    }

    #[test]
    fn family_metadata_matches_paper_table1() {
        assert_eq!(ModelFamily::Transformer.metric(), "BLEU");
        assert_eq!(ModelFamily::Seq2Seq.metric(), "WER");
        assert!(!ModelFamily::Seq2Seq.higher_is_better());
        assert_eq!(ModelFamily::ResNet.paper_fp32(), 76.2);
        let (lo, hi) = ModelFamily::Transformer.paper_weight_range();
        assert_eq!((lo, hi), (-12.46, 20.41));
    }
}
