//! Table 4: PPA of the 8-bit INT and HFINT accelerators on 100 LSTM
//! timesteps.

use af_hw::{Accelerator, AcceleratorReport, LstmWorkload, PeKind};

use crate::render::TextTable;

/// Table data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// The INT accelerator row.
    pub int: AcceleratorReport,
    /// The HFINT accelerator row.
    pub hfint: AcceleratorReport,
    /// Rendered text.
    pub rendered: String,
}

/// Regenerate Table 4 (4 PEs, K = 16, 8-bit operands).
pub fn run(_quick: bool) -> Table4 {
    let workload = LstmWorkload::paper();
    let int = Accelerator::paper_system(PeKind::Int, 8, 16).run(&workload);
    let hfint = Accelerator::paper_system(PeKind::HfInt, 8, 16).run(&workload);
    let mut table = TextTable::new([
        "accelerator",
        "power (mW)",
        "area (mm²)",
        "time 100 steps (µs)",
        "paper power",
        "paper area",
        "paper time",
    ]);
    table.row([
        format!("4× {} PEs", int.name),
        format!("{:.2}", int.power_mw),
        format!("{:.2}", int.area_mm2),
        format!("{:.1}", int.time_us),
        "61.38".to_string(),
        "6.9".to_string(),
        "81.2".to_string(),
    ]);
    table.row([
        format!("4× {} PEs", hfint.name),
        format!("{:.2}", hfint.power_mw),
        format!("{:.2}", hfint.area_mm2),
        format!("{:.1}", hfint.time_us),
        "56.22".to_string(),
        "7.9".to_string(),
        "81.2".to_string(),
    ]);
    let rendered = format!(
        "Table 4: 8-bit accelerator PPA on 100 LSTM timesteps (256 hidden)\n{}\
         ratios (HFINT/INT): power {:.3}, area {:.3} (paper: 0.92, 1.14)\n",
        table.render(),
        hfint.power_mw / int.power_mw,
        hfint.area_mm2 / int.area_mm2,
    );
    Table4 {
        int,
        hfint,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let t = run(false);
        assert_eq!(t.int.time_us, t.hfint.time_us);
        assert!(t.hfint.power_mw < t.int.power_mw);
        assert!(t.hfint.area_mm2 > t.int.area_mm2);
    }

    #[test]
    fn magnitudes_near_paper() {
        let t = run(false);
        assert!(
            (40.0..160.0).contains(&t.int.power_mw),
            "{}",
            t.int.power_mw
        );
        assert!((3.0..12.0).contains(&t.int.area_mm2), "{}", t.int.area_mm2);
        assert!((60.0..110.0).contains(&t.int.time_us), "{}", t.int.time_us);
    }
}
