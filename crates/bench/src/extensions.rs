//! Extension experiments beyond the paper's tables:
//!
//! 1. **Pruning + AdaptivFloat** — the Deep-Compression combination the
//!    paper's related work points at: magnitude-prune, fine-tune, then
//!    quantize (AdaptivFloat's exact zero stores pruned weights for free).
//! 2. **Exponent-width search** — the search the paper ran to pick e = 3
//!    (AdaptivFloat), 4 (float), es = 1 (posit), reproduced on our
//!    weight ensembles.
//! 3. **Bias granularity** — per-layer (the paper) vs per-block exponent
//!    biases: accuracy/overhead trade-off.
//! 4. **Stochastic rounding** — unbiased rounding as a QAT variant.

use adaptivfloat::search::{search_adaptivfloat_exponent, search_float_exponent, search_posit_es};
use adaptivfloat::{
    rms_error, AdaptivFloat, BlockAdaptivFloat, FormatKind, NumberFormat, QuantStats,
    StochasticRounder,
};
use af_models::ensembles::EnsembleKind;
use af_models::{MiniResNet, QuantizableModel};
use af_nn::{prune_weights, weight_sparsity, QuantSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::render::TextTable;

/// All extension results, rendered.
#[derive(Debug, Clone)]
pub struct Extensions {
    /// (sparsity target, measured sparsity, FP32 acc, 8-bit acc, 4-bit acc).
    pub pruning: Vec<(f64, f64, f64, f64, f64)>,
    /// (format label, word size, best exponent width, mean RMS).
    pub exponent_search: Vec<(String, u32, u32, f64)>,
    /// (granularity label, mean RMS, metadata bits/element).
    pub granularity: Vec<(String, f64, f64)>,
    /// (rounding label, RMS, mean signed error) — stochastic trades a
    /// little RMS for unbiasedness.
    pub rounding: Vec<(String, f64, f64)>,
    /// Rendered text.
    pub rendered: String,
}

/// Run every extension experiment.
pub fn run(quick: bool) -> Extensions {
    let mut out = String::from("Extension experiments\n\n");
    // --- 1. pruning + quantization ---
    let train_steps = if quick { 80 } else { 200 };
    let finetune = if quick { 20 } else { 60 };
    let samples = if quick { 50 } else { 120 };
    let mut pruning = Vec::new();
    let mut t = TextTable::new([
        "sparsity",
        "measured",
        "FP32 Top-1",
        "AdaptivFloat8 Top-1",
        "AdaptivFloat4 Top-1",
    ]);
    for target in [0.0, 0.3, 0.5, 0.7] {
        let mut model = MiniResNet::new(77);
        model.train_steps(train_steps);
        prune_weights(&mut model.params_mut(), target);
        model.train_steps(finetune); // fine-tune around the holes
        prune_weights(&mut model.params_mut(), target); // re-zero after tuning
        let sparsity = weight_sparsity(&model.params_mut());
        let fp32 = model.evaluate(samples);
        let snapshot = model.snapshot();
        let mut at = |bits: u32| {
            model.restore(&snapshot);
            model
                .quantize_weights_ptq(QuantSpec::new(FormatKind::AdaptivFloat, bits))
                .expect("valid spec");
            model.evaluate(samples)
        };
        let a8 = at(8);
        let a4 = at(4);
        t.row([
            format!("{:.0}%", target * 100.0),
            format!("{:.1}%", sparsity * 100.0),
            format!("{fp32:.1}"),
            format!("{a8:.1}"),
            format!("{a4:.1}"),
        ]);
        pruning.push((target, sparsity, fp32, a8, a4));
    }
    out.push_str("1. magnitude pruning + AdaptivFloat PTQ (MiniResNet)\n");
    out.push_str(&t.render());
    out.push('\n');
    // --- 2. exponent-width search ---
    let layer_size = if quick { 512 } else { 4096 };
    let mut rng = StdRng::seed_from_u64(0xE5EA);
    let ensemble = EnsembleKind::Transformer.generate(&mut rng, 12, layer_size);
    let layers: Vec<&[f32]> = ensemble.layers.iter().map(|(_, w)| w.as_slice()).collect();
    let mut exponent_search = Vec::new();
    let mut t = TextTable::new(["format", "bits", "best e / es", "mean RMS"]);
    for bits in [4u32, 8] {
        let af = search_adaptivfloat_exponent(bits, &layers).expect("feasible");
        let fl = search_float_exponent(bits, &layers).expect("feasible");
        let po = search_posit_es(bits, &layers).expect("feasible");
        for (label, r) in [("AdaptivFloat", af), ("Float", fl), ("Posit", po)] {
            t.row([
                label.to_string(),
                bits.to_string(),
                r.best_e.to_string(),
                format!("{:.5}", r.best_rms),
            ]);
            exponent_search.push((label.to_string(), bits, r.best_e, r.best_rms));
        }
    }
    out.push_str("2. exponent-width search (Transformer ensemble)\n");
    out.push_str(&t.render());
    out.push('\n');
    // --- 3. bias granularity ---
    let mut granularity = Vec::new();
    let mut t = TextTable::new(["exp_bias granularity", "mean RMS", "overhead bits/elem"]);
    let per_layer = AdaptivFloat::new(6, 3).expect("valid");
    let mut scratch = vec![0.0f32; layers.iter().map(|w| w.len()).max().unwrap_or(0)];
    let mut mean_rms = |f: &dyn NumberFormat| -> f64 {
        layers
            .iter()
            .map(|w| {
                let dst = &mut scratch[..w.len()];
                f.plan(&QuantStats::from_slice(w)).execute_into(w, dst);
                rms_error(w, dst)
            })
            .sum::<f64>()
            / layers.len() as f64
    };
    let base = mean_rms(&per_layer);
    t.row([
        "per layer (paper)".to_string(),
        format!("{base:.5}"),
        format!("{:.4}", 4.0 / layer_size as f64),
    ]);
    granularity.push(("per layer".to_string(), base, 4.0 / layer_size as f64));
    for block in [256usize, 64, 16] {
        let fmt = BlockAdaptivFloat::new(6, 3, block).expect("valid");
        let rms = mean_rms(&fmt);
        t.row([
            format!("per {block} weights"),
            format!("{rms:.5}"),
            format!("{:.4}", fmt.overhead_bits_per_element()),
        ]);
        granularity.push((
            format!("block {block}"),
            rms,
            fmt.overhead_bits_per_element(),
        ));
    }
    out.push_str("3. exponent-bias granularity (AdaptivFloat<6,3>)\n");
    out.push_str(&t.render());
    out.push('\n');
    // --- 4. stochastic rounding ---
    let fmt = AdaptivFloat::new(6, 3).expect("valid");
    let w = &ensemble.layers[6].1;
    let nearest = fmt.plan(&QuantStats::from_slice(w)).execute(w);
    let mut rounder = StochasticRounder::new(1234);
    let stochastic = fmt.quantize_slice_stochastic(w, &mut rounder);
    let bias = |q: &[f32]| -> f64 {
        w.iter().zip(q).map(|(&a, &b)| (b - a) as f64).sum::<f64>() / w.len() as f64
    };
    let mut rounding = Vec::new();
    let mut t = TextTable::new(["rounding", "RMS", "mean signed error"]);
    for (label, q) in [("nearest (paper)", &nearest), ("stochastic", &stochastic)] {
        let rms = rms_error(w, q);
        let b = bias(q);
        t.row([label.to_string(), format!("{rms:.5}"), format!("{b:+.6}")]);
        rounding.push((label.to_string(), rms, b));
    }
    out.push_str("4. nearest vs stochastic rounding (one wide layer)\n");
    out.push_str(&t.render());
    Extensions {
        pruning,
        exponent_search,
        granularity,
        rounding,
        rendered: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The quick run is expensive (it trains models); share one instance
    /// across the test functions.
    fn shared() -> &'static Extensions {
        static CELL: OnceLock<Extensions> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn pruned_models_still_classify_after_quantization() {
        let e = shared();
        // Up to 50% sparsity the quantized accuracy stays usable.
        for (target, _, _, a8, _) in &e.pruning {
            if *target <= 0.5 {
                assert!(*a8 > 60.0, "sparsity {target}: 8-bit acc {a8}");
            }
        }
        // Sparsity was actually achieved.
        let (_, measured, _, _, _) = e.pruning[2];
        assert!(measured >= 0.45, "measured sparsity {measured}");
    }

    #[test]
    fn search_recovers_paper_exponent_choices() {
        let e = shared();
        // AdaptivFloat prefers ~3 exponent bits at 8-bit words.
        let af8 = e
            .exponent_search
            .iter()
            .find(|(l, b, _, _)| l == "AdaptivFloat" && *b == 8)
            .expect("present");
        assert!((2..=4).contains(&af8.2), "best e {}", af8.2);
        // Posit prefers small es.
        let po8 = e
            .exponent_search
            .iter()
            .find(|(l, b, _, _)| l == "Posit" && *b == 8)
            .expect("present");
        assert!(po8.2 <= 2, "best es {}", po8.2);
    }

    #[test]
    fn per_layer_granularity_is_already_sufficient() {
        // The finding that supports the paper's design choice: on
        // realistic (within-layer homogeneous) weight distributions,
        // finer-than-layer exponent biases buy almost nothing — every
        // granularity lands within ~25% of per-layer RMS while paying
        // more metadata.
        let e = shared();
        let per_layer = e.granularity[0].1;
        for (label, rms, overhead) in &e.granularity[1..] {
            assert!(
                (*rms - per_layer).abs() / per_layer < 0.25,
                "{label}: {rms} vs per-layer {per_layer}"
            );
            assert!(*overhead > e.granularity[0].2, "{label} overhead");
        }
    }

    #[test]
    fn stochastic_rounding_is_less_biased() {
        let e = shared();
        let nearest_bias = e.rounding[0].2.abs();
        let stochastic_bias = e.rounding[1].2.abs();
        // Not guaranteed pointwise, but with 4096 samples it holds
        // comfortably; allow equality for tiny quick runs.
        assert!(
            stochastic_bias <= nearest_bias * 3.0 + 1e-4,
            "stochastic {stochastic_bias} vs nearest {nearest_bias}"
        );
    }
}
