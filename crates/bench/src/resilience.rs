//! Fault sweep: resilience of each storage format under seeded
//! single-bit-flip campaigns, at equal word size.
//!
//! Two sections, both driven by `af-resilience`:
//!
//! * **Storage RMS** — every [`FormatKind`] at 4 and 8 bits (plus an
//!   FP32 row at 32 bits) over a trained toy model's weight tensors,
//!   sweeping the per-word fault rate and comparing
//!   [`DecodePolicy::Raw`] against [`DecodePolicy::Harden`]. The
//!   reported degradation is the RMS damage *above* each format's own
//!   quantization floor.
//! * **End-task** — the same campaigns applied to the live model via
//!   [`af_models::evaluate_with_weight_transform`], reporting the task
//!   metric (Top-1 / BLEU / WER) after corruption, under the hardened
//!   decoder.
//! * **Protected** — SEC-DED protected storage
//!   ([`af_resilience::ProtectedCodes`]) against bare packed codes at
//!   equal *bit-level* BER (the fault map addresses every stored bit,
//!   parity included), reporting the end-task metric alongside the
//!   corrected / detected-uncorrectable counters — the serving story of
//!   this workspace's protected variants, measured end to end.
//!
//! The `fault_sweep` binary prints the rendered tables and writes the
//! structured cells to `BENCH_resilience.json`.

use adaptivfloat::{DecodePolicy, DecodeStats, FormatKind};
use af_models::{evaluate_with_weight_transform, ModelFamily, QuantizableModel};
use af_resilience::rng::mix;
use af_resilience::{
    inject_f32, inject_packed, inject_packed_bits, inject_protected_bits, run_f32_campaign,
    run_weight_campaign, CampaignConfig, CampaignOutcome, FaultKind, FaultSpec, ProtectedCodes,
    StorageCodec, CODEWORD_BITS,
};

use crate::render::TextTable;
use crate::table1::{build, eval_samples, fp32_steps};
use crate::Budget;

/// Campaign seed shared by every cell (layer maps derive from it).
pub const CAMPAIGN_SEED: u64 = 0xFA17;

/// Per-word fault rates swept in the storage section.
pub const STORAGE_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// Fault rates swept in the (more expensive) end-task section.
pub const END_TASK_RATES: [f64; 3] = [0.0, 1e-3, 1e-2];

/// Bit-level BERs swept in the protected-vs-unprotected section.
pub const PROTECTED_BERS: [f64; 4] = [0.0, 1e-4, 1e-3, 5e-3];

/// Formats carried through the protected sweep (the paper's format and
/// the uniform-integer baseline).
pub const PROTECTED_FORMATS: [FormatKind; 2] = [FormatKind::AdaptivFloat, FormatKind::Uniform];

/// One storage-campaign cell: model × format × width × rate × policy.
#[derive(Debug, Clone)]
pub struct StorageCell {
    /// Model whose weight tensors were struck.
    pub model: String,
    /// Format label ("FP32" for the uncoded baseline).
    pub format: String,
    /// Stored word size in bits.
    pub bits: u32,
    /// Per-word fault probability.
    pub rate: f64,
    /// Decode policy applied to the corrupted codes.
    pub policy: DecodePolicy,
    /// Campaign aggregate (elements, faults, RMS, detections).
    pub outcome: CampaignOutcome,
}

/// One end-task cell: the task metric after weight-storage corruption.
#[derive(Debug, Clone)]
pub struct EndTaskCell {
    /// Model evaluated.
    pub model: String,
    /// Task metric name (Top-1 / BLEU / WER).
    pub metric_name: &'static str,
    /// Format label ("FP32" for the uncoded baseline).
    pub format: String,
    /// Stored word size in bits.
    pub bits: u32,
    /// Per-word fault probability.
    pub rate: f64,
    /// The model's uncorrupted FP32 metric (reference).
    pub fp32_metric: f64,
    /// Task metric after corrupt-then-decode of all weight matrices.
    pub metric: f64,
    /// Words struck by the fault maps.
    pub faults_injected: u64,
    /// Corrupted codes the hardened decoder detected and repaired.
    pub repaired: u64,
}

/// One protected-sweep cell: the end-task metric with weight storage
/// struck at a bit-level BER, with and without SEC-DED protection.
#[derive(Debug, Clone)]
pub struct ProtectedCell {
    /// Model evaluated.
    pub model: String,
    /// Task metric name (Top-1 / BLEU / WER).
    pub metric_name: &'static str,
    /// Format label.
    pub format: String,
    /// Stored word size in bits.
    pub bits: u32,
    /// Per-bit fault probability over the raw storage image.
    pub ber: f64,
    /// Whether the codes sat behind SEC-DED parity.
    pub protected: bool,
    /// The model's uncorrupted FP32 metric (reference).
    pub fp32_metric: f64,
    /// Task metric after corrupt-then-decode of all weight matrices.
    pub metric: f64,
    /// Storage bits actually struck by the fault maps.
    pub bits_struck: u64,
    /// Words the SEC-DED read corrected (0 for unprotected cells).
    pub corrected: u64,
    /// Words detected uncorrectable (0 for unprotected cells).
    pub uncorrectable: u64,
}

/// Sweep data plus the rendered tables and the JSON document.
#[derive(Debug, Clone)]
pub struct Resilience {
    /// Storage-RMS cells.
    pub storage: Vec<StorageCell>,
    /// End-task cells.
    pub end_task: Vec<EndTaskCell>,
    /// Protected-vs-unprotected cells.
    pub protected: Vec<ProtectedCell>,
    /// `BENCH_resilience.json` contents.
    pub json: String,
    /// Rendered text tables.
    pub rendered: String,
}

/// Run the storage-RMS campaigns for one model's weight layers.
///
/// `threads` is passed straight into [`CampaignConfig::threads`]; the
/// cells are bit-identical for every setting (covered by a test).
pub fn storage_section(
    model: &str,
    layers: &[Vec<f32>],
    rates: &[f64],
    threads: Option<usize>,
) -> Vec<StorageCell> {
    let mut cells = Vec::new();
    let cfg = |rate: f64, policy: DecodePolicy| CampaignConfig {
        kind: FaultKind::SingleBit,
        rate,
        seed: CAMPAIGN_SEED,
        policy,
        threads,
    };
    for n in [4u32, 8] {
        for format in FormatKind::ALL {
            for &rate in rates {
                for policy in [DecodePolicy::Raw, DecodePolicy::Harden] {
                    let outcome = run_weight_campaign(format, n, layers, &cfg(rate, policy))
                        .expect("paper word sizes are valid for every format");
                    cells.push(StorageCell {
                        model: model.to_string(),
                        format: format.label().to_string(),
                        bits: n,
                        rate,
                        policy,
                        outcome,
                    });
                }
            }
        }
    }
    for &rate in rates {
        for policy in [DecodePolicy::Raw, DecodePolicy::Harden] {
            let outcome = run_f32_campaign(layers, &cfg(rate, policy));
            cells.push(StorageCell {
                model: model.to_string(),
                format: "FP32".to_string(),
                bits: 32,
                rate,
                policy,
                outcome,
            });
        }
    }
    cells
}

/// Evaluate the model with its weight matrices passed through one
/// corrupt-then-decode campaign. `format = None` is the FP32 baseline
/// (faults strike the raw IEEE words). Returns the metric, the number
/// of struck words, and the decoder's detection counters.
fn end_task_metric(
    model: &mut dyn QuantizableModel,
    samples: usize,
    format: Option<FormatKind>,
    n: u32,
    rate: f64,
) -> (f64, u64, DecodeStats) {
    let mut faults = 0u64;
    let mut stats = DecodeStats::new();
    let metric = evaluate_with_weight_transform(model, samples, |layer, w| {
        let spec = FaultSpec {
            kind: FaultKind::SingleBit,
            rate,
            seed: CAMPAIGN_SEED ^ mix(layer as u64),
        };
        match format {
            Some(kind) => {
                let codec = StorageCodec::fit(kind, n, w).expect("valid geometry");
                let mut packed = codec.encode_slice(w);
                let map = spec.sample(w.len(), n);
                faults += inject_packed(&mut packed, &map) as u64;
                let (vals, s) = codec.decode_slice(&packed, DecodePolicy::Harden);
                w.copy_from_slice(&vals);
                stats.merge(&s);
            }
            None => {
                let max_abs = w
                    .iter()
                    .copied()
                    .filter(|v| v.is_finite())
                    .fold(0.0f32, |acc, v| acc.max(v.abs()));
                let map = spec.sample(w.len(), 32);
                faults += inject_f32(w, &map) as u64;
                for v in w.iter_mut() {
                    *v = stats.guard(DecodePolicy::Harden, max_abs, *v);
                }
            }
        }
    });
    (metric, faults, stats)
}

/// Evaluate the model with each weight matrix's packed codes struck at
/// a bit-level BER, either bare or behind SEC-DED parity. The protected
/// arm reads through [`ProtectedCodes::decode`] (the serving read path:
/// single-bit words corrected, uncorrectable words passed through raw);
/// both arms then decode values under the hardened policy. Returns
/// `(metric, bits_struck, corrected, uncorrectable)`.
fn protected_end_task(
    model: &mut dyn QuantizableModel,
    samples: usize,
    kind: FormatKind,
    n: u32,
    ber: f64,
    protected: bool,
) -> (f64, u64, u64, u64) {
    let mut struck = 0u64;
    let mut corrected = 0u64;
    let mut uncorrectable = 0u64;
    let metric = evaluate_with_weight_transform(model, samples, |layer, w| {
        let spec = FaultSpec {
            kind: FaultKind::SingleBit,
            rate: ber,
            seed: CAMPAIGN_SEED ^ mix(layer as u64),
        };
        let codec = StorageCodec::fit(kind, n, w).expect("valid geometry");
        let mut packed = codec.encode_slice(w);
        let snapshot = if protected {
            let mut store = ProtectedCodes::protect(packed);
            let map = spec.sample(store.raw_words() * CODEWORD_BITS as usize, 1);
            struck += inject_protected_bits(&mut store, &map) as u64;
            let (snapshot, report) = store.decode();
            corrected += report.corrected as u64;
            uncorrectable += report.uncorrectable as u64;
            snapshot
        } else {
            let map = spec.sample(packed.len() * n as usize, 1);
            struck += inject_packed_bits(&mut packed, &map) as u64;
            packed
        };
        let (vals, _) = codec.decode_slice(&snapshot, DecodePolicy::Harden);
        w.copy_from_slice(&vals);
    });
    (metric, struck, corrected, uncorrectable)
}

/// Run the full fault sweep. Quick mode trains the ResNet mini only;
/// full mode sweeps all three families.
pub fn run(quick: bool) -> Resilience {
    let budget = Budget::for_mode(quick);
    let families = if quick {
        vec![ModelFamily::ResNet]
    } else {
        vec![
            ModelFamily::Transformer,
            ModelFamily::Seq2Seq,
            ModelFamily::ResNet,
        ]
    };
    let mut storage = Vec::new();
    let mut end_task = Vec::new();
    let mut protected = Vec::new();
    for family in families {
        let mut model = build(family, 42);
        model.train_steps(fp32_steps(&budget, family));
        let samples = eval_samples(&budget, family);
        let fp32_metric = model.evaluate(samples);
        let layers: Vec<Vec<f32>> = model.weight_layers().into_iter().map(|(_, w)| w).collect();
        storage.extend(storage_section(
            family.label(),
            &layers,
            &STORAGE_RATES,
            None,
        ));
        let mut push = |format: String, bits: u32, rate: f64, cell: (f64, u64, DecodeStats)| {
            end_task.push(EndTaskCell {
                model: family.label().to_string(),
                metric_name: family.metric(),
                format,
                bits,
                rate,
                fp32_metric,
                metric: cell.0,
                faults_injected: cell.1,
                repaired: cell.2.repaired(),
            });
        };
        for n in [4u32, 8] {
            for format in FormatKind::ALL {
                for &rate in &END_TASK_RATES {
                    let cell = end_task_metric(model.as_mut(), samples, Some(format), n, rate);
                    push(format.label().to_string(), n, rate, cell);
                }
            }
        }
        for &rate in &END_TASK_RATES {
            let cell = end_task_metric(model.as_mut(), samples, None, 32, rate);
            push("FP32".to_string(), 32, rate, cell);
        }
        for n in [4u32, 8] {
            for kind in PROTECTED_FORMATS {
                for &ber in &PROTECTED_BERS {
                    for prot in [false, true] {
                        let (metric, bits_struck, corrected, uncorrectable) =
                            protected_end_task(model.as_mut(), samples, kind, n, ber, prot);
                        protected.push(ProtectedCell {
                            model: family.label().to_string(),
                            metric_name: family.metric(),
                            format: kind.label().to_string(),
                            bits: n,
                            ber,
                            protected: prot,
                            fp32_metric,
                            metric,
                            bits_struck,
                            corrected,
                            uncorrectable,
                        });
                    }
                }
            }
        }
    }
    let json = render_json(quick, &storage, &end_task, &protected);
    let rendered = render_tables(&storage, &end_task, &protected);
    Resilience {
        storage,
        end_task,
        protected,
        json,
        rendered,
    }
}

fn render_tables(
    storage: &[StorageCell],
    end_task: &[EndTaskCell],
    protected: &[ProtectedCell],
) -> String {
    let mut st = TextTable::new([
        "model",
        "format",
        "bits",
        "rate",
        "policy",
        "faults",
        "clean RMS",
        "faulty RMS",
        "degradation",
        "repaired",
    ]);
    for c in storage {
        st.row([
            c.model.clone(),
            c.format.clone(),
            c.bits.to_string(),
            format!("{:.0e}", c.rate),
            c.policy.label().to_string(),
            c.outcome.faults_injected.to_string(),
            format!("{:.4}", c.outcome.clean_rms),
            format_rms(c.outcome.faulty_rms),
            format_rms(c.outcome.degradation()),
            c.outcome.stats.repaired().to_string(),
        ]);
    }
    let mut et = TextTable::new([
        "model",
        "metric",
        "format",
        "bits",
        "rate",
        "faults",
        "repaired",
        "value",
        "Δ vs FP32",
    ]);
    for c in end_task {
        et.row([
            c.model.clone(),
            c.metric_name.to_string(),
            c.format.clone(),
            c.bits.to_string(),
            format!("{:.0e}", c.rate),
            c.faults_injected.to_string(),
            c.repaired.to_string(),
            format!("{:.2}", c.metric),
            format!("{:+.2}", c.metric - c.fp32_metric),
        ]);
    }
    let mut pt = TextTable::new([
        "model",
        "metric",
        "format",
        "bits",
        "BER",
        "ECC",
        "struck",
        "corrected",
        "uncorr.",
        "value",
        "Δ vs FP32",
    ]);
    for c in protected {
        pt.row([
            c.model.clone(),
            c.metric_name.to_string(),
            c.format.clone(),
            c.bits.to_string(),
            format!("{:.0e}", c.ber),
            if c.protected { "SEC-DED" } else { "none" }.to_string(),
            c.bits_struck.to_string(),
            c.corrected.to_string(),
            c.uncorrectable.to_string(),
            format!("{:.2}", c.metric),
            format!("{:+.2}", c.metric - c.fp32_metric),
        ]);
    }
    format!(
        "Fault sweep A: weight-storage RMS damage vs single-bit fault rate\n\
         (degradation = faulty RMS − the format's own quantization floor)\n{}\n\n\
         Fault sweep B: end-task metric under hardened decode\n{}\n\n\
         Fault sweep C: SEC-DED protected vs bare storage at bit-level BER\n\
         (protected reads correct single-bit words; uncorrectable words pass through raw)\n{}",
        st.render(),
        et.render(),
        pt.render()
    )
}

/// `1e300`-safe JSON number: non-finite values render as `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_json(
    quick: bool,
    storage: &[StorageCell],
    end_task: &[EndTaskCell],
    protected: &[ProtectedCell],
) -> String {
    let st: Vec<String> = storage
        .iter()
        .map(|c| {
            format!(
                "{{\"model\":\"{}\",\"format\":\"{}\",\"bits\":{},\"rate\":{},\"policy\":\"{}\",\
                 \"elements\":{},\"faults_injected\":{},\"clean_rms\":{},\"faulty_rms\":{},\
                 \"degradation\":{},\"detected_nonfinite\":{},\"detected_out_of_range\":{}}}",
                c.model,
                c.format,
                c.bits,
                json_num(c.rate),
                c.policy.label(),
                c.outcome.elements,
                c.outcome.faults_injected,
                json_num(c.outcome.clean_rms),
                json_num(c.outcome.faulty_rms),
                json_num(c.outcome.degradation()),
                c.outcome.stats.nonfinite,
                c.outcome.stats.out_of_range,
            )
        })
        .collect();
    let et: Vec<String> = end_task
        .iter()
        .map(|c| {
            format!(
                "{{\"model\":\"{}\",\"metric\":\"{}\",\"format\":\"{}\",\"bits\":{},\"rate\":{},\
                 \"fp32_metric\":{},\"metric\":{},\"faults_injected\":{},\"repaired\":{}}}",
                c.model,
                c.metric_name,
                c.format,
                c.bits,
                json_num(c.rate),
                json_num(c.fp32_metric),
                json_num(c.metric),
                c.faults_injected,
                c.repaired,
            )
        })
        .collect();
    let pt: Vec<String> = protected
        .iter()
        .map(|c| {
            format!(
                "{{\"model\":\"{}\",\"metric\":\"{}\",\"format\":\"{}\",\"bits\":{},\"ber\":{},\
                 \"protected\":{},\"fp32_metric\":{},\"metric\":{},\"bits_struck\":{},\
                 \"corrected\":{},\"uncorrectable\":{}}}",
                c.model,
                c.metric_name,
                c.format,
                c.bits,
                json_num(c.ber),
                c.protected,
                json_num(c.fp32_metric),
                json_num(c.metric),
                c.bits_struck,
                c.corrected,
                c.uncorrectable,
            )
        })
        .collect();
    format!(
        "{{\n \"bench\": \"fault_sweep\",\n \"mode\": \"{}\",\n \"fault_model\": \"single_bit\",\n \
         \"campaign_seed\": {},\n \"storage\": [\n  {}\n ],\n \"end_task\": [\n  {}\n ],\n \
         \"protected\": [\n  {}\n ]\n}}\n",
        if quick { "quick" } else { "full" },
        CAMPAIGN_SEED,
        st.join(",\n  "),
        et.join(",\n  "),
        pt.join(",\n  "),
    )
}

/// RMS cells can be astronomically large when a raw-policy FP32 bit
/// flip lands in the exponent; keep the table readable.
fn format_rms(v: f64) -> String {
    if v.abs() < 1e4 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Resilience {
        static CELL: OnceLock<Resilience> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn covers_every_format_at_both_word_sizes() {
        let r = shared();
        for section in ["storage", "end_task"] {
            for format in FormatKind::ALL {
                for n in [4u32, 8] {
                    let hit = match section {
                        "storage" => r
                            .storage
                            .iter()
                            .any(|c| c.format == format.label() && c.bits == n),
                        _ => r
                            .end_task
                            .iter()
                            .any(|c| c.format == format.label() && c.bits == n),
                    };
                    assert!(hit, "{section} must cover {format} at n={n}");
                }
            }
        }
        assert!(r.storage.iter().any(|c| c.format == "FP32"));
        assert!(r.end_task.iter().any(|c| c.format == "FP32"));
    }

    #[test]
    fn zero_rate_cells_sit_on_the_quantization_floor() {
        for c in &shared().storage {
            if c.rate == 0.0 {
                assert_eq!(
                    c.outcome.faults_injected, 0,
                    "{}: no faults at rate 0",
                    c.format
                );
                assert_eq!(
                    c.outcome.clean_rms.to_bits(),
                    c.outcome.faulty_rms.to_bits(),
                    "{}: zero-fault campaign must be bit-identical to clean",
                    c.format
                );
            }
        }
    }

    #[test]
    fn hardened_decode_never_loses_to_raw() {
        let r = shared();
        for raw in r.storage.iter().filter(|c| c.policy == DecodePolicy::Raw) {
            let hard = r
                .storage
                .iter()
                .find(|c| {
                    c.policy == DecodePolicy::Harden
                        && c.model == raw.model
                        && c.format == raw.format
                        && c.bits == raw.bits
                        && c.rate == raw.rate
                })
                .expect("paired hardened cell");
            assert!(
                hard.outcome.faulty_rms <= raw.outcome.faulty_rms,
                "{} n={} rate={}: hardening must not increase damage",
                raw.format,
                raw.bits,
                raw.rate
            );
        }
    }

    #[test]
    fn json_document_carries_all_sections() {
        let r = shared();
        assert!(r.json.contains("\"bench\": \"fault_sweep\""));
        assert!(r.json.contains("\"storage\""));
        assert!(r.json.contains("\"end_task\""));
        assert!(r.json.contains("\"degradation\""));
        assert!(r.json.contains("\"protected\""));
        assert!(r.json.contains("\"uncorrectable\""));
        assert!(!r.json.contains("NaN"), "JSON must stay parseable");
        assert!(!r.json.contains("inf"), "JSON must stay parseable");
    }

    #[test]
    fn protected_sweep_pairs_every_cell_and_corrects_under_fault() {
        let r = shared();
        for kind in PROTECTED_FORMATS {
            for n in [4u32, 8] {
                for &ber in &PROTECTED_BERS {
                    for prot in [false, true] {
                        assert!(
                            r.protected.iter().any(|c| c.format == kind.label()
                                && c.bits == n
                                && c.ber == ber
                                && c.protected == prot),
                            "missing protected cell {kind} n={n} ber={ber} prot={prot}"
                        );
                    }
                }
            }
        }
        // Zero-BER arms are identical: protection changes nothing when
        // nothing is struck.
        for c in r.protected.iter().filter(|c| c.ber == 0.0) {
            assert_eq!(c.bits_struck, 0);
            assert_eq!((c.corrected, c.uncorrectable), (0, 0));
            let twin = r
                .protected
                .iter()
                .find(|t| {
                    t.format == c.format
                        && t.bits == c.bits
                        && t.ber == 0.0
                        && t.protected != c.protected
                })
                .expect("paired arm");
            assert_eq!(c.metric.to_bits(), twin.metric.to_bits());
        }
        // At the highest BER the SEC-DED read must actually correct.
        let highest = PROTECTED_BERS[PROTECTED_BERS.len() - 1];
        let hot: Vec<_> = r
            .protected
            .iter()
            .filter(|c| c.protected && c.ber == highest)
            .collect();
        assert!(!hot.is_empty());
        assert!(
            hot.iter().all(|c| c.corrected > 0),
            "a {highest} BER sweep over whole weight tensors must hit correctable words"
        );
        // Unprotected arms never report ECC activity.
        for c in r.protected.iter().filter(|c| !c.protected) {
            assert_eq!((c.corrected, c.uncorrectable), (0, 0));
        }
    }

    #[test]
    fn storage_section_is_thread_count_invariant() {
        let layers: Vec<Vec<f32>> = (0..5)
            .map(|l| {
                (0..2000)
                    .map(|i| (((i * 31 + l * 77) % 199) as f32 - 99.0) * 0.017)
                    .collect()
            })
            .collect();
        let serial = storage_section("synthetic", &layers, &STORAGE_RATES, Some(1));
        let parallel = storage_section("synthetic", &layers, &STORAGE_RATES, Some(8));
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(
                a.outcome.faulty_rms.to_bits(),
                b.outcome.faulty_rms.to_bits(),
                "{} n={} rate={} {}: thread count leaked into the result",
                a.format,
                a.bits,
                a.rate,
                a.policy.label()
            );
            assert_eq!(a.outcome, b.outcome);
        }
    }
}
