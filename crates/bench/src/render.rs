//! Minimal fixed-width text-table rendering for experiment output.

/// A text table builder with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a metric with sensible precision (`inf` for divergent WER).
pub fn metric(v: f64) -> String {
    if !v.is_finite() {
        "inf".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["a", "bbbb"]);
        t.row(["x", "1"]);
        t.row(["long", "2"]);
        let r = t.render();
        assert!(r.contains("a     bbbb"));
        assert!(r.lines().count() == 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn metric_formats() {
        assert_eq!(metric(27.44), "27.4");
        assert_eq!(metric(152.8), "153");
        assert_eq!(metric(f64::INFINITY), "inf");
    }
}
