//! Figure 7: per-operation energy (top) and throughput per unit area
//! (bottom) of the INT and HFINT PEs across MAC vector sizes.

use af_hw::{CostParams, PeConfig, PeKind, PeModel};

use crate::render::TextTable;

/// One point of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// Datapath name (`INT4/16/24` …).
    pub name: String,
    /// PE kind.
    pub kind: PeKind,
    /// Operand width.
    pub n_bits: u32,
    /// MAC vector size.
    pub vector_size: u32,
    /// Per-operation energy in fJ/op.
    pub energy_fj_per_op: f64,
    /// Throughput per datapath area in TOPS/mm².
    pub perf_per_area: f64,
    /// The paper's reported per-op energy for this point.
    pub paper_energy: f64,
    /// The paper's reported perf/area for this point.
    pub paper_perf_area: f64,
}

/// Figure data plus the rendered table.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// All 12 points (2 kinds × 2 widths × 3 vector sizes).
    pub points: Vec<Fig7Point>,
    /// Rendered text table.
    pub rendered: String,
}

/// The paper's reported values, `(kind, n, K) → (fJ/op, TOPS/mm²)`.
pub fn paper_value(kind: PeKind, n: u32, k: u32) -> (f64, f64) {
    match (kind, n, k) {
        (PeKind::Int, 4, 4) => (127.00, 1.31),
        (PeKind::Int, 4, 8) => (59.75, 2.28),
        (PeKind::Int, 4, 16) => (30.36, 3.90),
        (PeKind::HfInt, 4, 4) => (123.12, 1.26),
        (PeKind::HfInt, 4, 8) => (56.39, 2.10),
        (PeKind::HfInt, 4, 16) => (27.77, 3.42),
        (PeKind::Int, 8, 4) => (227.61, 1.11),
        (PeKind::Int, 8, 8) => (105.80, 1.59),
        (PeKind::Int, 8, 16) => (52.21, 2.25),
        (PeKind::HfInt, 8, 4) => (205.27, 1.02),
        (PeKind::HfInt, 8, 8) => (98.38, 1.39),
        (PeKind::HfInt, 8, 16) => (46.88, 1.86),
        _ => panic!("not a Figure 7 point: {kind:?} n={n} K={k}"),
    }
}

/// Regenerate Figure 7.
pub fn run(_quick: bool) -> Fig7 {
    let params = CostParams::finfet16();
    let mut points = Vec::new();
    let mut table = TextTable::new([
        "datapath",
        "K",
        "fJ/op",
        "paper fJ/op",
        "TOPS/mm²",
        "paper TOPS/mm²",
    ]);
    for n in [4u32, 8] {
        for kind in [PeKind::Int, PeKind::HfInt] {
            for k in [4u32, 8, 16] {
                let pe = PeModel::new(kind, PeConfig::paper(n, k), &params);
                let (pe_e, pe_pa) = (pe.energy_per_op_fj(), pe.perf_per_area());
                let (paper_e, paper_pa) = paper_value(kind, n, k);
                table.row([
                    pe.name(),
                    k.to_string(),
                    format!("{pe_e:.2}"),
                    format!("{paper_e:.2}"),
                    format!("{pe_pa:.2}"),
                    format!("{paper_pa:.2}"),
                ]);
                points.push(Fig7Point {
                    name: pe.name(),
                    kind,
                    n_bits: n,
                    vector_size: k,
                    energy_fj_per_op: pe_e,
                    perf_per_area: pe_pa,
                    paper_energy: paper_e,
                    paper_perf_area: paper_pa,
                });
            }
        }
    }
    Fig7 {
        points,
        rendered: format!(
            "Figure 7: per-op energy and perf/area vs MAC vector size\n{}",
            table.render()
        ),
    }
}

impl Fig7 {
    /// Look up one point.
    pub fn point(&self, kind: PeKind, n: u32, k: u32) -> &Fig7Point {
        self.points
            .iter()
            .find(|p| p.kind == kind && p.n_bits == n && p.vector_size == k)
            .expect("point exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hfint_wins_energy_everywhere() {
        let fig = run(false);
        for n in [4, 8] {
            for k in [4, 8, 16] {
                let i = fig.point(PeKind::Int, n, k).energy_fj_per_op;
                let h = fig.point(PeKind::HfInt, n, k).energy_fj_per_op;
                assert!(h <= i * 1.01, "n={n} K={k}: HFINT {h} vs INT {i}");
            }
        }
    }

    #[test]
    fn int_wins_density_everywhere() {
        let fig = run(false);
        for n in [4, 8] {
            for k in [4, 8, 16] {
                let i = fig.point(PeKind::Int, n, k).perf_per_area;
                let h = fig.point(PeKind::HfInt, n, k).perf_per_area;
                assert!(i >= h, "n={n} K={k}: INT {i} vs HFINT {h}");
            }
        }
    }

    #[test]
    fn within_2x_of_paper_everywhere() {
        let fig = run(false);
        for p in &fig.points {
            let re = p.energy_fj_per_op / p.paper_energy;
            let rp = p.perf_per_area / p.paper_perf_area;
            assert!((0.5..2.0).contains(&re), "{}: energy ratio {re}", p.name);
            assert!((0.5..2.0).contains(&rp), "{}: perf/area ratio {rp}", p.name);
        }
    }
}
