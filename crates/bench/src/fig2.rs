//! Figure 2: the zero-assignment trick — a float without denormals has no
//! zero; AdaptivFloat sacrifices ±min to get one.

use adaptivfloat::table::{figure2_comparison, GridComparison};

/// Figure data plus the rendered listing.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// The two grids.
    pub comparison: GridComparison,
    /// Rendered text.
    pub rendered: String,
}

/// Regenerate Figure 2 (the paper draws the `<4,2>` grid at bias −2).
pub fn run(_quick: bool) -> Fig2 {
    let comparison = figure2_comparison(4, 2, -2);
    let mut out = String::from("Figure 2: zero representation in AdaptivFloat\n\n");
    out.push_str(&format!(
        "{:<34}{}\n",
        comparison.left_label, comparison.right_label
    ));
    let pos_left: Vec<f32> = comparison
        .left
        .iter()
        .copied()
        .filter(|&v| v > 0.0)
        .collect();
    let pos_right: Vec<f32> = comparison
        .right
        .iter()
        .copied()
        .filter(|&v| v >= 0.0)
        .collect();
    let rows = pos_left.len().max(pos_right.len());
    for i in 0..rows {
        let l = pos_left.get(i).map(|v| format!("±{v}")).unwrap_or_default();
        let r = pos_right
            .get(i)
            .map(|v| {
                if *v == 0.0 {
                    "±0".to_string()
                } else {
                    format!("±{v}")
                }
            })
            .unwrap_or_default();
        out.push_str(&format!("{l:<34}{r}\n"));
    }
    Fig2 {
        comparison,
        rendered: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_grid_has_zero_left_does_not() {
        let fig = run(false);
        assert!(!fig.comparison.left.contains(&0.0));
        assert!(fig.comparison.right.contains(&0.0));
    }

    #[test]
    fn rendered_shows_both_columns() {
        let fig = run(false);
        assert!(fig.rendered.contains("±0"));
        assert!(fig.rendered.contains("±0.25")); // the sacrificed value
        assert!(fig.rendered.contains("±3"));
    }
}
