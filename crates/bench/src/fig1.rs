//! Figure 1: weight ranges of popular CNN vs NLP models — NLP weights can
//! be more than 10× larger.

use af_models::ensembles::EnsembleKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::render::TextTable;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeBar {
    /// Model label.
    pub model: String,
    /// Whether the model is a batch-norm CNN.
    pub is_cnn: bool,
    /// Minimum weight.
    pub min: f32,
    /// Maximum weight.
    pub max: f32,
}

/// Figure data plus the rendered table.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One bar per model, CNNs first.
    pub bars: Vec<RangeBar>,
    /// Rendered text table.
    pub rendered: String,
}

/// Regenerate Figure 1 from the paper-calibrated weight ensembles.
pub fn run(quick: bool) -> Fig1 {
    let layer_size = if quick { 512 } else { 4096 };
    let mut rng = StdRng::seed_from_u64(0xF161);
    let mut bars = Vec::new();
    for kind in EnsembleKind::ALL {
        let e = kind.generate(&mut rng, 8, layer_size);
        let (min, max) = e.range();
        bars.push(RangeBar {
            model: kind.label().to_string(),
            is_cnn: kind.is_cnn(),
            min,
            max,
        });
    }
    let mut table = TextTable::new(["model", "type", "min", "max", "span bar"]);
    let overall_max = bars
        .iter()
        .map(|b| b.max.abs().max(b.min.abs()))
        .fold(0.0f32, f32::max);
    for b in &bars {
        let lo = ((b.min / overall_max + 1.0) * 20.0).round() as usize;
        let hi = ((b.max / overall_max + 1.0) * 20.0).round() as usize;
        let mut bar = vec![' '; 41];
        for c in bar.iter_mut().take(hi.min(40) + 1).skip(lo.min(40)) {
            *c = '#';
        }
        bar[20] = '|';
        table.row([
            b.model.clone(),
            if b.is_cnn { "CNN" } else { "NLP" }.to_string(),
            format!("{:.2}", b.min),
            format!("{:.2}", b.max),
            bar.into_iter().collect::<String>(),
        ]);
    }
    Fig1 {
        bars,
        rendered: format!("Figure 1: DNN weight value ranges\n{}", table.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Fig1 {
        static CELL: OnceLock<Fig1> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn nlp_more_than_10x_wider() {
        let fig = shared();
        let cnn_max = fig
            .bars
            .iter()
            .filter(|b| b.is_cnn)
            .map(|b| b.max.abs().max(b.min.abs()))
            .fold(0.0f32, f32::max);
        let nlp_max = fig
            .bars
            .iter()
            .filter(|b| !b.is_cnn)
            .map(|b| b.max.abs().max(b.min.abs()))
            .fold(0.0f32, f32::max);
        assert!(nlp_max > 10.0 * cnn_max, "{nlp_max} vs {cnn_max}");
    }

    #[test]
    fn transformer_range_matches_table1() {
        let fig = shared();
        let t = fig.bars.iter().find(|b| b.model == "Transformer").unwrap();
        assert_eq!((t.min, t.max), (-12.46, 20.41));
    }

    #[test]
    fn renders_all_nine_models() {
        let fig = shared();
        assert_eq!(fig.bars.len(), 9);
        assert!(fig.rendered.contains("XLM"));
    }
}
