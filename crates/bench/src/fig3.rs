//! Figure 3: the worked `AdaptivFloat<4,2>` quantization of the paper's
//! 4×4 example matrix.

use adaptivfloat::{AdaptivFloat, NumberFormat, QuantStats};

/// The paper's example matrix.
pub const EXAMPLE: [f32; 16] = [
    -1.17, 2.71, -1.60, 0.43, //
    -1.14, 2.05, 1.01, 0.07, //
    0.16, -0.03, -0.89, -0.87, //
    -0.04, -0.39, 0.64, -2.89,
];

/// Figure data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Derived exponent bias.
    pub exp_bias: i32,
    /// Minimum/maximum representable magnitudes.
    pub value_min: f64,
    /// Maximum representable magnitude.
    pub value_max: f64,
    /// The quantized matrix (row-major).
    pub quantized: Vec<f32>,
    /// Rendered text.
    pub rendered: String,
}

/// Regenerate Figure 3.
pub fn run(_quick: bool) -> Fig3 {
    let fmt = AdaptivFloat::new(4, 2).expect("<4,2> is valid");
    let params = fmt.params_for(&EXAMPLE);
    let quantized = fmt
        .plan(&QuantStats::from_slice(&EXAMPLE))
        .execute(&EXAMPLE);
    let mut out = String::from("Figure 3: AdaptivFloat<4,2> quantization example\n");
    out.push_str(&format!(
        "exp_bias = {}, |min| = {}, |max| = {}\n\n",
        params.exp_bias,
        params.value_min(),
        params.value_max()
    ));
    out.push_str("W_fp (full precision)              W_adaptiv (quantized)\n");
    for r in 0..4 {
        let fp: Vec<String> = (0..4)
            .map(|c| format!("{:>6.2}", EXAMPLE[r * 4 + c]))
            .collect();
        let q: Vec<String> = (0..4)
            .map(|c| format!("{:>6}", crate::render::metric(quantized[r * 4 + c] as f64)))
            .collect();
        out.push_str(&format!("{}    {}\n", fp.join(" "), q.join(" ")));
    }
    Fig3 {
        exp_bias: params.exp_bias,
        value_min: params.value_min(),
        value_max: params.value_max(),
        quantized,
        rendered: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_parameters() {
        let fig = run(false);
        assert_eq!(fig.exp_bias, -2);
        assert_eq!(fig.value_min, 0.375);
        assert_eq!(fig.value_max, 3.0);
    }

    #[test]
    fn matches_paper_quantized_matrix() {
        let fig = run(false);
        #[rustfmt::skip]
        let expected = [
            -1.0, 3.0, -1.5, 0.375,
            -1.0, 2.0, 1.0, 0.0,
            0.0, 0.0, -1.0, -0.75,
            0.0, -0.375, 0.75, -3.0,
        ];
        assert_eq!(fig.quantized, expected);
    }
}
