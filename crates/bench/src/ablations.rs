//! Ablations of the design choices DESIGN.md calls out: exponent-bit
//! split, exponent-bias selection rule, sub-minimum rounding, BFP block
//! size, and the INT PE's scaling-factor width.

use adaptivfloat::{
    rms_error, AdaptivFloat, BlockFloat, NumberFormat, QuantPlan, QuantStats, TensorStats,
};
use af_hw::arith::int_dot_scaled;
use af_models::ensembles::EnsembleKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::render::TextTable;

/// All ablation results, rendered.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// Mean RMS error per exponent-bit choice (n = 8).
    pub exp_bits: Vec<(u32, f64)>,
    /// Mean RMS error per exp_max selection rule.
    pub exp_bias_rule: Vec<(String, f64)>,
    /// Mean RMS error for the sub-minimum halfway rule vs always-zero.
    pub submin: Vec<(String, f64)>,
    /// Mean RMS error per BFP block size.
    pub bfp_block: Vec<(String, f64)>,
    /// INT dequantization |error| per scale-register width.
    pub scale_bits: Vec<(u32, f64)>,
    /// HFINT PE cost vs AdaptivFloat exponent width:
    /// (e, fJ/op, datapath mm²) — more exponent bits mean a narrower
    /// mantissa multiplier but a wider accumulator.
    pub hfint_exp_bits: Vec<(u32, f64, f64)>,
    /// Rendered text.
    pub rendered: String,
}

fn transformer_layers(quick: bool) -> Vec<Vec<f32>> {
    let layer_size = if quick { 512 } else { 4096 };
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    EnsembleKind::Transformer
        .generate(&mut rng, 12, layer_size)
        .layers
        .into_iter()
        .map(|(_, w)| w)
        .collect()
}

fn mean_rms(layers: &[Vec<f32>], quantize: impl Fn(&[f32]) -> Vec<f32>) -> f64 {
    let total: f64 = layers.iter().map(|w| rms_error(w, &quantize(w))).sum();
    total / layers.len() as f64
}

/// Mean per-layer RMS through a per-layer frozen plan, scoring into one
/// scratch buffer (no per-layer allocation).
fn mean_rms_plan(layers: &[Vec<f32>], plan_for: impl Fn(&[f32]) -> QuantPlan) -> f64 {
    let mut scratch = vec![0.0f32; layers.iter().map(|w| w.len()).max().unwrap_or(0)];
    let total: f64 = layers
        .iter()
        .map(|w| {
            let dst = &mut scratch[..w.len()];
            plan_for(w).execute_into(w, dst);
            rms_error(w, dst)
        })
        .sum();
    total / layers.len() as f64
}

/// Run every ablation.
pub fn run(quick: bool) -> Ablations {
    let layers = transformer_layers(quick);
    // 1. Exponent-bit split at n = 8 (paper: e = 3 is best).
    let mut exp_bits = Vec::new();
    for e in 1..=6u32 {
        let fmt = AdaptivFloat::new(8, e).expect("valid");
        exp_bits.push((
            e,
            mean_rms_plan(&layers, |w| fmt.plan(&QuantStats::from_slice(w))),
        ));
    }
    // 2. exp_max from max-abs (Algorithm 1) vs percentile clipping.
    let fmt8 = AdaptivFloat::new(8, 3).expect("valid");
    let mut exp_bias_rule = Vec::new();
    for (name, pct) in [
        ("max-abs (paper)", 100.0),
        ("99.9th percentile", 99.9),
        ("99th percentile", 99.0),
        ("95th percentile", 95.0),
    ] {
        let err = mean_rms_plan(&layers, |w| {
            let clip = TensorStats::abs_percentile(w, pct);
            let max = clip.max(f32::MIN_POSITIVE);
            fmt8.plan(&QuantStats::calibrated_with_len(max, w.len()))
        });
        exp_bias_rule.push((name.to_string(), err));
    }
    // 3. Sub-minimum rounding: halfway to {0, value_min} vs always-zero.
    let mut submin = Vec::new();
    submin.push((
        "halfway rule (paper)".to_string(),
        mean_rms_plan(&layers, |w| fmt8.plan(&QuantStats::from_slice(w))),
    ));
    submin.push((
        "always round to zero".to_string(),
        mean_rms(&layers, |w| {
            let params = fmt8.params_for(w);
            let vmin = params.value_min() as f32;
            w.iter()
                .map(|&v| {
                    if v.abs() < vmin {
                        0.0
                    } else {
                        fmt8.quantize_with(&params, v)
                    }
                })
                .collect()
        }),
    ));
    // 4. BFP block size.
    let mut bfp_block = Vec::new();
    for (name, fmt) in [
        (
            "per-tensor (paper)".to_string(),
            BlockFloat::new(8).expect("valid"),
        ),
        (
            "block 256".to_string(),
            BlockFloat::with_block_size(8, 256).expect("valid"),
        ),
        (
            "block 64".to_string(),
            BlockFloat::with_block_size(8, 64).expect("valid"),
        ),
    ] {
        bfp_block.push((
            name,
            mean_rms_plan(&layers, |w| fmt.plan(&QuantStats::from_slice(w))),
        ));
    }
    // 5. INT scaling-factor width: mean relative dequantization error
    // over many dot products, with the output expressed at a fine unit
    // (2^-8) so the S-bit scale register is the binding constraint.
    let out_unit = (-8f64).exp2();
    let mut scale_bits = Vec::new();
    for s in [4u32, 8, 12, 16, 20] {
        let mut total_rel = 0.0f64;
        let mut count = 0usize;
        for trial in 0..16u64 {
            let wl: Vec<i64> = (0..256)
                .map(|i| ((i * 37 + trial as usize * 11) % 255) as i64 - 127)
                .collect();
            let al: Vec<i64> = (0..256)
                .map(|i| ((i * 53 + trial as usize * 7) % 255) as i64 - 127)
                .collect();
            let scale = 3.17e-4f64 * (1.0 + trial as f64 * 0.13);
            let exact: f64 = wl
                .iter()
                .zip(&al)
                .map(|(&x, &y)| (x * y) as f64)
                .sum::<f64>()
                * scale;
            if exact.abs() < 1e-6 {
                continue;
            }
            let got = int_dot_scaled(&wl, &al, scale / out_unit, s).1 * out_unit;
            total_rel += ((got - exact) / exact).abs();
            count += 1;
        }
        scale_bits.push((s, total_rel / count.max(1) as f64));
    }
    // 6. HFINT PE cost vs exponent width at n = 8, K = 16.
    let hw_params = af_hw::CostParams::finfet16();
    let mut hfint_exp_bits = Vec::new();
    for e in [2u32, 3, 4, 5] {
        let cfg = af_hw::PeConfig {
            n_bits: 8,
            vector_size: 16,
            accum_depth: 256,
            exp_bits: e,
        };
        let pe = af_hw::PeModel::new(af_hw::PeKind::HfInt, cfg, &hw_params);
        hfint_exp_bits.push((e, pe.energy_per_op_fj(), pe.datapath_area_mm2()));
    }
    // Render.
    let mut out = String::from("Ablation studies (Transformer-like weight ensemble)\n\n");
    let mut t1 = TextTable::new(["e (of AdaptivFloat<8,e>)", "mean RMS error"]);
    for (e, err) in &exp_bits {
        t1.row([e.to_string(), format!("{err:.5}")]);
    }
    out.push_str(&t1.render());
    out.push('\n');
    let mut t2 = TextTable::new(["exp_max rule", "mean RMS error"]);
    for (n, err) in &exp_bias_rule {
        t2.row([n.clone(), format!("{err:.5}")]);
    }
    out.push_str(&t2.render());
    out.push('\n');
    let mut t3 = TextTable::new(["sub-minimum rounding", "mean RMS error"]);
    for (n, err) in &submin {
        t3.row([n.clone(), format!("{err:.5}")]);
    }
    out.push_str(&t3.render());
    out.push('\n');
    let mut t4 = TextTable::new(["BFP block size", "mean RMS error"]);
    for (n, err) in &bfp_block {
        t4.row([n.clone(), format!("{err:.5}")]);
    }
    out.push_str(&t4.render());
    out.push('\n');
    let mut t5 = TextTable::new(["scale register bits S", "mean relative dequant error"]);
    for (s, err) in &scale_bits {
        t5.row([s.to_string(), format!("{err:.6}")]);
    }
    out.push_str(&t5.render());
    out.push('\n');
    let mut t6 = TextTable::new(["HFINT8 exponent bits e", "fJ/op", "datapath mm²"]);
    for (e, energy, area) in &hfint_exp_bits {
        t6.row([e.to_string(), format!("{energy:.2}"), format!("{area:.3}")]);
    }
    out.push_str(&t6.render());
    Ablations {
        exp_bits,
        exp_bias_rule,
        submin,
        bfp_block,
        scale_bits,
        hfint_exp_bits,
        rendered: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Ablations {
        static CELL: OnceLock<Ablations> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn three_exponent_bits_near_optimal() {
        // The paper found e = 3 best for AdaptivFloat across models.
        let a = shared();
        let best = a
            .exp_bits
            .iter()
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .expect("nonempty");
        assert!(
            (2..=4).contains(&best.0),
            "best e {} err {}",
            best.0,
            best.1
        );
    }

    #[test]
    fn halfway_rule_beats_always_zero() {
        let a = shared();
        assert!(a.submin[0].1 <= a.submin[1].1);
    }

    #[test]
    fn smaller_bfp_blocks_help() {
        let a = shared();
        // per-tensor ≥ block 256 ≥ block 64 on heavy-tailed weights.
        assert!(a.bfp_block[0].1 >= a.bfp_block[2].1);
    }

    #[test]
    fn hfint_exponent_width_tradeoff() {
        // More exponent bits shrink the mantissa multiplier but widen the
        // accumulator; at n = 8 the energy curve is not monotone and the
        // paper's e = 3 sits near the sweet spot.
        let a = shared();
        assert_eq!(a.hfint_exp_bits.len(), 4);
        let energies: Vec<f64> = a.hfint_exp_bits.iter().map(|x| x.1).collect();
        let best = energies.iter().cloned().fold(f64::INFINITY, f64::min);
        let e3 = a.hfint_exp_bits[1].1;
        assert!(e3 <= best * 1.15, "e=3 energy {e3} vs best {best}");
    }

    #[test]
    fn more_scale_bits_do_not_hurt() {
        let a = shared();
        let first = a.scale_bits.first().expect("nonempty").1;
        let last = a.scale_bits.last().expect("nonempty").1;
        assert!(last <= first);
    }
}
