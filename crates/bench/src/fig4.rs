//! Figure 4: per-layer RMS quantization error of the five formats at
//! 4/6/8-bit across the Transformer, Seq2Seq, and ResNet-50 weight
//! distributions.

use adaptivfloat::{rms_error, FormatKind, QuantStats};
use af_models::ensembles::EnsembleKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::render::TextTable;

/// The five-number summary of one boxplot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum per-layer RMS error.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl BoxStats {
    /// Summarize a set of per-layer errors.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from(values: &mut [f64]) -> Self {
        assert!(!values.is_empty(), "no layers");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        let q = |p: f64| values[((values.len() - 1) as f64 * p).round() as usize];
        BoxStats {
            min: values[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: values[values.len() - 1],
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }
}

/// One boxplot of the figure: (model, format, bits) → per-layer RMS
/// summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Cell {
    /// Model family.
    pub model: EnsembleKind,
    /// Number format.
    pub format: FormatKind,
    /// Word size.
    pub bits: u32,
    /// Boxplot statistics over layers.
    pub stats: BoxStats,
}

/// Figure data plus the rendered table.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// All boxplots.
    pub cells: Vec<Fig4Cell>,
    /// Rendered text table.
    pub rendered: String,
}

/// Regenerate Figure 4 from the weight ensembles.
pub fn run(quick: bool) -> Fig4 {
    let (layers, layer_size) = if quick { (8, 2048) } else { (16, 4096) };
    let mut rng = StdRng::seed_from_u64(0xF164);
    let mut cells = Vec::new();
    let mut table = TextTable::new([
        "model", "bits", "format", "min", "q1", "median", "q3", "max", "mean",
    ]);
    let mut scratch = vec![0.0f32; layer_size];
    for model in EnsembleKind::EVALUATED {
        let ensemble = model.generate(&mut rng, layers, layer_size);
        for bits in [4u32, 6, 8] {
            for format in FormatKind::ALL {
                let fmt = format.build(bits).expect("paper bit widths are valid");
                let mut errs: Vec<f64> = ensemble
                    .layers
                    .iter()
                    .map(|(_, w)| {
                        if scratch.len() < w.len() {
                            scratch.resize(w.len(), 0.0);
                        }
                        let dst = &mut scratch[..w.len()];
                        fmt.plan(&QuantStats::from_slice(w)).execute_into(w, dst);
                        rms_error(w, dst)
                    })
                    .collect();
                let stats = BoxStats::from(&mut errs);
                table.row([
                    model.label().to_string(),
                    bits.to_string(),
                    format.label().to_string(),
                    format!("{:.4}", stats.min),
                    format!("{:.4}", stats.q1),
                    format!("{:.4}", stats.median),
                    format!("{:.4}", stats.q3),
                    format!("{:.4}", stats.max),
                    format!("{:.4}", stats.mean),
                ]);
                cells.push(Fig4Cell {
                    model,
                    format,
                    bits,
                    stats,
                });
            }
        }
    }
    Fig4 {
        cells,
        rendered: format!(
            "Figure 4: per-layer RMS quantization error vs FP32\n{}",
            table.render()
        ),
    }
}

impl Fig4 {
    /// Look up one cell.
    pub fn cell(&self, model: EnsembleKind, format: FormatKind, bits: u32) -> &Fig4Cell {
        self.cells
            .iter()
            .find(|c| c.model == model && c.format == format && c.bits == bits)
            .expect("cell exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Fig4 {
        static CELL: OnceLock<Fig4> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn adaptivfloat_has_lowest_mean_error() {
        // The headline claim of Figure 4.
        let fig = shared();
        for model in EnsembleKind::EVALUATED {
            for bits in [4, 6, 8] {
                let af = fig.cell(model, FormatKind::AdaptivFloat, bits).stats.mean;
                for other in [
                    FormatKind::Float,
                    FormatKind::Bfp,
                    FormatKind::Uniform,
                    FormatKind::Posit,
                ] {
                    let o = fig.cell(model, other, bits).stats.mean;
                    assert!(
                        af <= o * 1.001,
                        "{model} {bits}b: AdaptivFloat {af} vs {other} {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn posit_beats_float_on_wide_distributions() {
        // Among the non-adaptive formats the paper observes posit ahead.
        let fig = shared();
        for bits in [6, 8] {
            let p = fig
                .cell(EnsembleKind::Transformer, FormatKind::Posit, bits)
                .stats
                .mean;
            let f = fig
                .cell(EnsembleKind::Transformer, FormatKind::Float, bits)
                .stats
                .mean;
            assert!(p < f, "{bits}b posit {p} vs float {f}");
        }
    }

    #[test]
    fn error_shrinks_with_bits() {
        let fig = shared();
        for model in EnsembleKind::EVALUATED {
            for format in FormatKind::ALL {
                let e4 = fig.cell(model, format, 4).stats.mean;
                let e8 = fig.cell(model, format, 8).stats.mean;
                assert!(e8 < e4, "{model} {format}: {e8} !< {e4}");
            }
        }
    }

    #[test]
    fn has_45_boxplots() {
        // 3 models × 3 bit widths × 5 formats.
        assert_eq!(shared().cells.len(), 45);
    }
}
