//! Figure 5: the two PE microarchitectures — datapath structure, field
//! widths, and a bit-accuracy demonstration of each.

use adaptivfloat::{AdaptivFloat, NumberFormat, QuantStats, Uniform};
use af_hw::arith::{hfint_dot, int_dot_scaled};
use af_hw::{CostParams, PeConfig, PeKind, PeModel};

/// Figure data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The INT PE model (Figure 5a).
    pub int_pe: PeModel,
    /// The HFINT PE model (Figure 5b).
    pub hfint_pe: PeModel,
    /// Worst-case absolute error of the bit-accurate INT datapath vs the
    /// exact quantized dot product.
    pub int_datapath_error: f64,
    /// Worst-case absolute error of the bit-accurate HFINT datapath
    /// (should be exactly zero: integer accumulation is exact).
    pub hfint_datapath_error: f64,
    /// Rendered text.
    pub rendered: String,
}

/// Regenerate Figure 5: build both 8-bit PEs, print their structural
/// bills of materials, and drive both bit-accurate datapaths on a random
/// dot product.
pub fn run(_quick: bool) -> Fig5 {
    let params = CostParams::finfet16();
    let int_pe = PeModel::new(PeKind::Int, PeConfig::paper(8, 16), &params);
    let hfint_pe = PeModel::new(PeKind::HfInt, PeConfig::paper(8, 16), &params);
    // Bit-accurate drive: H = 256 values.
    let w: Vec<f32> = (0..256)
        .map(|i| ((i * 37 % 97) as f32 - 48.0) * 0.021)
        .collect();
    let a: Vec<f32> = (0..256)
        .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.017)
        .collect();
    // HFINT path.
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let wp = fmt.params_for(&w);
    let ap = fmt.params_for(&a);
    let wq = fmt.plan(&QuantStats::from_slice(&w)).execute(&w);
    let aq = fmt.plan(&QuantStats::from_slice(&a)).execute(&a);
    let exact_hf: f64 = wq.iter().zip(&aq).map(|(&x, &y)| x as f64 * y as f64).sum();
    let wc: Vec<u32> = w.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = a.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    let (_, got_hf) = hfint_dot(&fmt, &wp, &ap, &wc, &ac);
    let hfint_datapath_error = (got_hf - exact_hf).abs();
    // INT path.
    let uni = Uniform::new(8).expect("valid");
    let (sw, wl) = uni.quantize_levels(&w);
    let (sa, al) = uni.quantize_levels(&a);
    let exact_int: f64 = wl
        .iter()
        .zip(&al)
        .map(|(&x, &y)| x as f64 * sw * y as f64 * sa)
        .sum();
    let out_unit = (-10f64).exp2();
    let (got_int_units, _) = int_dot_scaled(&wl, &al, sw * sa / out_unit, 16);
    let int_datapath_error = (got_int_units as f64 * out_unit - exact_int).abs();
    let rendered = format!(
        "Figure 5: PE microarchitectures\n\n\
         (a) {} — NVDLA-like integer PE\n{}\n\
         (b) {} — hybrid float-integer PE\n{}\n\
         bit-accurate drive (256-element dot product):\n\
         INT   datapath |error| = {:.3e} (bounded by the output quantum)\n\
         HFINT datapath |error| = {:.3e} (integer accumulation is exact)\n",
        int_pe.name(),
        int_pe.area_bom().to_table(),
        hfint_pe.name(),
        hfint_pe.area_bom().to_table(),
        int_datapath_error,
        hfint_datapath_error,
    );
    Fig5 {
        int_pe,
        hfint_pe,
        int_datapath_error,
        hfint_datapath_error,
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_datapath_names() {
        let fig = run(false);
        assert_eq!(fig.int_pe.name(), "INT8/24/40");
        assert_eq!(fig.hfint_pe.name(), "HFINT8/30");
    }

    #[test]
    fn hfint_path_is_exact_int_path_is_bounded() {
        let fig = run(false);
        assert!(fig.hfint_datapath_error < 1e-9);
        assert!(fig.int_datapath_error < 2e-3, "{}", fig.int_datapath_error);
    }

    #[test]
    fn boms_mention_key_structures() {
        let fig = run(false);
        assert!(fig.rendered.contains("scaling multiplier"));
        assert!(fig.rendered.contains("mantissa multiplier"));
    }
}
