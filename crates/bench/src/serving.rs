//! Serving load test: drive the `af-serve` endpoint over real TCP and
//! measure throughput and tail latency per format variant and batching
//! configuration.
//!
//! Each cell spins up a fresh [`Engine`] + [`Server`] (over one shared
//! model registry), aims a closed loop of persistent-connection clients
//! at a single variant, and records per-request latency client-side.
//! Percentiles are exact (sorted sample, not a sketch), shed counts come
//! from the engine's own counters, and the first response of every cell
//! is checked bit-for-bit against direct [`FrozenMlp::evaluate`] — a
//! load test that silently served garbage would be worse than none.
//!
//! The `serve_load` binary prints the rendered table and writes the
//! structured cells to `BENCH_serving.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};
use af_serve::{
    Client, ClientError, DurableStore, Engine, EngineConfig, ModelRegistry, Server, VariantSpec,
};
use af_store::SyncPolicy;

use crate::render::TextTable;

/// Layer widths of the served model (Transformer-family ensemble).
pub const DIMS: [usize; 4] = [96, 192, 192, 48];

/// Layer widths of the full run's wide model — large enough that weight
/// streaming (not batching overhead) dominates, where the fused packed
/// GEMM's reduced memory traffic shows.
pub const WIDE_DIMS: [usize; 4] = [256, 512, 512, 128];

/// Synthesis seed for every served variant (same weights pre-PTQ).
pub const MODEL_SEED: u64 = 0x5E12_F00D;

/// One measured cell: variant × batching configuration.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Registry id of the variant driven.
    pub variant: String,
    /// Weight format name.
    pub weight_format: String,
    /// Activation format name (`"-"` for FP32 serving).
    pub act_format: String,
    /// Batch cap of this configuration.
    pub max_batch: usize,
    /// Batch-formation wait of this configuration, microseconds.
    pub max_wait_us: u64,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Requests issued across all connections.
    pub requests: usize,
    /// Requests answered `200`.
    pub completed: u64,
    /// Requests shed (`429`).
    pub shed: u64,
    /// Completed requests per second over the cell's wall time.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Mean live requests per evaluate pass (batching effectiveness).
    pub mean_batch: f64,
    /// Whether the variant serves through the fused packed-weight GEMM.
    pub fused: bool,
    /// Weight bytes the batch path streams per request (packed codes
    /// for fused layers, f32 otherwise).
    pub weight_bytes: usize,
}

/// Durable-store timing: what a restart costs compared to quantizing
/// every variant from the f32 master again.
#[derive(Debug, Clone, Copy)]
pub struct StoreBench {
    /// Variants measured.
    pub variants: usize,
    /// Registering every variant into a fresh durable store (PTQ,
    /// calibration, codebook builds, container writes), microseconds.
    pub cold_register_us: u64,
    /// Reopening the store from its WAL + live containers (the
    /// `kill -9` recovery path), microseconds.
    pub warm_open_wal_us: u64,
    /// Reopening after a checkpoint folded the WAL, microseconds.
    pub warm_open_ckpt_us: u64,
    /// Whether every recovered variant answered bit-identically to its
    /// pre-restart snapshot (the run panics otherwise; recorded for the
    /// JSON consumer).
    pub bit_identical: bool,
}

/// Load-test output: cells, the JSON document, and a rendered table.
#[derive(Debug, Clone)]
pub struct Serving {
    /// One cell per variant × batch configuration.
    pub cells: Vec<ServeCell>,
    /// Durable-store restart timing (`None` in `--packed` mode).
    pub store: Option<StoreBench>,
    /// `BENCH_serving.json` contents.
    pub json: String,
    /// Rendered text table.
    pub rendered: String,
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn variant_specs(quick: bool) -> Vec<VariantSpec> {
    let mut specs = vec![
        VariantSpec::fp32(
            "transformer/fp32",
            ModelFamily::Transformer,
            MODEL_SEED,
            &DIMS,
        ),
        VariantSpec::quantized(
            "transformer/adaptivfloat8",
            ModelFamily::Transformer,
            FormatKind::AdaptivFloat,
            8,
            MODEL_SEED,
            &DIMS,
        ),
    ];
    // The fused twin of adaptivfloat8: same weights, packed codes
    // decoded inside the GEMM — the fused-vs-dequantize comparison pair.
    specs.push(
        VariantSpec::quantized(
            "transformer/adaptivfloat8-fused",
            ModelFamily::Transformer,
            FormatKind::AdaptivFloat,
            8,
            MODEL_SEED,
            &DIMS,
        )
        .fused(),
    );
    if !quick {
        specs.push(VariantSpec::quantized(
            "transformer/uniform8",
            ModelFamily::Transformer,
            FormatKind::Uniform,
            8,
            MODEL_SEED,
            &DIMS,
        ));
        specs.push(
            VariantSpec::quantized(
                "transformer/uniform8-fused",
                ModelFamily::Transformer,
                FormatKind::Uniform,
                8,
                MODEL_SEED,
                &DIMS,
            )
            .fused(),
        );
        specs.push(VariantSpec::quantized(
            "transformer/posit8",
            ModelFamily::Transformer,
            FormatKind::Posit,
            8,
            MODEL_SEED,
            &DIMS,
        ));
        // A wide pair where weight streaming dominates the request cost.
        specs.push(VariantSpec::quantized(
            "transformer/adaptivfloat8-wide",
            ModelFamily::Transformer,
            FormatKind::AdaptivFloat,
            8,
            MODEL_SEED,
            &WIDE_DIMS,
        ));
        specs.push(
            VariantSpec::quantized(
                "transformer/adaptivfloat8-wide-fused",
                ModelFamily::Transformer,
                FormatKind::AdaptivFloat,
                8,
                MODEL_SEED,
                &WIDE_DIMS,
            )
            .fused(),
        );
    }
    specs
}

fn batch_configs(quick: bool) -> Vec<(usize, Duration)> {
    if quick {
        vec![(1, Duration::ZERO), (8, Duration::from_millis(1))]
    } else {
        vec![
            (1, Duration::ZERO),
            (8, Duration::from_millis(1)),
            (32, Duration::from_millis(2)),
        ]
    }
}

/// Drive one variant through one server configuration; returns
/// client-side latencies (µs) and the shed count observed client-side.
fn drive(
    addr: std::net::SocketAddr,
    variant: &str,
    reference: &FrozenMlp,
    connections: usize,
    per_conn: usize,
) -> (Vec<u64>, u64) {
    let handles: Vec<_> = (0..connections)
        .map(|c| {
            let (addr, variant) = (addr, variant.to_string());
            let in_dim = reference.in_dim();
            // One bit-identity probe per cell, on the first connection.
            let expect = if c == 0 {
                let x = FrozenMlp::synth_inputs(1000, 1, in_dim);
                Some((x.row(0).to_vec(), reference.evaluate(x.row(0))))
            } else {
                None
            };
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect load client");
                if let Some((input, want)) = expect {
                    let got = client.infer(&variant, &input).expect("probe request");
                    let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                    let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(got, want, "served output must match direct evaluation");
                }
                let inputs = FrozenMlp::synth_inputs(2000 + c as u64, 16, in_dim);
                let mut latencies = Vec::with_capacity(per_conn);
                let mut shed = 0u64;
                for r in 0..per_conn {
                    let input = inputs.row(r % inputs.rows());
                    let t0 = Instant::now();
                    match client.infer(&variant, input) {
                        Ok(_) => latencies.push(t0.elapsed().as_micros() as u64),
                        Err(ClientError::Http { status: 429, .. }) => shed += 1,
                        Err(e) => panic!("load request failed: {e}"),
                    }
                }
                (latencies, shed)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    for h in handles {
        let (l, s) = h.join().expect("load connection panicked");
        latencies.extend(l);
        shed += s;
    }
    (latencies, shed)
}

/// Measure durable-store restart cost against cold registration: build
/// the quick variant set into a fresh store, then reopen it from the
/// WAL and again from a checkpoint, checking bit-identity both times.
///
/// # Panics
///
/// Panics on store errors or if any recovered variant's outputs differ
/// from its pre-restart snapshot.
pub fn measure_store(quick: bool) -> StoreBench {
    let specs = variant_specs(quick);
    let root = std::env::temp_dir().join(format!("af-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let inputs = FrozenMlp::synth_inputs(41, 1, DIMS[0]);
    let bits = |m: &af_models::FrozenMlp| -> Vec<u32> {
        m.evaluate(inputs.row(0))
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };

    // Cold path: quantize every variant from its f32 master and persist.
    let t0 = Instant::now();
    let opened = DurableStore::open(&root, SyncPolicy::EveryRecord, 0).expect("open store");
    for spec in &specs {
        if spec.dims == WIDE_DIMS {
            continue; // same in_dim needed for the shared probe input
        }
        opened.registry.register(spec).expect("register variant");
    }
    let cold_register_us = t0.elapsed().as_micros() as u64;
    let variants = opened.registry.len();
    let want: Vec<(String, Vec<u32>)> = opened
        .registry
        .ids()
        .iter()
        .map(|id| (id.clone(), bits(&opened.registry.get(id).unwrap().model)))
        .collect();
    drop(opened);

    let verify = |opened: &af_serve::DurableOpen| {
        assert_eq!(opened.registry.len(), variants);
        for (id, row) in &want {
            let v = opened.registry.get(id).expect("recovered variant");
            assert_eq!(&bits(&v.model), row, "{id} must recover bit-identically");
        }
    };

    // Warm path 1: recover from the WAL + live containers (kill -9).
    let t1 = Instant::now();
    let opened = DurableStore::open(&root, SyncPolicy::EveryRecord, 0).expect("reopen store");
    let warm_open_wal_us = t1.elapsed().as_micros() as u64;
    verify(&opened);

    // Warm path 2: recover from a folded checkpoint.
    opened.store.checkpoint().expect("checkpoint");
    drop(opened);
    let t2 = Instant::now();
    let opened = DurableStore::open(&root, SyncPolicy::EveryRecord, 0).expect("reopen checkpoint");
    let warm_open_ckpt_us = t2.elapsed().as_micros() as u64;
    verify(&opened);
    drop(opened);
    let _ = std::fs::remove_dir_all(&root);

    StoreBench {
        variants,
        cold_register_us,
        warm_open_wal_us,
        warm_open_ckpt_us,
        bit_identical: true,
    }
}

/// Run the serving load test. `quick` trims the variant set, batch
/// configurations, and request counts for CI.
///
/// # Panics
///
/// Panics if a variant fails to register, the server fails to bind
/// `127.0.0.1:0`, or a served response is not bit-identical to direct
/// evaluation.
pub fn run(quick: bool) -> Serving {
    let store = measure_store(quick);
    run_with_specs(quick, variant_specs(quick), Some(store))
}

/// The packed-weights comparison: only dequantize-vs-fused twins of the
/// same model, side by side, so the fused GEMM's effect is read off two
/// adjacent rows with everything else equal (`serve_load --packed`).
pub fn run_packed(quick: bool) -> Serving {
    let specs: Vec<VariantSpec> = variant_specs(false)
        .into_iter()
        .filter(|s| {
            s.id.starts_with("transformer/adaptivfloat8") && !(quick && s.id.contains("wide"))
        })
        .collect();
    run_with_specs(quick, specs, None)
}

fn run_with_specs(quick: bool, specs: Vec<VariantSpec>, store: Option<StoreBench>) -> Serving {
    let (connections, per_conn) = if quick { (4, 40) } else { (8, 200) };
    let registry = Arc::new(ModelRegistry::new());
    for spec in &specs {
        registry.register(spec).expect("register variant");
    }

    let mut cells = Vec::new();
    for (max_batch, max_wait) in batch_configs(quick) {
        for spec in &specs {
            let engine = Arc::new(Engine::start(
                Arc::clone(&registry),
                EngineConfig {
                    max_batch,
                    max_wait,
                    ..EngineConfig::default()
                },
            ));
            let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind server");
            let reference = registry.get(&spec.id).expect("registered variant");
            let t0 = Instant::now();
            let (mut latencies, shed_seen) = drive(
                server.addr(),
                &spec.id,
                &reference.model,
                connections,
                per_conn,
            );
            let wall = t0.elapsed().as_secs_f64();
            let snap = engine.stats().snapshot();
            assert_eq!(snap.shed, shed_seen, "server and client shed counts agree");
            latencies.sort_unstable();
            // The probe request is counted in `completed` but not timed.
            cells.push(ServeCell {
                variant: spec.id.clone(),
                weight_format: reference.model.format_name().to_string(),
                act_format: reference
                    .model
                    .act_format_name()
                    .unwrap_or_else(|| "-".to_string()),
                max_batch,
                max_wait_us: max_wait.as_micros() as u64,
                connections,
                requests: connections * per_conn,
                completed: snap.completed,
                shed: snap.shed,
                throughput_rps: snap.completed as f64 / wall.max(1e-9),
                p50_us: percentile(&latencies, 0.50),
                p95_us: percentile(&latencies, 0.95),
                p99_us: percentile(&latencies, 0.99),
                mean_batch: snap.mean_batch(),
                fused: reference.model.fused_layers() > 0,
                weight_bytes: reference.model.weight_bytes(),
            });
            server.shutdown();
            engine.shutdown();
        }
    }

    let json = render_json(quick, connections, per_conn, &cells, store.as_ref());
    let rendered = render_table(&cells);
    Serving {
        cells,
        store,
        json,
        rendered,
    }
}

fn render_json(
    quick: bool,
    connections: usize,
    per_conn: usize,
    cells: &[ServeCell],
    store: Option<&StoreBench>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_load\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"connections\": {connections},\n"));
    out.push_str(&format!("  \"requests_per_connection\": {per_conn},\n"));
    out.push_str(&format!(
        "  \"model\": {{\"family\": \"Transformer\", \"dims\": {:?}, \"seed\": {}}},\n",
        DIMS, MODEL_SEED
    ));
    if let Some(s) = store {
        out.push_str(&format!(
            "  \"store\": {{\"variants\": {}, \"cold_register_us\": {}, \
             \"warm_open_wal_us\": {}, \"warm_open_ckpt_us\": {}, \
             \"bit_identical\": {}}},\n",
            s.variants,
            s.cold_register_us,
            s.warm_open_wal_us,
            s.warm_open_ckpt_us,
            s.bit_identical,
        ));
    }
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"variant\": \"{}\", \"weight_format\": \"{}\", \"act_format\": \"{}\", \
             \"max_batch\": {}, \"max_wait_us\": {}, \"requests\": {}, \"completed\": {}, \
             \"shed\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}, \"mean_batch\": {:.3}, \"fused\": {}, \"weight_bytes\": {}}}{}\n",
            c.variant,
            c.weight_format,
            c.act_format,
            c.max_batch,
            c.max_wait_us,
            c.requests,
            c.completed,
            c.shed,
            c.throughput_rps,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            c.mean_batch,
            c.fused,
            c.weight_bytes,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_table(cells: &[ServeCell]) -> String {
    let mut t = TextTable::new([
        "variant",
        "batch",
        "wait_us",
        "rps",
        "p50_us",
        "p95_us",
        "p99_us",
        "mean_batch",
        "shed",
        "fused",
        "w_kib",
    ]);
    for c in cells {
        t.row([
            c.variant.clone(),
            c.max_batch.to_string(),
            c.max_wait_us.to_string(),
            format!("{:.0}", c.throughput_rps),
            c.p50_us.to_string(),
            c.p95_us.to_string(),
            c.p99_us.to_string(),
            format!("{:.2}", c.mean_batch),
            c.shed.to_string(),
            if c.fused { "yes" } else { "no" }.to_string(),
            format!("{:.0}", c.weight_bytes as f64 / 1024.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_on_small_samples() {
        let s = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 0.50), 60);
        assert_eq!(percentile(&s, 0.95), 100);
        assert_eq!(percentile(&s, 0.0), 10);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn quick_and_full_shapes() {
        assert_eq!(variant_specs(true).len(), 3);
        assert_eq!(variant_specs(false).len(), 8);
        assert_eq!(batch_configs(true).len(), 2);
        assert_eq!(batch_configs(false).len(), 3);
        // Quick mode keeps the fused-vs-dequantize comparison pair.
        assert!(variant_specs(true).iter().any(|s| s.fused));
        assert!(variant_specs(true)
            .iter()
            .any(|s| !s.fused && s.weight_format == Some((FormatKind::AdaptivFloat, 8))));
    }
}
