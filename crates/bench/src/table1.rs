//! Table 1: the models under evaluation — structure, parameter count,
//! weight range, and FP32 task performance.

use adaptivfloat::TensorStats;
use af_models::{MiniResNet, MiniTransformer, ModelFamily, QuantizableModel, Seq2Seq};

use crate::render::{metric, TextTable};
use crate::Budget;

/// Build a fresh model of a family with a fixed seed.
pub fn build(family: ModelFamily, seed: u64) -> Box<dyn QuantizableModel> {
    match family {
        ModelFamily::Transformer => Box::new(MiniTransformer::new(seed)),
        ModelFamily::Seq2Seq => Box::new(Seq2Seq::new(seed)),
        ModelFamily::ResNet => Box::new(MiniResNet::new(seed)),
    }
}

/// The FP32 training budget for a family.
pub fn fp32_steps(budget: &Budget, family: ModelFamily) -> usize {
    match family {
        ModelFamily::Transformer => budget.fp32_steps.0,
        ModelFamily::Seq2Seq => budget.fp32_steps.1,
        ModelFamily::ResNet => budget.fp32_steps.2,
    }
}

/// The QAR fine-tuning budget for a family.
pub fn qar_steps(budget: &Budget, family: ModelFamily) -> usize {
    match family {
        ModelFamily::Transformer => budget.qar_steps.0,
        ModelFamily::Seq2Seq => budget.qar_steps.1,
        ModelFamily::ResNet => budget.qar_steps.2,
    }
}

/// The evaluation set size for a family.
pub fn eval_samples(budget: &Budget, family: ModelFamily) -> usize {
    match family {
        ModelFamily::Transformer => budget.eval_samples.0,
        ModelFamily::Seq2Seq => budget.eval_samples.1,
        ModelFamily::ResNet => budget.eval_samples.2,
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model family.
    pub family: ModelFamily,
    /// Scalar parameter count of the mini model.
    pub parameters: usize,
    /// Weight-matrix value range of the trained mini model.
    pub range: (f32, f32),
    /// FP32 task metric of the trained mini model.
    pub fp32_metric: f64,
}

/// Table data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per family.
    pub rows: Vec<Table1Row>,
    /// Rendered text table.
    pub rendered: String,
}

/// Train the three minis to plateau and report Table 1.
pub fn run(quick: bool) -> Table1 {
    let budget = Budget::for_mode(quick);
    let mut rows = Vec::new();
    let mut table = TextTable::new([
        "model",
        "metric",
        "params (mini)",
        "range (mini)",
        "FP32 (mini)",
        "params (paper)",
        "range (paper)",
        "FP32 (paper)",
    ]);
    for family in [
        ModelFamily::Transformer,
        ModelFamily::Seq2Seq,
        ModelFamily::ResNet,
    ] {
        let mut model = build(family, 42);
        model.train_steps(fp32_steps(&budget, family));
        let weights = model.weight_values();
        let stats = TensorStats::from_slice(&weights);
        let fp32_metric = model.evaluate(eval_samples(&budget, family));
        let (plo, phi) = family.paper_weight_range();
        table.row([
            family.label().to_string(),
            family.metric().to_string(),
            model.param_count().to_string(),
            format!("[{:.2}, {:.2}]", stats.min, stats.max),
            metric(fp32_metric),
            match family {
                ModelFamily::Transformer => "93M",
                ModelFamily::Seq2Seq => "20M",
                ModelFamily::ResNet => "25M",
            }
            .to_string(),
            format!("[{plo}, {phi}]"),
            metric(family.paper_fp32()),
        ]);
        rows.push(Table1Row {
            family,
            parameters: model.param_count(),
            range: (stats.min, stats.max),
            fp32_metric,
        });
    }
    Table1 {
        rows,
        rendered: format!("Table 1: DNN models under evaluation\n{}", table.render()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn shared() -> &'static Table1 {
        static CELL: OnceLock<Table1> = OnceLock::new();
        CELL.get_or_init(|| run(true))
    }

    #[test]
    fn trained_models_hit_usable_fp32_metrics() {
        let t = shared();
        let tf = &t.rows[0];
        let s2s = &t.rows[1];
        let rn = &t.rows[2];
        assert!(tf.fp32_metric > 50.0, "BLEU {}", tf.fp32_metric);
        assert!(s2s.fp32_metric < 80.0, "WER {}", s2s.fp32_metric);
        assert!(rn.fp32_metric > 70.0, "Top-1 {}", rn.fp32_metric);
    }

    #[test]
    fn weight_ranges_are_sane() {
        // The >10× CNN-vs-NLP contrast needs full-scale models (it is
        // asserted on the paper-calibrated ensembles in fig1); here we
        // only require trained minis to report meaningful ranges.
        let t = shared();
        for r in &t.rows {
            assert!(r.range.0 < 0.0 && r.range.1 > 0.0, "{:?}", r.range);
            assert!(r.parameters > 5_000);
        }
    }
}
