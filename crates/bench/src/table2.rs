//! Table 2: impact of weight bit compression — post-training quantization
//! (PTQ) and quantization-aware retraining (QAR) across five formats and
//! six word sizes on the three models.

use adaptivfloat::FormatKind;
use af_models::model::retrain_quantized;
use af_models::ModelFamily;
use af_nn::QuantSpec;

use crate::render::{metric, TextTable};
use crate::table1::{build, eval_samples, fp32_steps, qar_steps};
use crate::Budget;

/// One cell: PTQ and QAR metrics for (family, format, bits).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Cell {
    /// Model family.
    pub family: ModelFamily,
    /// Number format.
    pub format: FormatKind,
    /// Weight word size.
    pub bits: u32,
    /// Metric after post-training quantization.
    pub ptq: f64,
    /// Metric after quantization-aware retraining.
    pub qar: f64,
}

/// Table data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// FP32 reference metric per family.
    pub fp32: Vec<(ModelFamily, f64)>,
    /// All cells.
    pub cells: Vec<Table2Cell>,
    /// Rendered text.
    pub rendered: String,
}

/// The word sizes of the paper's Table 2 (or a subset in quick mode).
pub fn bit_widths(quick: bool) -> Vec<u32> {
    if quick {
        vec![8, 6, 4]
    } else {
        vec![16, 8, 7, 6, 5, 4]
    }
}

/// Families to sweep (quick mode keeps all three — the table is the
/// paper's centerpiece — but on reduced budgets).
pub fn families() -> [ModelFamily; 3] {
    [
        ModelFamily::Transformer,
        ModelFamily::Seq2Seq,
        ModelFamily::ResNet,
    ]
}

/// Regenerate Table 2.
pub fn run(quick: bool) -> Table2 {
    let budget = Budget::for_mode(quick);
    let mut fp32 = Vec::new();
    let mut cells = Vec::new();
    let mut table = TextTable::new([
        "model",
        "#bits",
        "Float",
        "BFP",
        "Uniform",
        "Posit",
        "AdaptivFloat",
    ]);
    for family in families() {
        let mut model = build(family, 42);
        model.train_steps(fp32_steps(&budget, family));
        let samples = eval_samples(&budget, family);
        let baseline = model.evaluate(samples);
        fp32.push((family, baseline));
        let snapshot = model.snapshot();
        for bits in bit_widths(quick) {
            let mut row = vec![format!("{family}"), bits.to_string()];
            for format in FormatKind::ALL {
                let spec = QuantSpec::new(format, bits);
                // PTQ: restore FP32 weights, quantize in place, evaluate.
                model.restore(&snapshot);
                model.reset_optimizer();
                model.set_weight_quantizer(None);
                model.quantize_weights_ptq(spec).expect("valid spec");
                let ptq = model.evaluate(samples);
                // QAR: restore, install fake-quant, fine-tune, evaluate.
                model.restore(&snapshot);
                model.reset_optimizer();
                retrain_quantized(model.as_mut(), spec, qar_steps(&budget, family))
                    .expect("valid spec");
                let qar = model.evaluate(samples);
                model.set_weight_quantizer(None);
                row.push(format!("{} / {}", metric(ptq), metric(qar)));
                cells.push(Table2Cell {
                    family,
                    format,
                    bits,
                    ptq,
                    qar,
                });
            }
            table.row(row);
        }
    }
    let mut rendered =
        String::from("Table 2: weight bit compression, PTQ / QAR (post-training / retrained)\n");
    for (family, v) in &fp32 {
        rendered.push_str(&format!(
            "FP32 {} {} = {}\n",
            family,
            family.metric(),
            metric(*v)
        ));
    }
    rendered.push_str(&table.render());
    Table2 {
        fp32,
        cells,
        rendered,
    }
}

impl Table2 {
    /// Look up one cell.
    pub fn cell(&self, family: ModelFamily, format: FormatKind, bits: u32) -> &Table2Cell {
        self.cells
            .iter()
            .find(|c| c.family == family && c.format == format && c.bits == bits)
            .expect("cell exists")
    }

    /// The FP32 baseline of a family.
    pub fn baseline(&self, family: ModelFamily) -> f64 {
        self.fp32
            .iter()
            .find(|(f, _)| *f == family)
            .map(|(_, v)| *v)
            .expect("family present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Score a metric so higher is always better.
    fn goodness(family: ModelFamily, v: f64) -> f64 {
        if family.higher_is_better() {
            v
        } else {
            -v
        }
    }

    #[test]
    #[ignore = "several minutes of training; run with --ignored"]
    fn adaptivfloat_wins_at_4bit() {
        let t = run(true);
        for family in families() {
            let af = goodness(family, t.cell(family, FormatKind::AdaptivFloat, 4).qar);
            for other in [
                FormatKind::Float,
                FormatKind::Bfp,
                FormatKind::Uniform,
                FormatKind::Posit,
            ] {
                let o = goodness(family, t.cell(family, other, 4).qar);
                assert!(af >= o, "{family}: AdaptivFloat {af} vs {other} {o}");
            }
        }
    }

    #[test]
    fn bit_width_lists() {
        assert_eq!(bit_widths(false).len(), 6);
        assert_eq!(bit_widths(true), vec![8, 6, 4]);
    }
}
