//! # af-bench — the experiment harness
//!
//! One module per table/figure of the paper. Each exposes a `run(quick)`
//! function returning both structured data and a rendered text table, so
//! the same code backs the `src/bin/*` regenerators, the Criterion
//! benches, and the integration tests.
//!
//! `quick = true` scales training steps and evaluation sizes down for CI
//! and benches; `quick = false` is the configuration recorded in
//! EXPERIMENTS.md.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod ablations;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod render;
pub mod resilience;
pub mod serving;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

/// Training/evaluation budgets for the three model families.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// FP32 training steps: (transformer, seq2seq, resnet).
    pub fp32_steps: (usize, usize, usize),
    /// QAR fine-tuning steps: (transformer, seq2seq, resnet).
    pub qar_steps: (usize, usize, usize),
    /// Evaluation set sizes: (transformer, seq2seq, resnet).
    pub eval_samples: (usize, usize, usize),
}

impl Budget {
    /// The full budget recorded in EXPERIMENTS.md.
    pub fn full() -> Self {
        Budget {
            fp32_steps: (400, 1500, 200),
            qar_steps: (120, 400, 60),
            eval_samples: (24, 24, 120),
        }
    }

    /// A scaled-down budget for benches and CI. The FP32 budgets sit just
    /// past each model's convergence knee (the Transformer needs ~250
    /// steps before BLEU takes off; the seq2seq ~800 before WER drops).
    pub fn quick() -> Self {
        Budget {
            fp32_steps: (300, 800, 80),
            qar_steps: (60, 150, 25),
            eval_samples: (12, 12, 50),
        }
    }

    /// Pick by flag.
    pub fn for_mode(quick: bool) -> Self {
        if quick {
            Budget::quick()
        } else {
            Budget::full()
        }
    }
}
