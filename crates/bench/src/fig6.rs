//! Figure 6: the 4-PE + global-buffer accelerator system and its cycle
//! schedule on the LSTM workload.

use af_hw::{Accelerator, LstmWorkload, PeKind};

use crate::render::TextTable;

/// Figure data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Cycles per LSTM timestep for the 8-bit, K=16 system.
    pub cycles_per_timestep: u64,
    /// Compute / broadcast / pipeline split.
    pub breakdown: (u64, u64, u64),
    /// Rendered text.
    pub rendered: String,
}

/// Regenerate Figure 6's system description and schedule.
pub fn run(_quick: bool) -> Fig6 {
    let acc = Accelerator::paper_system(PeKind::HfInt, 8, 16);
    let w = LstmWorkload::paper();
    let compute = w
        .macs_per_timestep()
        .div_ceil(acc.pe().macs_per_cycle() * acc.num_pes() as u64);
    let broadcast = w.hidden as u64;
    let total = acc.cycles_per_timestep(&w);
    let pipeline = total - compute - broadcast;
    let mut table = TextTable::new(["stage", "cycles/timestep", "role"]);
    table.row([
        "PE compute".to_string(),
        compute.to_string(),
        "4 PEs × K² MACs/cycle, weight stationary".to_string(),
    ]);
    table.row([
        "GB collect+broadcast".to_string(),
        broadcast.to_string(),
        "arbitrated crossbar in, streaming bus out".to_string(),
    ]);
    table.row([
        "pipeline fill/drain".to_string(),
        pipeline.to_string(),
        "HLS pipeline latency".to_string(),
    ]);
    let rendered = format!(
        "Figure 6: accelerator system (4 PEs + 1 MB global buffer)\n\
         per-PE weight buffer: {} KB\n{}\ntotal: {} cycles/timestep\n",
        acc.weight_buffer_bytes() / 1024,
        table.render(),
        total
    );
    Fig6 {
        cycles_per_timestep: total,
        breakdown: (compute, broadcast, pipeline),
        rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_decomposes() {
        let fig = run(false);
        let (c, b, p) = fig.breakdown;
        assert_eq!(c + b + p, fig.cycles_per_timestep);
        assert_eq!(c, 512);
        assert_eq!(b, 256);
    }

    #[test]
    fn hundred_timesteps_land_near_paper_time() {
        // Paper: 81.2 µs for 100 timesteps at 1 GHz → 812 cycles/step.
        let fig = run(false);
        assert!(
            (700..900).contains(&(fig.cycles_per_timestep as i64)),
            "{}",
            fig.cycles_per_timestep
        );
    }
}
