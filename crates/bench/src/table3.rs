//! Table 3: joint weight *and* activation quantization (W8/A8, W6/A6,
//! W4/A4), measured after quantization-aware retraining. Activation
//! ranges come from each layer's running observer (offline statistics),
//! as in the paper.

use adaptivfloat::FormatKind;
use af_models::ModelFamily;
use af_nn::QuantSpec;

use crate::render::{metric, TextTable};
use crate::table1::{build, eval_samples, fp32_steps, qar_steps};
use crate::table2::families;
use crate::Budget;

/// One cell: the QAR metric at Wn/An for (family, format).
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Cell {
    /// Model family.
    pub family: ModelFamily,
    /// Number format.
    pub format: FormatKind,
    /// Word size for both weights and activations.
    pub bits: u32,
    /// Metric after QAR with weight+activation quantization.
    pub qar: f64,
}

/// Table data plus the rendered text.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All cells.
    pub cells: Vec<Table3Cell>,
    /// Rendered text.
    pub rendered: String,
}

/// The Wn/An settings of the paper (quick mode drops none — there are
/// only three).
pub fn bit_widths() -> [u32; 3] {
    [8, 6, 4]
}

/// Regenerate Table 3.
pub fn run(quick: bool) -> Table3 {
    let budget = Budget::for_mode(quick);
    let mut cells = Vec::new();
    let mut table = TextTable::new([
        "model",
        "W/A",
        "Float",
        "BFP",
        "Uniform",
        "Posit",
        "AdaptivFloat",
    ]);
    for family in families() {
        let mut model = build(family, 42);
        model.train_steps(fp32_steps(&budget, family));
        let samples = eval_samples(&budget, family);
        let snapshot = model.snapshot();
        for bits in bit_widths() {
            let mut row = vec![format!("{family}"), format!("W{bits}/A{bits}")];
            for format in FormatKind::ALL {
                let spec = QuantSpec::new(format, bits);
                model.restore(&snapshot);
                model.reset_optimizer();
                let quantizer = spec.build().expect("valid spec");
                model.set_weight_quantizer(Some(quantizer.clone()));
                model.set_act_quantizer(Some(quantizer));
                model.train_steps(qar_steps(&budget, family));
                let qar = model.evaluate(samples);
                model.set_weight_quantizer(None);
                model.set_act_quantizer(None);
                row.push(metric(qar));
                cells.push(Table3Cell {
                    family,
                    format,
                    bits,
                    qar,
                });
            }
            table.row(row);
        }
    }
    Table3 {
        cells,
        rendered: format!(
            "Table 3: weight + activation quantization, after QAR\n{}",
            table.render()
        ),
    }
}

impl Table3 {
    /// Look up one cell.
    pub fn cell(&self, family: ModelFamily, format: FormatKind, bits: u32) -> &Table3Cell {
        self.cells
            .iter()
            .find(|c| c.family == family && c.format == format && c.bits == bits)
            .expect("cell exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "several minutes of training; run with --ignored"]
    fn adaptivfloat_w8a8_close_to_baseline() {
        let t = run(true);
        for family in families() {
            let v = t.cell(family, FormatKind::AdaptivFloat, 8).qar;
            match family {
                ModelFamily::Transformer => assert!(v > 60.0, "BLEU {v}"),
                ModelFamily::Seq2Seq => assert!(v < 60.0, "WER {v}"),
                ModelFamily::ResNet => assert!(v > 70.0, "Top-1 {v}"),
            }
        }
    }

    #[test]
    fn three_settings() {
        assert_eq!(bit_widths(), [8, 6, 4]);
    }
}
