//! Regenerate every table and figure of the paper in one run.
//!
//! Usage: `cargo run --release -p af-bench --bin all_experiments [--quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    println!("=== AdaptivFloat reproduction — all experiments ({mode} mode) ===\n");
    let t0 = std::time::Instant::now();
    println!("{}\n", af_bench::fig1::run(quick).rendered);
    println!("{}\n", af_bench::fig2::run(quick).rendered);
    println!("{}\n", af_bench::fig3::run(quick).rendered);
    println!("{}\n", af_bench::fig4::run(quick).rendered);
    println!("{}\n", af_bench::table1::run(quick).rendered);
    println!("{}\n", af_bench::table2::run(quick).rendered);
    println!("{}\n", af_bench::table3::run(quick).rendered);
    println!("{}\n", af_bench::fig5::run(quick).rendered);
    println!("{}\n", af_bench::fig6::run(quick).rendered);
    println!("{}\n", af_bench::fig7::run(quick).rendered);
    println!("{}\n", af_bench::table4::run(quick).rendered);
    println!("{}\n", af_bench::ablations::run(quick).rendered);
    println!("{}\n", af_bench::extensions::run(quick).rendered);
    println!("{}\n", af_bench::resilience::run(quick).rendered);
    println!("total wall-clock: {:.1?} ", t0.elapsed());
}
