//! Regenerate the paper's table4. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::table4::run(quick).rendered);
}
