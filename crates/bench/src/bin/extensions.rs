//! Run the extension experiments (pruning+quantization, exponent search,
//! bias granularity, stochastic rounding). Pass `--quick` to scale down.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::extensions::run(quick).rendered);
}
