//! Regenerate the paper's fig2. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::fig2::run(quick).rendered);
}
