//! Run the serving load test and write `BENCH_serving.json`.
//!
//! Usage: `cargo run --release -p af-bench --bin serve_load
//! [--quick] [--packed] [--out PATH]`
//!
//! `--packed` restricts the run to dequantize-vs-fused twins of the same
//! model (the packed-weights comparison mode).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let packed = args.iter().any(|a| a == "--packed");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());
    let serving = if packed {
        af_bench::serving::run_packed(quick)
    } else {
        af_bench::serving::run(quick)
    };
    println!("{}", serving.rendered);
    if let Some(s) = &serving.store {
        println!(
            "\ndurable store: {} variants, cold register {} us, \
             warm open (wal) {} us, warm open (checkpoint) {} us, bit-identical: {}",
            s.variants,
            s.cold_register_us,
            s.warm_open_wal_us,
            s.warm_open_ckpt_us,
            s.bit_identical
        );
    }
    std::fs::write(&out, &serving.json).expect("write BENCH_serving.json");
    println!("\nwrote {out} ({} cells)", serving.cells.len());
}
