//! Regenerate the paper's table1. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::table1::run(quick).rendered);
}
