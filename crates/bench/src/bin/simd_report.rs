//! Print the process's SIMD capability report as one JSON object —
//! `scripts/bench_snapshot.sh` stamps this into every `BENCH_*.json` so
//! a snapshot records which instruction set produced its numbers.
//!
//! Usage: `cargo run --release -p af-bench --bin simd_report`

fn main() {
    println!("{}", adaptivfloat::simd::report().to_json());
}
