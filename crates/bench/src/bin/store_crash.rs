//! Crash-recovery smoke driver for `scripts/ci.sh`: a tiny serving
//! process backed by the durable store, plus a probe that records what
//! it answers.
//!
//! ```text
//! store_crash serve --root DIR --ready-file PATH   # until killed
//! store_crash probe --addr HOST:PORT --out PATH    # bits + stats
//! ```
//!
//! `serve` opens (or recovers) the store at `--root`, registers the
//! three serving modes on a fresh store (FP32, SEC-DED protected, fused
//! GEMM), starts a TCP server on an ephemeral port, writes the address
//! to `--ready-file`, and parks until killed — `kill -9` is the point.
//! `probe` sends a fixed set of deterministic inputs to every variant
//! and writes one `variant row hexbits…` line each to `--out`, then
//! prints the server's `/stats` JSON to stdout. The harness diffs the
//! probe files from before and after the kill: they must be
//! byte-identical.

use std::sync::Arc;
use std::time::Duration;

use adaptivfloat::FormatKind;
use af_models::{FrozenMlp, ModelFamily};
use af_serve::{Client, DurableStore, Engine, EngineConfig, Server, VariantSpec};
use af_store::SyncPolicy;

const DIMS: [usize; 3] = [24, 48, 12];
const SEED: u64 = 0xC4A5_4001;
const VARIANTS: [&str; 3] = ["crash/fp32", "crash/protected", "crash/fused"];
const PROBE_ROWS: usize = 4;
const PROBE_SEED: u64 = 777;

fn specs() -> Vec<VariantSpec> {
    vec![
        VariantSpec::fp32(VARIANTS[0], ModelFamily::ResNet, SEED, &DIMS),
        VariantSpec::quantized(
            VARIANTS[1],
            ModelFamily::ResNet,
            FormatKind::AdaptivFloat,
            8,
            SEED,
            &DIMS,
        )
        .protected(),
        VariantSpec::quantized(
            VARIANTS[2],
            ModelFamily::Transformer,
            FormatKind::AdaptivFloat,
            8,
            SEED ^ 1,
            &DIMS,
        )
        .fused(),
    ]
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn serve(args: &[String]) {
    let root = arg(args, "--root").expect("serve needs --root DIR");
    let ready = arg(args, "--ready-file").expect("serve needs --ready-file PATH");
    let opened = DurableStore::open(root.as_ref(), SyncPolicy::EveryRecord, 0)
        .unwrap_or_else(|e| panic!("store open failed ({}): {e}", e.kind()));
    eprintln!(
        "store_crash: recovered {} variants ({} WAL records, {} torn bytes, {} us)",
        opened.report.recovered_variants,
        opened.report.wal_records_replayed,
        opened.report.torn_tail_bytes_dropped,
        opened.report.recovery_us,
    );
    if opened.registry.is_empty() {
        for spec in specs() {
            opened.registry.register(&spec).expect("register variant");
        }
        eprintln!(
            "store_crash: fresh store, registered {} variants",
            VARIANTS.len()
        );
    }
    let engine = Arc::new(Engine::start(
        Arc::clone(&opened.registry),
        EngineConfig::default(),
    ));
    engine.attach_store(Arc::clone(&opened.store));
    let server = Server::bind("127.0.0.1:0", engine).expect("bind server");
    // Written last: the harness polls this file to know the port.
    std::fs::write(&ready, format!("{}\n", server.addr())).expect("write ready file");
    eprintln!("store_crash: serving on {}", server.addr());
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn probe(args: &[String]) {
    let addr = arg(args, "--addr").expect("probe needs --addr HOST:PORT");
    let out = arg(args, "--out").expect("probe needs --out PATH");
    let addr: std::net::SocketAddr = addr.trim().parse().expect("parse server address");
    let mut client = Client::connect(addr).expect("connect to server");
    let inputs = FrozenMlp::synth_inputs(PROBE_SEED, PROBE_ROWS, DIMS[0]);
    let mut lines = String::new();
    for variant in VARIANTS {
        for r in 0..PROBE_ROWS {
            let y = client
                .infer(variant, inputs.row(r))
                .unwrap_or_else(|e| panic!("probe {variant} row {r} failed: {e}"));
            lines.push_str(&format!("{variant} {r}"));
            for v in &y {
                lines.push_str(&format!(" {:08x}", v.to_bits()));
            }
            lines.push('\n');
        }
    }
    std::fs::write(&out, &lines).expect("write probe file");
    // Stats go to stdout for the harness's store-counter assertions.
    print!("{}", client.stats_json().expect("fetch /stats"));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args),
        Some("probe") => probe(&args),
        _ => {
            eprintln!(
                "usage: store_crash serve --root DIR --ready-file PATH\n\
                 \x20      store_crash probe --addr HOST:PORT --out PATH"
            );
            std::process::exit(2);
        }
    }
}
