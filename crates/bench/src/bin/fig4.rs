//! Regenerate the paper's fig4. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::fig4::run(quick).rendered);
}
