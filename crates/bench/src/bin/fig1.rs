//! Regenerate the paper's fig1. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::fig1::run(quick).rendered);
}
