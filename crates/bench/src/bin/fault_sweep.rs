//! Run the fault-injection sweep and write `BENCH_resilience.json`.
//!
//! Usage: `cargo run --release -p af-bench --bin fault_sweep [--quick] [--out PATH]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_resilience.json".to_string());
    let sweep = af_bench::resilience::run(quick);
    println!("{}", sweep.rendered);
    std::fs::write(&out, &sweep.json).expect("write BENCH_resilience.json");
    println!(
        "\nwrote {out} ({} storage cells, {} end-task cells, {} protected cells)",
        sweep.storage.len(),
        sweep.end_task.len(),
        sweep.protected.len()
    );
}
