//! Regenerate the paper's table2. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::table2::run(quick).rendered);
}
