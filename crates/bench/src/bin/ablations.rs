//! Regenerate the paper's ablations. Pass `--quick` for the scaled-down run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{}", af_bench::ablations::run(quick).rendered);
}
