//! Table 4 bench: prints the accelerator PPA rollup, then times the workload run.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::table4::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("table4/accelerator_run", |b| {
        b.iter(|| std::hint::black_box(af_bench::table4::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
