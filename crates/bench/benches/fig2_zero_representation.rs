//! Figure 2 bench: prints the zero-representation grids, then times the representable-value enumeration.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig2::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig2/grid_enumeration", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig2::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
