//! Table 3 bench: regenerates the (scaled-down) weight+activation sweep
//! once and prints it, then times a quantized forward/evaluate pass.

use adaptivfloat::FormatKind;
use af_models::ModelFamily;
use af_nn::QuantSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let t = af_bench::table3::run(true);
    println!("\n{}", t.rendered);
    let budget = af_bench::Budget::quick();
    let mut model = af_bench::table1::build(ModelFamily::ResNet, 42);
    model.train_steps(af_bench::table1::fp32_steps(&budget, ModelFamily::ResNet));
    let q = QuantSpec::new(FormatKind::AdaptivFloat, 8)
        .build()
        .expect("valid spec");
    model.set_weight_quantizer(Some(q.clone()));
    model.set_act_quantizer(Some(q));
    c.bench_function("table3/w8a8_resnet_evaluate", |b| {
        b.iter(|| std::hint::black_box(model.evaluate(10)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
