//! Figure 1 bench: prints the regenerated weight-range figure, then
//! times the ensemble synthesis that feeds it.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let fig = af_bench::fig1::run(true);
    println!("\n{}", fig.rendered);
    c.bench_function("fig1/ensemble_synthesis", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig1::run(true).bars.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
