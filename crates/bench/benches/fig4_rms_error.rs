//! Figure 4 bench: prints the per-layer RMS-error table, then times the full format x bits sweep (quick ensembles).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig4::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig4/rms_sweep", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig4::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
