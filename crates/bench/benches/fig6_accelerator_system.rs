//! Figure 6 bench: prints the accelerator schedule, then times the cycle model.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig6::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig6/cycle_model", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig6::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
