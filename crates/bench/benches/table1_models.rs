//! Table 1 bench: trains the three minis once and prints the table, then
//! times the evaluation path of the trained Transformer.

use af_models::ModelFamily;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let t = af_bench::table1::run(true);
    println!("\n{}", t.rendered);
    let budget = af_bench::Budget::quick();
    let mut model = af_bench::table1::build(ModelFamily::Transformer, 42);
    model.train_steps(af_bench::table1::fp32_steps(
        &budget,
        ModelFamily::Transformer,
    ));
    c.bench_function("table1/transformer_evaluate", |b| {
        b.iter(|| std::hint::black_box(model.evaluate(5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
