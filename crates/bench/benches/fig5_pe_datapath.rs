//! Figure 5 bench: prints both PE bills of materials and bit-accuracy results, then times the datapath construction + drive.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig5::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig5/pe_build_and_drive", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig5::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
