//! Figure 7 bench: prints the energy and perf/area table against the paper's values, then times the 12-point sweep.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig7::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig7/pe_sweep", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig7::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
