//! Extensions bench: prints the four extension studies, then times the
//! exponent-width search kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::extensions::run(true);
    println!("\n{}", out.rendered);
    let layer: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.219).sin() * 4.0).collect();
    c.bench_function("extensions/exponent_search_8bit", |b| {
        b.iter(|| {
            std::hint::black_box(
                adaptivfloat::search::search_adaptivfloat_exponent(8, &[&layer]).expect("feasible"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
