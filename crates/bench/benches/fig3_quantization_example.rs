//! Figure 3 bench: prints the worked <4,2> example, then times Algorithm 1 on the example matrix.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::fig3::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("fig3/algorithm1_example", |b| {
        b.iter(|| std::hint::black_box(af_bench::fig3::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
