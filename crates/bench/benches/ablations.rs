//! Ablation bench: prints all five ablation tables, then times the suite.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let out = af_bench::ablations::run(true);
    println!("\n{}", out.rendered);
    c.bench_function("ablations/suite", |b| {
        b.iter(|| std::hint::black_box(af_bench::ablations::run(true).rendered.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
