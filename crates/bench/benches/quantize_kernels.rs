//! Kernel micro-benches: quantization throughput of every format, the
//! bit-packed codec, the bit-accurate MAC datapaths, the SIMD dispatch
//! paths against their scalar twins, and the fused packed-weight GEMM
//! against dequantize-then-dense.

use adaptivfloat::{AdaptivFloat, FormatKind, NumberFormat, PackedCodes, QuantStats, Uniform};
use af_hw::arith::{hfint_dot, int_dot_scaled};
use af_tensor::{PackedDecode, PackedGemm, PackedGemmScratch, Tensor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn data(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 10007) as f32 * 0.002 - 10.0)
        .collect()
}

fn quantize_formats(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize_slice_4096");
    let w = data(4096);
    g.throughput(Throughput::Elements(4096));
    for kind in FormatKind::ALL {
        for bits in [4u32, 8] {
            let fmt = kind.build(bits).expect("valid");
            g.bench_with_input(BenchmarkId::new(kind.label(), bits), &w, |b, w| {
                b.iter(|| std::hint::black_box(fmt.quantize_slice(w)))
            });
        }
    }
    g.finish();
}

/// The headline speedup row: 1M-element AdaptivFloat<8,3> through the
/// bit-twiddled fast kernel (`quantize_slice`) vs the scalar f64
/// reference (`quantize_slice_reference`). Run with `AF_NUM_THREADS=1`
/// to measure the single-thread kernel speedup alone; the default run
/// adds the scoped-thread fan-out on top.
fn adaptivfloat_1m(c: &mut Criterion) {
    const N: usize = 1 << 20;
    let w = data(N);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let mut g = c.benchmark_group("adaptivfloat_1m");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_with_input(BenchmarkId::new("fast", 8), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt.quantize_slice(w)))
    });
    g.bench_with_input(BenchmarkId::new("reference", 8), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt.quantize_slice_reference(w)))
    });
    let fmt4 = AdaptivFloat::new(4, 2).expect("valid");
    g.bench_with_input(BenchmarkId::new("fast", 4), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt4.quantize_slice(w)))
    });
    g.bench_with_input(BenchmarkId::new("reference", 4), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt4.quantize_slice_reference(w)))
    });
    g.finish();
}

/// Square matmul scaling rows for the blocked parallel kernel. Elements
/// = multiply-accumulates, so `ns_per_elem` reads as ns/MAC.
fn matmul_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_square");
    for n in [64usize, 128, 256, 512] {
        let a = Tensor::from_vec(data(n * n), &[n, n]);
        let b_mat = Tensor::from_vec(data(n * n), &[n, n]);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("matmul", n), &(&a, &b_mat), |b, (x, y)| {
            b.iter(|| std::hint::black_box(x.matmul(y)))
        });
        g.bench_with_input(
            BenchmarkId::new("matmul_t", n),
            &(&a, &b_mat),
            |b, (x, y)| b.iter(|| std::hint::black_box(x.matmul_t(y))),
        );
    }
    g.finish();
}

fn codec(c: &mut Criterion) {
    let w = data(4096);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    c.bench_function("adaptivfloat/quantize_tensor_packed_4096", |b| {
        b.iter(|| std::hint::black_box(fmt.quantize_tensor(&w).packed_bytes()))
    });
    let qt = fmt.quantize_tensor(&w);
    c.bench_function("adaptivfloat/dequantize_packed_4096", |b| {
        b.iter(|| std::hint::black_box(qt.dequantize().len()))
    });
}

/// The tentpole rows: each vector-dispatched path against the scalar
/// code it replaced, on the same frozen plan (same backend, same
/// parameters — the only difference is the instruction set). The
/// `BENCH_kernels.json` snapshot derives `simd_speedup_*` from these.
fn simd_vs_scalar(c: &mut Criterion) {
    const N: usize = 65_536;
    let w = data(N);
    let mut g = c.benchmark_group("simd_vs_scalar");
    g.throughput(Throughput::Elements(N as u64));
    // AdaptivFloat<8,3>: kernel backend (branch-free vector quantize).
    let af = FormatKind::AdaptivFloat.build(8).expect("valid");
    let plan = af.plan(&QuantStats::from_slice(&w));
    let mut out = vec![0.0f32; N];
    g.bench_function(BenchmarkId::new("quantize_adaptivfloat8", "simd"), |b| {
        b.iter(|| plan.execute_into(std::hint::black_box(&w), &mut out))
    });
    g.bench_function(BenchmarkId::new("quantize_adaptivfloat8", "scalar"), |b| {
        b.iter(|| plan.execute_into_scalar(std::hint::black_box(&w), &mut out))
    });
    // Posit<8>: LUT backend (vector binary search + gather).
    let posit = FormatKind::Posit.build(8).expect("valid");
    let plan = posit.plan(&QuantStats::from_slice(&w));
    g.bench_function(BenchmarkId::new("quantize_posit8_lut", "simd"), |b| {
        b.iter(|| plan.execute_into(std::hint::black_box(&w), &mut out))
    });
    g.bench_function(BenchmarkId::new("quantize_posit8_lut", "scalar"), |b| {
        b.iter(|| plan.execute_into_scalar(std::hint::black_box(&w), &mut out))
    });
    // Max-abs scan (the stats pass in front of every plan).
    g.bench_function(BenchmarkId::new("scan_abs", "simd"), |b| {
        b.iter(|| std::hint::black_box(adaptivfloat::simd::scan_abs(std::hint::black_box(&w))))
    });
    g.bench_function(BenchmarkId::new("scan_abs", "scalar"), |b| {
        b.iter(|| {
            std::hint::black_box(adaptivfloat::simd::scan_abs_scalar(std::hint::black_box(
                &w,
            )))
        })
    });
    // Bulk 8-bit code packing (the storage encode path).
    let codes: Vec<u32> = (0..N as u32).map(|i| i & 0xff).collect();
    g.bench_function(BenchmarkId::new("pack_u8", "simd"), |b| {
        b.iter(|| {
            let mut p = PackedCodes::new(8);
            p.extend_from_u32(std::hint::black_box(&codes));
            std::hint::black_box(p.len())
        })
    });
    g.bench_function(BenchmarkId::new("pack_u8", "scalar"), |b| {
        b.iter(|| {
            let mut p = PackedCodes::new(8);
            for &c in std::hint::black_box(&codes) {
                p.push(c as u64);
            }
            std::hint::black_box(p.len())
        })
    });
    g.finish();
}

/// Fused quantized-domain GEMM vs dequantize-then-dense at serving-like
/// shapes. Elements = MACs. The fused path reads `width/8` of the
/// weight bytes and decodes inside the kernel; same bits out.
fn packed_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_gemm");
    let af = AdaptivFloat::new(8, 3).expect("valid");
    for (m, k, n) in [(8usize, 192usize, 192usize), (8, 512, 1024)] {
        let w = data(k * n);
        let params = af.params_for(&w);
        let codes: Vec<u32> = w.iter().map(|&v| af.encode_with(&params, v)).collect();
        let table: Vec<f32> = (0..256u32).map(|c| af.decode_with(&params, c)).collect();
        let decode = PackedDecode::AdaptivFloat {
            m: 4,
            exp_bias: params.exp_bias,
        };
        let pg = PackedGemm::build(k, n, 8, &codes, table, decode);
        let dense = Tensor::from_vec(pg.dequantize(), &[k, n]);
        let a = data(m * k);
        let mut out = vec![0.0f32; m * n];
        let mut scratch = PackedGemmScratch::default();
        g.throughput(Throughput::Elements((m * k * n) as u64));
        let label = format!("{m}x{k}x{n}");
        g.bench_function(BenchmarkId::new("fused", &label), |b| {
            b.iter(|| pg.matmul_into(std::hint::black_box(&a), m, &mut out, &mut scratch))
        });
        g.bench_function(BenchmarkId::new("dequantize_dense", &label), |b| {
            b.iter(|| {
                // What the dense serving path pays if weights arrive
                // packed: materialize f32 weights, then matmul.
                let dw = pg.dequantize();
                let t = Tensor::from_vec(dw, &[k, n]);
                Tensor::matmul_slice_into(std::hint::black_box(&a), m, k, &t, &mut out)
            })
        });
        g.bench_function(BenchmarkId::new("dense", &label), |b| {
            b.iter(|| Tensor::matmul_slice_into(std::hint::black_box(&a), m, k, &dense, &mut out))
        });
    }
    g.finish();
}

fn mac_datapaths(c: &mut Criterion) {
    let w = data(256);
    let a = data(256);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let wp = fmt.params_for(&w);
    let ap = fmt.params_for(&a);
    let wc: Vec<u32> = w.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = a.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    c.bench_function("pe/hfint_dot_256", |b| {
        b.iter(|| std::hint::black_box(hfint_dot(&fmt, &wp, &ap, &wc, &ac)))
    });
    let uni = Uniform::new(8).expect("valid");
    let (sw, wl) = uni.quantize_levels(&w);
    let (sa, al) = uni.quantize_levels(&a);
    c.bench_function("pe/int_dot_scaled_256", |b| {
        b.iter(|| std::hint::black_box(int_dot_scaled(&wl, &al, sw * sa, 16)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = quantize_formats, adaptivfloat_1m, matmul_scaling, codec, mac_datapaths,
        simd_vs_scalar, packed_gemm
}
criterion_main!(benches);
