//! Kernel micro-benches: quantization throughput of every format, the
//! bit-packed codec, and the bit-accurate MAC datapaths.

use adaptivfloat::{AdaptivFloat, FormatKind, NumberFormat, Uniform};
use af_hw::arith::{hfint_dot, int_dot_scaled};
use af_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn data(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 10007) as f32 * 0.002 - 10.0)
        .collect()
}

fn quantize_formats(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize_slice_4096");
    let w = data(4096);
    g.throughput(Throughput::Elements(4096));
    for kind in FormatKind::ALL {
        for bits in [4u32, 8] {
            let fmt = kind.build(bits).expect("valid");
            g.bench_with_input(BenchmarkId::new(kind.label(), bits), &w, |b, w| {
                b.iter(|| std::hint::black_box(fmt.quantize_slice(w)))
            });
        }
    }
    g.finish();
}

/// The headline speedup row: 1M-element AdaptivFloat<8,3> through the
/// bit-twiddled fast kernel (`quantize_slice`) vs the scalar f64
/// reference (`quantize_slice_reference`). Run with `AF_NUM_THREADS=1`
/// to measure the single-thread kernel speedup alone; the default run
/// adds the scoped-thread fan-out on top.
fn adaptivfloat_1m(c: &mut Criterion) {
    const N: usize = 1 << 20;
    let w = data(N);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let mut g = c.benchmark_group("adaptivfloat_1m");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_with_input(BenchmarkId::new("fast", 8), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt.quantize_slice(w)))
    });
    g.bench_with_input(BenchmarkId::new("reference", 8), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt.quantize_slice_reference(w)))
    });
    let fmt4 = AdaptivFloat::new(4, 2).expect("valid");
    g.bench_with_input(BenchmarkId::new("fast", 4), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt4.quantize_slice(w)))
    });
    g.bench_with_input(BenchmarkId::new("reference", 4), &w, |b, w| {
        b.iter(|| std::hint::black_box(fmt4.quantize_slice_reference(w)))
    });
    g.finish();
}

/// Square matmul scaling rows for the blocked parallel kernel. Elements
/// = multiply-accumulates, so `ns_per_elem` reads as ns/MAC.
fn matmul_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul_square");
    for n in [64usize, 128, 256, 512] {
        let a = Tensor::from_vec(data(n * n), &[n, n]);
        let b_mat = Tensor::from_vec(data(n * n), &[n, n]);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("matmul", n), &(&a, &b_mat), |b, (x, y)| {
            b.iter(|| std::hint::black_box(x.matmul(y)))
        });
        g.bench_with_input(
            BenchmarkId::new("matmul_t", n),
            &(&a, &b_mat),
            |b, (x, y)| b.iter(|| std::hint::black_box(x.matmul_t(y))),
        );
    }
    g.finish();
}

fn codec(c: &mut Criterion) {
    let w = data(4096);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    c.bench_function("adaptivfloat/quantize_tensor_packed_4096", |b| {
        b.iter(|| std::hint::black_box(fmt.quantize_tensor(&w).packed_bytes()))
    });
    let qt = fmt.quantize_tensor(&w);
    c.bench_function("adaptivfloat/dequantize_packed_4096", |b| {
        b.iter(|| std::hint::black_box(qt.dequantize().len()))
    });
}

fn mac_datapaths(c: &mut Criterion) {
    let w = data(256);
    let a = data(256);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let wp = fmt.params_for(&w);
    let ap = fmt.params_for(&a);
    let wc: Vec<u32> = w.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = a.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    c.bench_function("pe/hfint_dot_256", |b| {
        b.iter(|| std::hint::black_box(hfint_dot(&fmt, &wp, &ap, &wc, &ac)))
    });
    let uni = Uniform::new(8).expect("valid");
    let (sw, wl) = uni.quantize_levels(&w);
    let (sa, al) = uni.quantize_levels(&a);
    c.bench_function("pe/int_dot_scaled_256", |b| {
        b.iter(|| std::hint::black_box(int_dot_scaled(&wl, &al, sw * sa, 16)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = quantize_formats, adaptivfloat_1m, matmul_scaling, codec, mac_datapaths
}
criterion_main!(benches);
