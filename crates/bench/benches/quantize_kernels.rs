//! Kernel micro-benches: quantization throughput of every format, the
//! bit-packed codec, and the bit-accurate MAC datapaths.

use adaptivfloat::{AdaptivFloat, FormatKind, Uniform};
use af_hw::arith::{hfint_dot, int_dot_scaled};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn data(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 10007) as f32 * 0.002 - 10.0)
        .collect()
}

fn quantize_formats(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize_slice_4096");
    let w = data(4096);
    g.throughput(Throughput::Elements(4096));
    for kind in FormatKind::ALL {
        for bits in [4u32, 8] {
            let fmt = kind.build(bits).expect("valid");
            g.bench_with_input(
                BenchmarkId::new(kind.label(), bits),
                &w,
                |b, w| b.iter(|| std::hint::black_box(fmt.quantize_slice(w))),
            );
        }
    }
    g.finish();
}

fn codec(c: &mut Criterion) {
    let w = data(4096);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    c.bench_function("adaptivfloat/quantize_tensor_packed_4096", |b| {
        b.iter(|| std::hint::black_box(fmt.quantize_tensor(&w).packed_bytes()))
    });
    let qt = fmt.quantize_tensor(&w);
    c.bench_function("adaptivfloat/dequantize_packed_4096", |b| {
        b.iter(|| std::hint::black_box(qt.dequantize().len()))
    });
}

fn mac_datapaths(c: &mut Criterion) {
    let w = data(256);
    let a = data(256);
    let fmt = AdaptivFloat::new(8, 3).expect("valid");
    let wp = fmt.params_for(&w);
    let ap = fmt.params_for(&a);
    let wc: Vec<u32> = w.iter().map(|&v| fmt.encode_with(&wp, v)).collect();
    let ac: Vec<u32> = a.iter().map(|&v| fmt.encode_with(&ap, v)).collect();
    c.bench_function("pe/hfint_dot_256", |b| {
        b.iter(|| std::hint::black_box(hfint_dot(&fmt, &wp, &ap, &wc, &ac)))
    });
    let uni = Uniform::new(8).expect("valid");
    let (sw, wl) = uni.quantize_levels(&w);
    let (sa, al) = uni.quantize_levels(&a);
    c.bench_function("pe/int_dot_scaled_256", |b| {
        b.iter(|| std::hint::black_box(int_dot_scaled(&wl, &al, sw * sa, 16)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = quantize_formats, codec, mac_datapaths
}
criterion_main!(benches);
