//! Table 2 bench: regenerates the (scaled-down) PTQ/QAR sweep once and
//! prints it, then times a single PTQ cell (quantize weights + evaluate).

use adaptivfloat::FormatKind;
use af_models::ModelFamily;
use af_nn::QuantSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let t = af_bench::table2::run(true);
    println!("\n{}", t.rendered);
    let budget = af_bench::Budget::quick();
    let mut model = af_bench::table2::families()
        .into_iter()
        .find(|f| *f == ModelFamily::ResNet)
        .map(|f| af_bench::table1::build(f, 42))
        .expect("resnet present");
    model.train_steps(af_bench::table1::fp32_steps(&budget, ModelFamily::ResNet));
    let snapshot = model.snapshot();
    c.bench_function("table2/ptq_cell_resnet_adaptivfloat8", |b| {
        b.iter(|| {
            model.restore(&snapshot);
            model
                .quantize_weights_ptq(QuantSpec::new(FormatKind::AdaptivFloat, 8))
                .expect("valid spec");
            std::hint::black_box(model.evaluate(10))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
