//! `store_inspect`: dump a container, WAL, or store root as JSON.
//!
//! ```text
//! store_inspect <path>
//! ```
//!
//! `<path>` may be a `.afc` container file, a `wal.log`, or a store
//! root directory (anything holding a `CURRENT`/`wal.log`/`variants/`
//! layout). Parse failures print a typed-error JSON object and exit 1 —
//! corrupt input never panics the tool.

use std::path::Path;
use std::process::ExitCode;

use af_store::{container_file_name, read_container, replay, Store, StoreError, SyncPolicy};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_opt(fmt: Option<(adaptivfloat::FormatKind, u32)>) -> String {
    match fmt {
        None => "null".to_string(),
        Some((kind, n)) => format!("{{\"kind\":\"{}\",\"bits\":{n}}}", kind.label()),
    }
}

fn container_json(path: &Path) -> Result<String, StoreError> {
    let (v, report) = read_container(path)?;
    let spec = &v.spec;
    let mut layers = String::new();
    for (i, layer) in v.layers.iter().enumerate() {
        if i > 0 {
            layers.push(',');
        }
        let stats = layer.codes.stats();
        let mode = match &layer.payload {
            af_store::LayerPayload::RawF32 => "\"raw_f32\"".to_string(),
            af_store::LayerPayload::Codes { kind, n, params } => format!(
                "{{\"kind\":\"{}\",\"bits\":{n},\"params\":\"{params:?}\"}}",
                kind.label()
            ),
        };
        layers.push_str(&format!(
            "{{\"rows\":{},\"cols\":{},\"mode\":{mode},\"code_width\":{},\
             \"storage_bytes\":{},\"ecc_corrected\":{},\"ecc_uncorrectable\":{},\
             \"scrub_passes\":{}}}",
            layer.rows,
            layer.cols,
            layer.codes.codes().width(),
            layer.codes.storage_bytes(),
            stats.corrected,
            stats.detected_uncorrectable,
            stats.scrub_passes,
        ));
    }
    let act = match &v.act {
        None => "null".to_string(),
        Some(act) => format!(
            "{{\"kind\":\"{}\",\"bits\":{},\"maxes\":{:?}}}",
            act.kind.label(),
            act.n,
            act.maxes
        ),
    };
    Ok(format!(
        "{{\"type\":\"container\",\"path\":\"{}\",\"id\":\"{}\",\"family\":\"{}\",\
         \"dims\":{:?},\"seed\":{},\"weight_format\":{},\"act_format\":{},\
         \"protected\":{},\"fused\":{},\"format_label\":\"{}\",\"generation\":{},\
         \"rebuilds\":{},\"plans_built\":{},\"plan_cache_hits\":{},\
         \"sections_repaired\":{},\"words_corrected\":{},\"layers\":[{layers}],\
         \"act\":{act}}}",
        json_escape(&path.display().to_string()),
        json_escape(&spec.id),
        json_escape(&spec.family),
        spec.dims,
        spec.seed,
        fmt_opt(spec.weight_format),
        fmt_opt(spec.act_format),
        spec.protected,
        spec.fused,
        json_escape(&spec.format_label),
        spec.generation,
        spec.rebuilds,
        spec.plans_built,
        spec.plan_cache_hits,
        report.sections_repaired,
        report.words_corrected,
    ))
}

fn wal_json(path: &Path) -> Result<String, StoreError> {
    let rp = replay(path)?;
    let mut records = String::new();
    for (i, rec) in rp.records.iter().enumerate() {
        if i > 0 {
            records.push(',');
        }
        let detail = match &rec.op {
            af_store::WalOp::Register { id, generation } => {
                format!("\"id\":\"{}\",\"generation\":{generation}", json_escape(id))
            }
            af_store::WalOp::Scrub {
                id,
                corrected,
                uncorrectable,
                rebuilt,
                generation,
            } => format!(
                "\"id\":\"{}\",\"corrected\":{corrected},\"uncorrectable\":{uncorrectable},\
                 \"rebuilt\":{rebuilt},\"generation\":{generation}",
                json_escape(id)
            ),
            af_store::WalOp::Swap { id, generation } => {
                format!("\"id\":\"{}\",\"generation\":{generation}", json_escape(id))
            }
            af_store::WalOp::Unregister { id } => {
                format!("\"id\":\"{}\"", json_escape(id))
            }
        };
        records.push_str(&format!(
            "{{\"seq\":{},\"op\":\"{}\",{detail}}}",
            rec.seq,
            rec.op.label()
        ));
    }
    Ok(format!(
        "{{\"type\":\"wal\",\"path\":\"{}\",\"records\":{},\"valid_bytes\":{},\
         \"torn_bytes_dropped\":{},\"next_seq\":{},\"entries\":[{records}]}}",
        json_escape(&path.display().to_string()),
        rp.records.len(),
        rp.valid_bytes,
        rp.torn_bytes_dropped,
        rp.next_seq,
    ))
}

fn root_json(path: &Path) -> Result<String, StoreError> {
    let (store, recovery) = Store::open(path, SyncPolicy::EveryRecord)?;
    let mut variants = String::new();
    for (i, v) in recovery.variants.iter().enumerate() {
        if i > 0 {
            variants.push(',');
        }
        variants.push_str(&format!(
            "{{\"id\":\"{}\",\"file\":\"{}\",\"generation\":{},\"protected\":{},\
             \"fused\":{},\"layers\":{}}}",
            json_escape(&v.spec.id),
            json_escape(&container_file_name(&v.spec.id)),
            v.spec.generation,
            v.spec.protected,
            v.spec.fused,
            v.layers.len(),
        ));
    }
    Ok(format!(
        "{{\"type\":\"store\",\"path\":\"{}\",\"stats\":{},\"variants\":[{variants}]}}",
        json_escape(&path.display().to_string()),
        store.stats().to_json(),
    ))
}

fn run(path: &Path) -> Result<String, StoreError> {
    if path.is_dir() {
        return root_json(path);
    }
    // Sniff the magic to pick container vs WAL.
    let head = std::fs::read(path)
        .map_err(|e| StoreError::io(format!("reading {}", path.display()), e))?;
    if head.starts_with(af_store::WAL_MAGIC) {
        wal_json(path)
    } else {
        container_json(path)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: store_inspect <container.afc | wal.log | store-root>");
        return ExitCode::from(2);
    };
    match run(Path::new(path)) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!(
                "{{\"type\":\"error\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.kind(),
                json_escape(&e.to_string())
            );
            ExitCode::FAILURE
        }
    }
}
