//! The `.afc` container: one frozen variant persisted as packed codes,
//! per-layer frozen [`PlanParams`], and SEC-DED parity.
//!
//! ```text
//! magic "AFSTORE1" · version u16
//! section*  :=  tag u8 · len u64 · crc32 u32 · payload[len]
//!   tag 1 = SPEC   (variant identity, counters, generation)
//!   tag 2 = LAYER  (one weight tensor: codes + parity + ECC stats)
//!   tag 3 = ACT    (calibrated activation ranges)
//!   tag 4 = END    (empty payload; everything after it is rejected)
//! ```
//!
//! Every payload carries its own CRC-32, so a flipped byte fails the
//! section it landed in, not the whole file. LAYER sections get a
//! second chance the others don't: their payload *is* ECC-protected
//! storage, so on a CRC mismatch the reader parses the bytes anyway,
//! runs a SEC-DED scrub over the codes, and accepts the section iff the
//! repaired image reproduces the stored CRC — a disk bit-flip in a
//! weight word heals exactly like a DRAM upset would. Corrupt or
//! truncated files always fail typed ([`StoreError`]), never panic.

use std::path::Path;

use adaptivfloat::{DecodePolicy, FormatKind, PackedCodes, PlanParams};
use af_resilience::{EccStats, ProtectedCodes, StorageCodec};

use crate::bytes::{ByteReader, ByteWriter, ShortRead};
use crate::crc::crc32;
use crate::error::StoreError;

/// Container magic bytes.
pub const CONTAINER_MAGIC: &[u8; 8] = b"AFSTORE1";
/// Highest container format version this build reads and the version it
/// writes.
pub const CONTAINER_VERSION: u16 = 1;

const TAG_SPEC: u8 = 1;
const TAG_LAYER: u8 = 2;
const TAG_ACT: u8 = 3;
const TAG_END: u8 = 4;

/// The variant identity and serving counters a container preserves —
/// everything a registry needs to republish the exact snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRecord {
    /// Registry key.
    pub id: String,
    /// Model family label (e.g. `"ResNet"`).
    pub family: String,
    /// Layer widths, input first.
    pub dims: Vec<usize>,
    /// Synthesis seed (biases and protected masters re-derive from it).
    pub seed: u64,
    /// Weight PTQ format, or `None` for FP32 weights.
    pub weight_format: Option<(FormatKind, u32)>,
    /// Calibrated activation format, or `None`.
    pub act_format: Option<(FormatKind, u32)>,
    /// Whether the served weights live behind SEC-DED storage.
    pub protected: bool,
    /// Whether the variant serves through the fused packed GEMM.
    pub fused: bool,
    /// The served weight-format label (e.g. `"AdaptivFloat<8,3>+secded"`).
    pub format_label: String,
    /// Plans frozen when the snapshot was built.
    pub plans_built: u64,
    /// Codebook cache hits when the snapshot was built.
    pub plan_cache_hits: u64,
    /// Codebook-path layers warmed at build time.
    pub warmed_codebooks: u64,
    /// Hot-swap generation at persist time.
    pub generation: u64,
    /// Times the protected store was re-encoded from its master.
    pub rebuilds: u64,
}

/// How one layer's values are encoded inside its protected codes.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerPayload {
    /// `f32` bit patterns stored as width-32 codes — the lossless
    /// fallback (FP32 variants, or quantized values whose codec
    /// roundtrip was not bit-exact at persist time).
    RawF32,
    /// Format codes plus the frozen per-tensor parameters needed to
    /// decode them without refitting anything.
    Codes {
        /// Storage format kind.
        kind: FormatKind,
        /// Word size in bits.
        n: u32,
        /// The frozen per-tensor side state.
        params: PlanParams,
    },
}

/// One persisted weight tensor: geometry, encoding, and the SEC-DED
/// protected code image (including its cumulative ECC counters).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredLayer {
    /// Weight matrix rows (input width).
    pub rows: usize,
    /// Weight matrix columns (output width).
    pub cols: usize,
    /// How the codes decode back to values.
    pub payload: LayerPayload,
    /// The protected code image, parity and ECC history included.
    pub codes: ProtectedCodes,
}

/// Calibrated activation quantization state: the per-layer abs-max
/// ranges frozen at calibration time. Restoring plans from these is
/// bit-identical to the original calibration (same
/// `QuantStats::calibrated` path) without rerunning the forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ActRecord {
    /// Activation format kind.
    pub kind: FormatKind,
    /// Word size in bits.
    pub n: u32,
    /// One frozen abs-max per layer.
    pub maxes: Vec<f32>,
}

/// A fully parsed container: everything needed to rebuild one servable
/// variant without touching the f32 master.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredVariant {
    /// Identity and counters.
    pub spec: SpecRecord,
    /// One entry per weight tensor, in layer order.
    pub layers: Vec<StoredLayer>,
    /// Activation calibration, when the spec quantizes activations.
    pub act: Option<ActRecord>,
}

/// What reading a container observed beyond the parsed data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// LAYER sections whose CRC failed but whose SEC-DED parity
    /// repaired the payload back to the stored checksum.
    pub sections_repaired: usize,
    /// Storage words corrected by those repairs.
    pub words_corrected: usize,
}

fn kind_to_u8(kind: FormatKind) -> u8 {
    match kind {
        FormatKind::Float => 0,
        FormatKind::Bfp => 1,
        FormatKind::Uniform => 2,
        FormatKind::Posit => 3,
        FormatKind::AdaptivFloat => 4,
    }
}

fn kind_from_u8(b: u8) -> Option<FormatKind> {
    Some(match b {
        0 => FormatKind::Float,
        1 => FormatKind::Bfp,
        2 => FormatKind::Uniform,
        3 => FormatKind::Posit,
        4 => FormatKind::AdaptivFloat,
        _ => return None,
    })
}

/// A payload parse failure: ran short, or carried an impossible value.
enum ParseErr {
    Short(ShortRead),
    Bad(&'static str),
}

impl From<ShortRead> for ParseErr {
    fn from(s: ShortRead) -> ParseErr {
        ParseErr::Short(s)
    }
}

impl ParseErr {
    fn context(&self) -> String {
        match self {
            ParseErr::Short(s) => s.to_string(),
            ParseErr::Bad(msg) => (*msg).to_string(),
        }
    }
}

fn write_format_opt(w: &mut ByteWriter, fmt: Option<(FormatKind, u32)>) {
    match fmt {
        None => w.put_u8(0),
        Some((kind, n)) => {
            w.put_u8(1);
            w.put_u8(kind_to_u8(kind));
            w.put_u32(n);
        }
    }
}

fn read_format_opt(r: &mut ByteReader<'_>) -> Result<Option<(FormatKind, u32)>, ParseErr> {
    match r.get_u8("format flag")? {
        0 => Ok(None),
        1 => {
            let kind = kind_from_u8(r.get_u8("format kind")?)
                .ok_or(ParseErr::Bad("unknown format kind"))?;
            Ok(Some((kind, r.get_u32("format width")?)))
        }
        _ => Err(ParseErr::Bad("format flag is neither 0 nor 1")),
    }
}

fn write_params(w: &mut ByteWriter, params: &PlanParams) {
    match *params {
        PlanParams::AdaptivFloat { exp_bias } => {
            w.put_u8(0);
            w.put_i32(exp_bias);
        }
        PlanParams::Bfp { shared_exp } => {
            w.put_u8(1);
            match shared_exp {
                Some(e) => {
                    w.put_u8(1);
                    w.put_i32(e);
                }
                None => {
                    w.put_u8(0);
                    w.put_i32(0);
                }
            }
        }
        PlanParams::Uniform { scale } => {
            w.put_u8(2);
            w.put_f64_bits(scale);
        }
        PlanParams::Static => w.put_u8(3),
        PlanParams::PerBlock => w.put_u8(4),
    }
}

fn read_params(r: &mut ByteReader<'_>) -> Result<PlanParams, ParseErr> {
    Ok(match r.get_u8("plan params tag")? {
        0 => PlanParams::AdaptivFloat {
            exp_bias: r.get_i32("exp_bias")?,
        },
        1 => {
            let has = r.get_u8("shared_exp flag")?;
            let e = r.get_i32("shared_exp")?;
            PlanParams::Bfp {
                shared_exp: match has {
                    0 => None,
                    1 => Some(e),
                    _ => return Err(ParseErr::Bad("shared_exp flag is neither 0 nor 1")),
                },
            }
        }
        2 => PlanParams::Uniform {
            scale: r.get_f64_bits("uniform scale")?,
        },
        3 => PlanParams::Static,
        4 => PlanParams::PerBlock,
        _ => return Err(ParseErr::Bad("unknown plan params tag")),
    })
}

fn encode_spec(spec: &SpecRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(&spec.id);
    w.put_str(&spec.family);
    w.put_u64(spec.dims.len() as u64);
    for &d in &spec.dims {
        w.put_u64(d as u64);
    }
    w.put_u64(spec.seed);
    write_format_opt(&mut w, spec.weight_format);
    write_format_opt(&mut w, spec.act_format);
    w.put_u8(spec.protected as u8);
    w.put_u8(spec.fused as u8);
    w.put_str(&spec.format_label);
    w.put_u64(spec.plans_built);
    w.put_u64(spec.plan_cache_hits);
    w.put_u64(spec.warmed_codebooks);
    w.put_u64(spec.generation);
    w.put_u64(spec.rebuilds);
    w.into_bytes()
}

fn decode_spec(bytes: &[u8]) -> Result<SpecRecord, ParseErr> {
    let mut r = ByteReader::new(bytes);
    let id = r.get_str("spec id")?;
    let family = r.get_str("spec family")?;
    let ndims = r.get_count(8, "spec dims")?;
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(r.get_u64("spec dim")? as usize);
    }
    if dims.len() < 2 || dims.contains(&0) {
        return Err(ParseErr::Bad("spec dims must be >= 2 nonzero widths"));
    }
    let seed = r.get_u64("spec seed")?;
    let weight_format = read_format_opt(&mut r)?;
    let act_format = read_format_opt(&mut r)?;
    let protected = match r.get_u8("protected flag")? {
        0 => false,
        1 => true,
        _ => return Err(ParseErr::Bad("protected flag is neither 0 nor 1")),
    };
    let fused = match r.get_u8("fused flag")? {
        0 => false,
        1 => true,
        _ => return Err(ParseErr::Bad("fused flag is neither 0 nor 1")),
    };
    let spec = SpecRecord {
        id,
        family,
        dims,
        seed,
        weight_format,
        act_format,
        protected,
        fused,
        format_label: r.get_str("format label")?,
        plans_built: r.get_u64("plans_built")?,
        plan_cache_hits: r.get_u64("plan_cache_hits")?,
        warmed_codebooks: r.get_u64("warmed_codebooks")?,
        generation: r.get_u64("generation")?,
        rebuilds: r.get_u64("rebuilds")?,
    };
    if !r.is_empty() {
        return Err(ParseErr::Bad("trailing bytes in SPEC payload"));
    }
    Ok(spec)
}

/// Serialize one layer with an explicit stats value — the writer passes
/// the live stats; the ECC-repair path passes the *stored* stats so a
/// repaired payload can reproduce the original CRC byte for byte.
fn encode_layer_with(
    index: u32,
    layer: &StoredLayer,
    codes: &PackedCodes,
    parity: &[u8],
    stats: EccStats,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(index);
    w.put_u64(layer.rows as u64);
    w.put_u64(layer.cols as u64);
    match &layer.payload {
        LayerPayload::RawF32 => w.put_u8(0),
        LayerPayload::Codes { kind, n, params } => {
            w.put_u8(1);
            w.put_u8(kind_to_u8(*kind));
            w.put_u32(*n);
            write_params(&mut w, params);
        }
    }
    w.put_u32(codes.width());
    w.put_u64(codes.len() as u64);
    w.put_u64_slice(codes.words());
    w.put_u64(parity.len() as u64);
    w.put_bytes(parity);
    w.put_u64(stats.corrected);
    w.put_u64(stats.detected_uncorrectable);
    w.put_u64(stats.scrub_passes);
    w.into_bytes()
}

fn encode_layer(index: u32, layer: &StoredLayer) -> Vec<u8> {
    encode_layer_with(
        index,
        layer,
        layer.codes.codes(),
        layer.codes.parity(),
        layer.codes.stats(),
    )
}

/// The pieces of a LAYER payload before reassembly — kept apart so the
/// repair path can rewrite codes/parity while preserving stored stats.
struct LayerParts {
    index: u32,
    rows: usize,
    cols: usize,
    payload: LayerPayload,
    codes: PackedCodes,
    parity: Vec<u8>,
    stats: EccStats,
}

fn decode_layer(bytes: &[u8]) -> Result<LayerParts, ParseErr> {
    let mut r = ByteReader::new(bytes);
    let index = r.get_u32("layer index")?;
    let rows = r.get_u64("layer rows")? as usize;
    let cols = r.get_u64("layer cols")? as usize;
    let payload = match r.get_u8("layer mode")? {
        0 => LayerPayload::RawF32,
        1 => {
            let kind = kind_from_u8(r.get_u8("layer format kind")?)
                .ok_or(ParseErr::Bad("unknown layer format kind"))?;
            let n = r.get_u32("layer format width")?;
            LayerPayload::Codes {
                kind,
                n,
                params: read_params(&mut r)?,
            }
        }
        _ => return Err(ParseErr::Bad("unknown layer mode")),
    };
    let width = r.get_u32("code width")?;
    let len = r.get_u64("code count")? as usize;
    let words = r.get_u64_slice("code words")?;
    let nparity = r.get_count(1, "parity bytes")?;
    let parity = r.get_bytes(nparity, "parity bytes")?;
    let stats = EccStats {
        corrected: r.get_u64("ecc corrected")?,
        detected_uncorrectable: r.get_u64("ecc uncorrectable")?,
        scrub_passes: r.get_u64("ecc scrub_passes")?,
    };
    if !r.is_empty() {
        return Err(ParseErr::Bad("trailing bytes in LAYER payload"));
    }
    let codes = PackedCodes::from_raw_parts(width, len, words)
        .ok_or(ParseErr::Bad("inconsistent code geometry"))?;
    if rows.checked_mul(cols) != Some(len) {
        return Err(ParseErr::Bad("code count does not match rows x cols"));
    }
    if let LayerPayload::RawF32 = payload {
        if width != 32 {
            return Err(ParseErr::Bad("RawF32 layers must store 32-bit codes"));
        }
    }
    Ok(LayerParts {
        index,
        rows,
        cols,
        payload,
        codes,
        parity,
        stats,
    })
}

fn encode_act(act: &ActRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(kind_to_u8(act.kind));
    w.put_u32(act.n);
    w.put_f32_slice(&act.maxes);
    w.into_bytes()
}

fn decode_act(bytes: &[u8]) -> Result<ActRecord, ParseErr> {
    let mut r = ByteReader::new(bytes);
    let kind =
        kind_from_u8(r.get_u8("act kind")?).ok_or(ParseErr::Bad("unknown act format kind"))?;
    let n = r.get_u32("act width")?;
    let maxes = r.get_f32_slice("act maxes")?;
    if !r.is_empty() {
        return Err(ParseErr::Bad("trailing bytes in ACT payload"));
    }
    Ok(ActRecord { kind, n, maxes })
}

fn push_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serialize a variant to container bytes.
pub fn encode_container(v: &StoredVariant) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CONTAINER_MAGIC);
    out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
    push_section(&mut out, TAG_SPEC, &encode_spec(&v.spec));
    for (i, layer) in v.layers.iter().enumerate() {
        push_section(&mut out, TAG_LAYER, &encode_layer(i as u32, layer));
    }
    if let Some(act) = &v.act {
        push_section(&mut out, TAG_ACT, &encode_act(act));
    }
    push_section(&mut out, TAG_END, &[]);
    out
}

/// Parse container bytes. `path` is used only for error reporting.
///
/// # Errors
///
/// Every malformation maps to a typed [`StoreError`]: wrong magic,
/// newer version, truncation mid-section, CRC failures the SEC-DED
/// repair could not resolve, or payloads describing impossible objects.
pub fn decode_container(
    bytes: &[u8],
    path: &Path,
) -> Result<(StoredVariant, ReadReport), StoreError> {
    let truncated = |context: &str| StoreError::Truncated {
        path: path.to_path_buf(),
        context: context.to_string(),
    };
    let malformed = |context: String| StoreError::Malformed {
        path: path.to_path_buf(),
        context,
    };
    if bytes.len() < CONTAINER_MAGIC.len() + 2 {
        return Err(truncated("file header"));
    }
    if &bytes[..8] != CONTAINER_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            expected: CONTAINER_MAGIC,
        });
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version > CONTAINER_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: CONTAINER_VERSION,
        });
    }
    let mut report = ReadReport::default();
    let mut spec: Option<SpecRecord> = None;
    let mut layers: Vec<StoredLayer> = Vec::new();
    let mut act: Option<ActRecord> = None;
    let mut pos = 10usize;
    loop {
        if pos >= bytes.len() {
            // Ran out of bytes before the END marker: a torn write.
            return Err(truncated("missing END section"));
        }
        let tag = bytes[pos];
        if bytes.len() - pos < 13 {
            return Err(truncated("section header"));
        }
        let len = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[pos + 9..pos + 13].try_into().expect("4 bytes"));
        let body_start = pos + 13;
        if len > (bytes.len() - body_start) as u64 {
            return Err(truncated("section payload"));
        }
        let payload = &bytes[body_start..body_start + len as usize];
        pos = body_start + len as usize;
        let crc_ok = crc32(payload) == stored_crc;
        match tag {
            TAG_SPEC => {
                if !crc_ok {
                    return Err(StoreError::Corrupt {
                        path: path.to_path_buf(),
                        context: "SPEC section failed its CRC".to_string(),
                    });
                }
                if spec.is_some() {
                    return Err(malformed("duplicate SPEC section".to_string()));
                }
                spec = Some(decode_spec(payload).map_err(|e| malformed(e.context()))?);
            }
            TAG_LAYER => {
                let parts = match decode_layer(payload) {
                    Ok(parts) => parts,
                    Err(e) if crc_ok => return Err(malformed(e.context())),
                    // CRC already failed and the bytes don't even parse:
                    // nothing the ECC can do.
                    Err(_) => {
                        return Err(StoreError::Corrupt {
                            path: path.to_path_buf(),
                            context: format!("LAYER section {} failed its CRC", layers.len()),
                        })
                    }
                };
                if parts.index as usize != layers.len() {
                    return Err(malformed(format!(
                        "LAYER index {} out of order (expected {})",
                        parts.index,
                        layers.len()
                    )));
                }
                let mut codes = ProtectedCodes::from_parts(parts.codes, parts.parity, parts.stats)
                    .ok_or_else(|| malformed("parity length mismatch".to_string()))?;
                if !crc_ok {
                    // Second chance: the payload is SEC-DED protected
                    // storage. Scrub it, then demand the repaired image
                    // reproduce the stored CRC exactly.
                    let probe = StoredLayer {
                        rows: parts.rows,
                        cols: parts.cols,
                        payload: parts.payload.clone(),
                        codes: codes.clone(),
                    };
                    let scrub = codes.scrub();
                    let repaired = encode_layer_with(
                        parts.index,
                        &probe,
                        codes.codes(),
                        codes.parity(),
                        parts.stats,
                    );
                    if scrub.corrected == 0 || crc32(&repaired) != stored_crc {
                        return Err(StoreError::Corrupt {
                            path: path.to_path_buf(),
                            context: format!(
                                "LAYER section {} failed its CRC and SEC-DED repair \
                                 could not restore it",
                                parts.index
                            ),
                        });
                    }
                    report.sections_repaired += 1;
                    report.words_corrected += scrub.corrected;
                }
                layers.push(StoredLayer {
                    rows: parts.rows,
                    cols: parts.cols,
                    payload: parts.payload,
                    codes,
                });
            }
            TAG_ACT => {
                if !crc_ok {
                    return Err(StoreError::Corrupt {
                        path: path.to_path_buf(),
                        context: "ACT section failed its CRC".to_string(),
                    });
                }
                if act.is_some() {
                    return Err(malformed("duplicate ACT section".to_string()));
                }
                act = Some(decode_act(payload).map_err(|e| malformed(e.context()))?);
            }
            TAG_END => {
                if !crc_ok {
                    return Err(StoreError::Corrupt {
                        path: path.to_path_buf(),
                        context: "END section failed its CRC".to_string(),
                    });
                }
                if pos != bytes.len() {
                    return Err(malformed("trailing bytes after END section".to_string()));
                }
                break;
            }
            other => return Err(malformed(format!("unknown section tag {other}"))),
        }
    }
    let spec = spec.ok_or_else(|| malformed("container has no SPEC section".to_string()))?;
    if layers.is_empty() {
        return Err(malformed("container has no LAYER sections".to_string()));
    }
    if layers.len() != spec.dims.len() - 1 {
        return Err(malformed(format!(
            "{} LAYER sections but dims describe {} layers",
            layers.len(),
            spec.dims.len() - 1
        )));
    }
    for (l, layer) in layers.iter().enumerate() {
        if layer.rows != spec.dims[l] || layer.cols != spec.dims[l + 1] {
            return Err(malformed(format!(
                "LAYER {l} is {}x{} but dims say {}x{}",
                layer.rows,
                layer.cols,
                spec.dims[l],
                spec.dims[l + 1]
            )));
        }
    }
    if let Some(act) = &act {
        if act.maxes.len() != layers.len() {
            return Err(malformed(format!(
                "ACT carries {} ranges for {} layers",
                act.maxes.len(),
                layers.len()
            )));
        }
    }
    Ok((StoredVariant { spec, layers, act }, report))
}

/// Write a container atomically: serialize, write to a `.tmp` sibling,
/// fsync, rename over `path`.
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure.
pub fn write_container(path: &Path, v: &StoredVariant) -> Result<(), StoreError> {
    let bytes = encode_container(v);
    let tmp = path.with_extension("afc.tmp");
    let ctx = |what: &str| format!("{what} {}", tmp.display());
    std::fs::write(&tmp, &bytes).map_err(|e| StoreError::io(ctx("writing"), e))?;
    let f = std::fs::File::open(&tmp).map_err(|e| StoreError::io(ctx("reopening"), e))?;
    f.sync_all()
        .map_err(|e| StoreError::io(ctx("syncing"), e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| StoreError::io(format!("renaming into {}", path.display()), e))?;
    Ok(())
}

/// Read and parse a container file.
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be read; any
/// [`decode_container`] error for bad contents.
pub fn read_container(path: &Path) -> Result<(StoredVariant, ReadReport), StoreError> {
    let bytes = std::fs::read(path)
        .map_err(|e| StoreError::io(format!("reading container {}", path.display()), e))?;
    decode_container(&bytes, path)
}

/// Pack f32 values into the lossless width-32 code image the
/// [`LayerPayload::RawF32`] mode stores, SEC-DED protected like any
/// other layer.
pub fn raw_f32_codes(data: &[f32]) -> ProtectedCodes {
    let mut packed = PackedCodes::new(32);
    for &v in data {
        packed.push(v.to_bits() as u64);
    }
    ProtectedCodes::protect(packed)
}

impl StoredLayer {
    /// Decode this layer's (ECC-corrected) codes back to the served f32
    /// values. Returns the values and how many storage words the read
    /// corrected on the fly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Malformed`] if the stored format/params cannot
    /// rebuild a codec or the code width disagrees with the format.
    pub fn decode_values(&self) -> Result<(Vec<f32>, usize), StoreError> {
        let (snapshot, report) = self.codes.decode();
        let vals = match &self.payload {
            LayerPayload::RawF32 => snapshot.iter().map(|c| f32::from_bits(c as u32)).collect(),
            LayerPayload::Codes { kind, n, params } => {
                let codec = StorageCodec::from_params(*kind, *n, *params).map_err(|e| {
                    StoreError::Malformed {
                        path: std::path::PathBuf::new(),
                        context: format!("stored params cannot rebuild a codec: {e}"),
                    }
                })?;
                if codec.width() != snapshot.width() {
                    return Err(StoreError::Malformed {
                        path: std::path::PathBuf::new(),
                        context: format!(
                            "code width {} disagrees with format width {}",
                            snapshot.width(),
                            codec.width()
                        ),
                    });
                }
                codec.decode_slice(&snapshot, DecodePolicy::Harden).0
            }
        };
        Ok((vals, report.corrected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_variant() -> StoredVariant {
        let w0: Vec<f32> = (0..48)
            .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.02)
            .collect();
        let w1: Vec<f32> = (0..24)
            .map(|i| ((i * 53 % 89) as f32 - 44.0) * 0.015)
            .collect();
        let kind = FormatKind::AdaptivFloat;
        let fit = |data: &[f32]| StorageCodec::fit(kind, 8, data).unwrap();
        let (c0, c1) = (fit(&w0), fit(&w1));
        let layer = |codec: &StorageCodec, data: &[f32], rows: usize, cols: usize| StoredLayer {
            rows,
            cols,
            payload: LayerPayload::Codes {
                kind,
                n: 8,
                params: codec.params(),
            },
            codes: ProtectedCodes::protect(codec.encode_slice(data)),
        };
        StoredVariant {
            spec: SpecRecord {
                id: "resnet/adaptivfloat8".to_string(),
                family: "ResNet".to_string(),
                dims: vec![8, 6, 4],
                seed: 42,
                weight_format: Some((kind, 8)),
                act_format: Some((kind, 8)),
                protected: true,
                fused: false,
                format_label: "AdaptivFloat<8,3>+secded".to_string(),
                plans_built: 4,
                plan_cache_hits: 1,
                warmed_codebooks: 2,
                generation: 3,
                rebuilds: 1,
            },
            layers: vec![layer(&c0, &w0, 8, 6), layer(&c1, &w1, 6, 4)],
            act: Some(ActRecord {
                kind,
                n: 8,
                maxes: vec![1.75, 0.9],
            }),
        }
    }

    #[test]
    fn container_roundtrips_exactly() {
        let v = sample_variant();
        let bytes = encode_container(&v);
        let (back, report) = decode_container(&bytes, Path::new("mem")).unwrap();
        assert_eq!(back, v);
        assert_eq!(report, ReadReport::default());
        // Decoded values are bit-identical to what the source codes
        // decode to.
        for (l, layer) in v.layers.iter().enumerate() {
            let (vals, corrected) = back.layers[l].decode_values().unwrap();
            assert_eq!(corrected, 0);
            let (want, _) = layer.decode_values().unwrap();
            assert_eq!(
                vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn raw_f32_layers_roundtrip_bit_exactly() {
        let data = vec![1.5f32, -0.0, f32::MIN_POSITIVE, 3.25e-30, -7.0];
        let mut v = sample_variant();
        v.spec.dims = vec![5, 1];
        v.spec.weight_format = None;
        v.spec.act_format = None;
        v.act = None;
        v.layers = vec![StoredLayer {
            rows: 5,
            cols: 1,
            payload: LayerPayload::RawF32,
            codes: raw_f32_codes(&data),
        }];
        let bytes = encode_container(&v);
        let (back, _) = decode_container(&bytes, Path::new("mem")).unwrap();
        let (vals, _) = back.layers[0].decode_values().unwrap();
        assert_eq!(
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            data.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_truncation_point_fails_typed() {
        let bytes = encode_container(&sample_variant());
        for cut in 0..bytes.len() {
            let err = decode_container(&bytes[..cut], Path::new("mem")).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::Corrupt { .. }
                        | StoreError::Malformed { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_spec_byte_is_corrupt_not_panic() {
        let v = sample_variant();
        let clean = encode_container(&v);
        // Find the SPEC payload (starts right after header + section hdr).
        let spec_body = 10 + 13;
        let mut bent = clean.clone();
        bent[spec_body + 4] ^= 0x10;
        let err = decode_container(&bent, Path::new("mem")).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
    }

    #[test]
    fn single_bit_flip_in_layer_codes_is_ecc_repaired() {
        let v = sample_variant();
        let clean = encode_container(&v);
        // Locate the first LAYER section: header(10) + SPEC section.
        let spec_len = encode_spec(&v.spec).len();
        let layer_hdr = 10 + 13 + spec_len;
        assert_eq!(clean[layer_hdr], TAG_LAYER);
        let layer_body = layer_hdr + 13;
        // The code words start after index(4)+rows(8)+cols(8)+mode(1)+
        // kind(1)+n(4)+params tag(1)+exp_bias(4)+width(4)+count(8)+
        // wordcount(8) = 51 bytes into the payload.
        let word_off = layer_body + 51;
        let mut bent = clean.clone();
        bent[word_off + 2] ^= 0x04; // one bit inside a protected word
        let (back, report) = decode_container(&bent, Path::new("mem")).unwrap();
        assert_eq!(report.sections_repaired, 1);
        assert_eq!(report.words_corrected, 1);
        // The repaired layer decodes to exactly the clean values, and its
        // ECC history now records the correction.
        let (want, _) = v.layers[0].decode_values().unwrap();
        let (got, corrected) = back.layers[0].decode_values().unwrap();
        assert_eq!(corrected, 0, "repair happened at read time, not decode");
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.layers[0].codes.stats().corrected, 1);
    }

    #[test]
    fn double_flip_in_one_word_is_corrupt() {
        let v = sample_variant();
        let clean = encode_container(&v);
        let spec_len = encode_spec(&v.spec).len();
        let word_off = 10 + 13 + spec_len + 13 + 51;
        let mut bent = clean.clone();
        bent[word_off] ^= 0x21; // two bits in the same protected word
        let err = decode_container(&bent, Path::new("mem")).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
    }

    #[test]
    fn wrong_magic_and_future_version_fail_typed() {
        let mut bytes = encode_container(&sample_variant());
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(
            decode_container(&wrong, Path::new("mem"))
                .unwrap_err()
                .kind(),
            "bad_magic"
        );
        bytes[8] = 0xFF; // version 0xFF??
        assert_eq!(
            decode_container(&bytes, Path::new("mem"))
                .unwrap_err()
                .kind(),
            "unsupported_version"
        );
    }

    #[test]
    fn trailing_bytes_after_end_are_rejected() {
        let mut bytes = encode_container(&sample_variant());
        bytes.push(0);
        assert_eq!(
            decode_container(&bytes, Path::new("mem"))
                .unwrap_err()
                .kind(),
            "malformed"
        );
    }

    #[test]
    fn params_roundtrip_every_variant() {
        for params in [
            PlanParams::AdaptivFloat { exp_bias: -7 },
            PlanParams::Bfp {
                shared_exp: Some(3),
            },
            PlanParams::Bfp { shared_exp: None },
            PlanParams::Uniform { scale: 0.031_25 },
            PlanParams::Static,
            PlanParams::PerBlock,
        ] {
            let mut w = ByteWriter::new();
            write_params(&mut w, &params);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let back = read_params(&mut r).ok().unwrap();
            assert_eq!(back, params);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn codec_params_survive_disk_for_calibrated_stats() {
        // A Bfp codec fitted on data whose plan params pass through the
        // container must decode identically after the roundtrip.
        let data: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.11).collect();
        let codec = StorageCodec::fit(FormatKind::Bfp, 8, &data).unwrap();
        let mut w = ByteWriter::new();
        write_params(&mut w, &codec.params());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let params = read_params(&mut r).ok().unwrap();
        let rebuilt = StorageCodec::from_params(FormatKind::Bfp, 8, params).unwrap();
        let packed = codec.encode_slice(&data);
        let (a, _) = codec.decode_slice(&packed, DecodePolicy::Harden);
        let (b, _) = rebuilt.decode_slice(&packed, DecodePolicy::Harden);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
