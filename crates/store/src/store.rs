//! The durable store: live containers, a write-ahead log, and
//! immutable checkpoints under one root directory.
//!
//! ```text
//! root/
//!   CURRENT        active checkpoint version ("0" = none); tmp+rename
//!   wal.log        mutations since that checkpoint
//!   variants/      live containers written at register time
//!   ckpt-NNNNNN/   immutable checkpoint: MANIFEST + one container per
//!                  variant, re-exported from the registry at fold time
//! ```
//!
//! Recovery is `CURRENT` → checkpoint manifest → WAL fold: the
//! checkpoint supplies base state, then each intact WAL record mutates
//! it — a `Register` re-reads the live container, `Scrub` accumulates
//! ECC deltas, `Swap` advances the generation, `Unregister` removes the
//! variant. Compaction folds the log into a fresh checkpoint and
//! truncates it; `rollback` points `CURRENT` at an older checkpoint and
//! discards everything after it.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use af_resilience::EccStats;

use crate::container::{read_container, write_container, StoredVariant};
use crate::error::StoreError;
use crate::wal::{self, SyncPolicy, WalOp, WalWriter};

const CURRENT_FILE: &str = "CURRENT";
const WAL_FILE: &str = "wal.log";
const VARIANTS_DIR: &str = "variants";
const MANIFEST_FILE: &str = "MANIFEST";
/// Checkpoints kept on disk after a compaction (for rollback).
const KEEP_CHECKPOINTS: u64 = 2;

/// Counters the serving stats endpoint surfaces for the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Version of the active checkpoint (0 = none yet).
    pub checkpoint_version: u64,
    /// Records currently in the WAL (replayed + appended).
    pub wal_records: u64,
    /// WAL size in bytes, header included.
    pub wal_bytes: u64,
    /// WAL records replayed by the most recent open of this store.
    pub wal_replays: u64,
    /// Trailing WAL bytes dropped as torn at the most recent open.
    pub torn_tail_bytes_dropped: u64,
    /// Variants reconstructed from disk at the most recent open.
    pub recovered_variants: u64,
    /// Checkpoints folded by this handle.
    pub compactions: u64,
    /// Wall-clock cost of the most recent compaction, microseconds.
    pub last_compaction_us: u64,
    /// Container storage words corrected by SEC-DED while reading.
    pub ecc_corrected_on_read: u64,
}

impl StoreStats {
    /// Render as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"checkpoint_version\":{},\"wal_records\":{},\"wal_bytes\":{},\
             \"wal_replays\":{},\"torn_tail_bytes_dropped\":{},\
             \"recovered_variants\":{},\"compactions\":{},\
             \"last_compaction_us\":{},\"ecc_corrected_on_read\":{}}}",
            self.checkpoint_version,
            self.wal_records,
            self.wal_bytes,
            self.wal_replays,
            self.torn_tail_bytes_dropped,
            self.recovered_variants,
            self.compactions,
            self.last_compaction_us,
            self.ecc_corrected_on_read,
        )
    }
}

/// What [`Store::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovery {
    /// Every live variant with its WAL fold applied, in registration
    /// (WAL, then manifest) order.
    pub variants: Vec<StoredVariant>,
    /// WAL records replayed.
    pub wal_records_replayed: u64,
    /// Torn trailing WAL bytes dropped.
    pub torn_tail_bytes_dropped: u64,
}

/// Per-id accumulation of WAL effects between checkpoint base state and
/// the end of the log.
#[derive(Debug, Clone, Copy, Default)]
struct Fold {
    corrected: u64,
    uncorrectable: u64,
    scrub_records: u64,
    rebuilds: u64,
    max_generation: u64,
    reload_live: bool,
}

/// Handle over a store root: owns the WAL appender and the stats.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    wal: WalWriter,
    sync: SyncPolicy,
    checkpoint_version: u64,
    stats: StoreStats,
}

fn io_ctx(what: &str, path: &Path) -> impl FnOnce(std::io::Error) -> StoreError {
    let ctx = format!("{what} {}", path.display());
    move |e| StoreError::io(ctx, e)
}

/// Map a variant id to a collision-free container file name: keep
/// `[A-Za-z0-9._-]`, replace the rest with `_`, and suffix the CRC of
/// the full id so distinct ids never share a file.
pub fn container_file_name(id: &str) -> String {
    let mut san: String = id
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    san.truncate(64);
    format!("{san}-{:08x}.afc", crate::crc::crc32(id.as_bytes()))
}

fn ckpt_dir_name(version: u64) -> String {
    format!("ckpt-{version:06}")
}

fn write_text_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(io_ctx("writing", &tmp))?;
    let f = std::fs::File::open(&tmp).map_err(io_ctx("reopening", &tmp))?;
    f.sync_all().map_err(io_ctx("syncing", &tmp))?;
    std::fs::rename(&tmp, path).map_err(io_ctx("renaming into", path))?;
    Ok(())
}

impl Store {
    /// Open (or initialize) the store at `root`, replaying any
    /// checkpoint and WAL into a [`Recovery`].
    ///
    /// # Errors
    ///
    /// Any typed [`StoreError`]: unreadable root, a `CURRENT` naming a
    /// missing checkpoint, or a container that fails its checks. Torn
    /// WAL tails are *not* errors — they are dropped and counted.
    pub fn open(root: &Path, sync: SyncPolicy) -> Result<(Store, Recovery), StoreError> {
        std::fs::create_dir_all(root).map_err(io_ctx("creating store root", root))?;
        let variants_dir = root.join(VARIANTS_DIR);
        std::fs::create_dir_all(&variants_dir).map_err(io_ctx("creating", &variants_dir))?;

        // 1. Active checkpoint.
        let current_path = root.join(CURRENT_FILE);
        let checkpoint_version = if current_path.exists() {
            let text =
                std::fs::read_to_string(&current_path).map_err(io_ctx("reading", &current_path))?;
            text.trim()
                .parse::<u64>()
                .map_err(|_| StoreError::Malformed {
                    path: current_path.clone(),
                    context: format!("CURRENT does not name a version: {:?}", text.trim()),
                })?
        } else {
            0
        };

        // 2. Base state from the checkpoint manifest.
        let mut order: Vec<String> = Vec::new();
        let mut by_id: HashMap<String, StoredVariant> = HashMap::new();
        let mut ecc_corrected_on_read = 0u64;
        if checkpoint_version > 0 {
            let dir = root.join(ckpt_dir_name(checkpoint_version));
            if !dir.is_dir() {
                return Err(StoreError::MissingCheckpoint {
                    version: checkpoint_version,
                    path: dir,
                });
            }
            let manifest_path = dir.join(MANIFEST_FILE);
            let manifest = std::fs::read_to_string(&manifest_path)
                .map_err(io_ctx("reading", &manifest_path))?;
            for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
                let file = dir.join(line.trim());
                let (v, report) = read_container(&file)?;
                ecc_corrected_on_read += report.words_corrected as u64;
                order.push(v.spec.id.clone());
                by_id.insert(v.spec.id.clone(), v);
            }
        }

        // 3. Fold the WAL.
        let wal_path = root.join(WAL_FILE);
        let (wal, replayed, torn) = if wal_path.exists() {
            let rp = wal::replay(&wal_path)?;
            let mut folds: HashMap<String, Fold> = HashMap::new();
            for rec in &rp.records {
                match &rec.op {
                    WalOp::Register { id, generation } => {
                        // Last register wins and resets accumulated
                        // deltas: the fresh container already carries
                        // its own history.
                        if !by_id.contains_key(id) && !order.contains(id) {
                            order.push(id.clone());
                        }
                        folds.insert(
                            id.clone(),
                            Fold {
                                max_generation: *generation,
                                reload_live: true,
                                ..Fold::default()
                            },
                        );
                    }
                    WalOp::Scrub {
                        id,
                        corrected,
                        uncorrectable,
                        rebuilt,
                        generation,
                    } => {
                        let f = folds.entry(id.clone()).or_default();
                        f.corrected += corrected;
                        f.uncorrectable += uncorrectable;
                        f.scrub_records += 1;
                        f.rebuilds += u64::from(*rebuilt);
                        f.max_generation = f.max_generation.max(*generation);
                    }
                    WalOp::Swap { id, generation } => {
                        let f = folds.entry(id.clone()).or_default();
                        f.max_generation = f.max_generation.max(*generation);
                    }
                    WalOp::Unregister { id } => {
                        folds.remove(id);
                        by_id.remove(id);
                        order.retain(|o| o != id);
                    }
                }
            }
            // Apply folds: reload live containers for re-registered
            // ids, then layer the accumulated deltas on top.
            for (id, fold) in &folds {
                if fold.reload_live {
                    let file = variants_dir.join(container_file_name(id));
                    let (v, report) = read_container(&file)?;
                    if v.spec.id != *id {
                        return Err(StoreError::Malformed {
                            path: file,
                            context: format!(
                                "container holds id {:?} but the WAL registered {:?}",
                                v.spec.id, id
                            ),
                        });
                    }
                    ecc_corrected_on_read += report.words_corrected as u64;
                    if !order.contains(id) {
                        order.push(id.clone());
                    }
                    by_id.insert(id.clone(), v);
                }
                let Some(v) = by_id.get_mut(id) else {
                    // Scrub/swap records for an id whose register was
                    // checkpointed away and since unregistered — or a
                    // log written against a rolled-back checkpoint.
                    continue;
                };
                v.spec.generation = v.spec.generation.max(fold.max_generation);
                v.spec.rebuilds += fold.rebuilds;
                if fold.corrected + fold.uncorrectable + fold.scrub_records > 0 {
                    if let Some(layer) = v.layers.first_mut() {
                        layer.codes.absorb_stats(&EccStats {
                            corrected: fold.corrected,
                            detected_uncorrectable: fold.uncorrectable,
                            scrub_passes: fold.scrub_records,
                        });
                    }
                }
            }
            let records = rp.records.len() as u64;
            let torn = rp.torn_bytes_dropped;
            let wal = WalWriter::resume(&wal_path, sync, &rp)?;
            (wal, records, torn)
        } else {
            (WalWriter::create(&wal_path, sync)?, 0, 0)
        };

        let variants: Vec<StoredVariant> = order
            .into_iter()
            .filter_map(|id| by_id.remove(&id))
            .collect();
        let stats = StoreStats {
            checkpoint_version,
            wal_records: wal.records(),
            wal_bytes: wal.bytes(),
            wal_replays: replayed,
            torn_tail_bytes_dropped: torn,
            recovered_variants: variants.len() as u64,
            compactions: 0,
            last_compaction_us: 0,
            ecc_corrected_on_read,
        };
        let recovery = Recovery {
            variants,
            wal_records_replayed: replayed,
            torn_tail_bytes_dropped: torn,
        };
        Ok((
            Store {
                root: root.to_path_buf(),
                wal,
                sync,
                checkpoint_version,
                stats,
            },
            recovery,
        ))
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current counters (WAL figures refreshed).
    pub fn stats(&self) -> StoreStats {
        let mut s = self.stats;
        s.wal_records = self.wal.records();
        s.wal_bytes = self.wal.bytes();
        s.checkpoint_version = self.checkpoint_version;
        s
    }

    /// Durably persist a (re)registered variant: write its container
    /// into the live area first, then log the registration. A crash
    /// between the two leaves an orphan container that recovery
    /// ignores.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn persist_variant(&mut self, v: &StoredVariant) -> Result<(), StoreError> {
        let path = self
            .root
            .join(VARIANTS_DIR)
            .join(container_file_name(&v.spec.id));
        write_container(&path, v)?;
        self.wal.append(&WalOp::Register {
            id: v.spec.id.clone(),
            generation: v.spec.generation,
        })?;
        Ok(())
    }

    /// Log a scrub outcome.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn log_scrub(
        &mut self,
        id: &str,
        corrected: u64,
        uncorrectable: u64,
        rebuilt: bool,
        generation: u64,
    ) -> Result<u64, StoreError> {
        self.wal.append(&WalOp::Scrub {
            id: id.to_string(),
            corrected,
            uncorrectable,
            rebuilt,
            generation,
        })
    }

    /// Log a hot swap.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn log_swap(&mut self, id: &str, generation: u64) -> Result<u64, StoreError> {
        self.wal.append(&WalOp::Swap {
            id: id.to_string(),
            generation,
        })
    }

    /// Log an unregistration and remove the live container
    /// (best-effort; the WAL record is what recovery honors).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the WAL append fails.
    pub fn log_unregister(&mut self, id: &str) -> Result<u64, StoreError> {
        let seq = self.wal.append(&WalOp::Unregister { id: id.to_string() })?;
        let _ = std::fs::remove_file(self.root.join(VARIANTS_DIR).join(container_file_name(id)));
        Ok(seq)
    }

    /// Flush any batched WAL records to disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Fold the WAL into a fresh checkpoint built from `variants` (the
    /// caller re-exports current registry state), advance `CURRENT`,
    /// truncate the log, and clear the live area. Old checkpoints
    /// beyond a keep-window are pruned. Returns the new version.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure. The store stays on the
    /// old checkpoint if anything fails before `CURRENT` is rewritten.
    pub fn checkpoint(&mut self, variants: &[StoredVariant]) -> Result<u64, StoreError> {
        let t0 = Instant::now();
        let version = self.checkpoint_version + 1;
        let dir = self.root.join(ckpt_dir_name(version));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).map_err(io_ctx("clearing stale checkpoint", &dir))?;
        }
        std::fs::create_dir_all(&dir).map_err(io_ctx("creating checkpoint", &dir))?;
        let mut manifest = String::new();
        for v in variants {
            let file = container_file_name(&v.spec.id);
            write_container(&dir.join(&file), v)?;
            manifest.push_str(&file);
            manifest.push('\n');
        }
        write_text_atomic(&dir.join(MANIFEST_FILE), &manifest)?;
        // Point CURRENT at the new checkpoint — the commit point.
        write_text_atomic(&self.root.join(CURRENT_FILE), &format!("{version}\n"))?;
        self.checkpoint_version = version;
        // The log and live area are now folded in; reset both.
        self.wal = WalWriter::create(&self.root.join(WAL_FILE), self.sync)?;
        let live = self.root.join(VARIANTS_DIR);
        if let Ok(entries) = std::fs::read_dir(&live) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        // Prune checkpoints older than the keep-window.
        let mut pruned = version.saturating_sub(KEEP_CHECKPOINTS);
        while pruned > 0 {
            let old = self.root.join(ckpt_dir_name(pruned));
            if !old.exists() {
                break;
            }
            let _ = std::fs::remove_dir_all(&old);
            pruned -= 1;
        }
        self.stats.compactions += 1;
        self.stats.last_compaction_us = t0.elapsed().as_micros() as u64;
        Ok(version)
    }

    /// Roll a store root back to an older checkpoint: point `CURRENT`
    /// at `version` and discard the WAL and live containers written
    /// after it. The store must not be open elsewhere.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingCheckpoint`] if the checkpoint directory is
    /// gone; [`StoreError::Io`] on filesystem failure.
    pub fn rollback(root: &Path, version: u64) -> Result<(), StoreError> {
        if version > 0 {
            let dir = root.join(ckpt_dir_name(version));
            if !dir.is_dir() {
                return Err(StoreError::MissingCheckpoint { version, path: dir });
            }
        }
        write_text_atomic(&root.join(CURRENT_FILE), &format!("{version}\n"))?;
        let _ = std::fs::remove_file(root.join(WAL_FILE));
        if let Ok(entries) = std::fs::read_dir(root.join(VARIANTS_DIR)) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{LayerPayload, SpecRecord, StoredLayer};
    use adaptivfloat::FormatKind;
    use af_resilience::StorageCodec;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("af-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn variant(id: &str, generation: u64) -> StoredVariant {
        let w: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.05).collect();
        let codec = StorageCodec::fit(FormatKind::AdaptivFloat, 8, &w).unwrap();
        StoredVariant {
            spec: SpecRecord {
                id: id.to_string(),
                family: "ResNet".to_string(),
                dims: vec![4, 3],
                seed: 9,
                weight_format: Some((FormatKind::AdaptivFloat, 8)),
                act_format: None,
                protected: true,
                fused: false,
                format_label: "AdaptivFloat<8,3>+secded".to_string(),
                plans_built: 1,
                plan_cache_hits: 0,
                warmed_codebooks: 1,
                generation,
                rebuilds: 0,
            },
            layers: vec![StoredLayer {
                rows: 4,
                cols: 3,
                payload: LayerPayload::Codes {
                    kind: FormatKind::AdaptivFloat,
                    n: 8,
                    params: codec.params(),
                },
                codes: af_resilience::ProtectedCodes::protect(codec.encode_slice(&w)),
            }],
            act: None,
        }
    }

    #[test]
    fn register_crash_recover_roundtrips() {
        let root = tmp_root("reg");
        {
            let (mut store, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
            assert!(rec.variants.is_empty());
            store.persist_variant(&variant("m/a", 0)).unwrap();
            store.persist_variant(&variant("m/b", 0)).unwrap();
            // No clean shutdown: drop simulates the process dying.
        }
        let (store, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
        assert_eq!(rec.wal_records_replayed, 2);
        assert_eq!(rec.torn_tail_bytes_dropped, 0);
        let ids: Vec<&str> = rec.variants.iter().map(|v| v.spec.id.as_str()).collect();
        assert_eq!(ids, vec!["m/a", "m/b"]);
        assert_eq!(rec.variants[0], variant("m/a", 0));
        assert_eq!(store.stats().recovered_variants, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wal_fold_applies_scrubs_swaps_and_unregisters() {
        let root = tmp_root("fold");
        {
            let (mut store, _) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
            store.persist_variant(&variant("m/a", 0)).unwrap();
            store.persist_variant(&variant("m/b", 0)).unwrap();
            store.log_scrub("m/a", 3, 1, true, 1).unwrap();
            store.log_scrub("m/a", 2, 0, false, 1).unwrap();
            store.log_swap("m/a", 2).unwrap();
            store.log_unregister("m/b").unwrap();
        }
        let (_, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
        assert_eq!(rec.variants.len(), 1);
        let v = &rec.variants[0];
        assert_eq!(v.spec.id, "m/a");
        assert_eq!(v.spec.generation, 2);
        assert_eq!(v.spec.rebuilds, 1);
        let stats = v.layers[0].codes.stats();
        assert_eq!(stats.corrected, 5);
        assert_eq!(stats.detected_uncorrectable, 1);
        assert_eq!(stats.scrub_passes, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_folds_wal_and_survives_restart() {
        let root = tmp_root("ckpt");
        {
            let (mut store, _) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
            store.persist_variant(&variant("m/a", 0)).unwrap();
            store.log_scrub("m/a", 7, 0, false, 0).unwrap();
            // The caller folds current state into the checkpoint.
            let mut folded = variant("m/a", 0);
            folded.spec.generation = 4;
            let version = store.checkpoint(&[folded]).unwrap();
            assert_eq!(version, 1);
            let s = store.stats();
            assert_eq!(s.checkpoint_version, 1);
            assert_eq!(s.wal_records, 0);
            assert_eq!(s.compactions, 1);
            // Post-checkpoint mutations land in the fresh WAL.
            store.log_swap("m/a", 5).unwrap();
        }
        let (store, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
        assert_eq!(store.stats().checkpoint_version, 1);
        assert_eq!(rec.wal_records_replayed, 1);
        assert_eq!(rec.variants.len(), 1);
        assert_eq!(rec.variants[0].spec.generation, 5);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rollback_discards_later_state() {
        let root = tmp_root("rollback");
        {
            let (mut store, _) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
            store.persist_variant(&variant("m/a", 0)).unwrap();
            store.checkpoint(&[variant("m/a", 0)]).unwrap();
            store.persist_variant(&variant("m/new", 0)).unwrap();
            store.log_swap("m/a", 9).unwrap();
        }
        Store::rollback(&root, 1).unwrap();
        let (store, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
        assert_eq!(store.stats().checkpoint_version, 1);
        assert_eq!(rec.variants.len(), 1);
        assert_eq!(rec.variants[0].spec.id, "m/a");
        assert_eq!(rec.variants[0].spec.generation, 0);
        assert_eq!(rec.wal_records_replayed, 0);
        // Rolling back to a pruned checkpoint fails typed.
        assert_eq!(
            Store::rollback(&root, 42).unwrap_err().kind(),
            "missing_checkpoint"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn current_naming_missing_checkpoint_fails_typed() {
        let root = tmp_root("missing");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(CURRENT_FILE), "3\n").unwrap();
        let err = Store::open(&root, SyncPolicy::EveryRecord).unwrap_err();
        assert_eq!(err.kind(), "missing_checkpoint");
        std::fs::write(root.join(CURRENT_FILE), "not-a-number\n").unwrap();
        assert_eq!(
            Store::open(&root, SyncPolicy::EveryRecord)
                .unwrap_err()
                .kind(),
            "malformed"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn container_file_names_never_collide() {
        let a = container_file_name("model/α:8");
        let b = container_file_name("model_–:8");
        assert_ne!(a, b);
        assert!(a.ends_with(".afc"));
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
    }

    #[test]
    fn reregister_resets_fold_deltas() {
        let root = tmp_root("rereg");
        {
            let (mut store, _) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
            store.persist_variant(&variant("m/a", 0)).unwrap();
            store.log_scrub("m/a", 100, 0, false, 0).unwrap();
            // Re-register: a new container supersedes the history.
            store.persist_variant(&variant("m/a", 1)).unwrap();
        }
        let (_, rec) = Store::open(&root, SyncPolicy::EveryRecord).unwrap();
        assert_eq!(rec.variants.len(), 1);
        assert_eq!(rec.variants[0].spec.generation, 1);
        assert_eq!(rec.variants[0].layers[0].codes.stats().corrected, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
