//! The typed failure surface of the durable store. Corrupt, truncated,
//! or version-skewed files must surface as one of these variants —
//! **never** as a panic — so a recovering engine can refuse bad state
//! and an operator can roll back to an earlier checkpoint.

use std::io;
use std::path::PathBuf;

/// Why a store, container, or log operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// What the store was doing.
        context: String,
        /// The OS error.
        source: io::Error,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// File inspected.
        path: PathBuf,
        /// The magic that was expected.
        expected: &'static [u8; 8],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// File inspected.
        path: PathBuf,
        /// Version found in the header.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// The file ended mid-structure (no END section / partial header).
    Truncated {
        /// File inspected.
        path: PathBuf,
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section or record failed its CRC (and, for ECC-carrying weight
    /// sections, could not be repaired by the SEC-DED parity either).
    Corrupt {
        /// File inspected.
        path: PathBuf,
        /// Which section/record failed.
        context: String,
    },
    /// The bytes parsed but describe an impossible object (zero-width
    /// codes, mismatched parity length, unknown enum tag, …).
    Malformed {
        /// File inspected.
        path: PathBuf,
        /// What was inconsistent.
        context: String,
    },
    /// `CURRENT` names a checkpoint that does not exist on disk.
    MissingCheckpoint {
        /// The checkpoint version referenced.
        version: u64,
        /// Where it was expected.
        path: PathBuf,
    },
    /// A stored variant could not be rebuilt into a servable snapshot
    /// (geometry mismatch against the synthesis seed, unknown family, …).
    Restore {
        /// The variant id.
        id: String,
        /// What failed.
        context: String,
    },
}

impl StoreError {
    /// Helper: wrap an [`io::Error`] with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> StoreError {
        StoreError::Io {
            context: context.into(),
            source,
        }
    }

    /// A short machine-readable label for the error class (used by
    /// `store_inspect` JSON output and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "io",
            StoreError::BadMagic { .. } => "bad_magic",
            StoreError::UnsupportedVersion { .. } => "unsupported_version",
            StoreError::Truncated { .. } => "truncated",
            StoreError::Corrupt { .. } => "corrupt",
            StoreError::Malformed { .. } => "malformed",
            StoreError::MissingCheckpoint { .. } => "missing_checkpoint",
            StoreError::Restore { .. } => "restore",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "io error while {context}: {source}"),
            StoreError::BadMagic { path, expected } => write!(
                f,
                "{} is not a store file (expected magic {:?})",
                path.display(),
                String::from_utf8_lossy(&expected[..])
            ),
            StoreError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{}: format version {found} is newer than supported {supported}",
                path.display()
            ),
            StoreError::Truncated { path, context } => {
                write!(f, "{} is truncated ({context})", path.display())
            }
            StoreError::Corrupt { path, context } => {
                write!(f, "{} is corrupt: {context}", path.display())
            }
            StoreError::Malformed { path, context } => {
                write!(f, "{} is malformed: {context}", path.display())
            }
            StoreError::MissingCheckpoint { version, path } => write!(
                f,
                "checkpoint {version} referenced by CURRENT is missing at {}",
                path.display()
            ),
            StoreError::Restore { id, context } => {
                write!(f, "cannot restore variant {id}: {context}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
