//! Append-only write-ahead log for registry mutations.
//!
//! ```text
//! header "AFWALLOG" · version u16
//! record*  :=  len u32 · crc32 u32 · payload[len]
//!   payload := seq u64 · type u8 · body
//!     type 1 = Register   { id, generation }
//!     type 2 = Scrub      { id, corrected, uncorrectable, rebuilt, generation }
//!     type 3 = Swap       { id, generation }
//!     type 4 = Unregister { id }
//! ```
//!
//! Replay stops at the first record whose framing, checksum, payload,
//! or sequence number is wrong and reports how many trailing bytes it
//! dropped — a torn final record from a crash mid-append disappears
//! cleanly instead of poisoning recovery. Appends re-truncate the file
//! at the replayed high-water mark before writing, so a dropped tail is
//! physically removed the first time the log is reopened for writing.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::bytes::{ByteReader, ByteWriter};
use crate::crc::crc32;
use crate::error::StoreError;

/// WAL file magic bytes.
pub const WAL_MAGIC: &[u8; 8] = b"AFWALLOG";
/// WAL format version written and accepted.
pub const WAL_VERSION: u16 = 1;

const HEADER_LEN: u64 = 10;
/// Sanity bound on a single record payload; real records are < 1 KiB.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// One durable registry mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A variant was (re)registered; its container was written to the
    /// live area immediately before this record.
    Register {
        /// Registry key.
        id: String,
        /// Generation assigned by the registry.
        generation: u64,
    },
    /// A scrub pass ran over a protected variant.
    Scrub {
        /// Registry key.
        id: String,
        /// Words corrected by this pass.
        corrected: u64,
        /// Uncorrectable (double-bit) words detected.
        uncorrectable: u64,
        /// Whether the pass re-encoded storage from the f32 master.
        rebuilt: bool,
        /// Generation after any rebuild republish.
        generation: u64,
    },
    /// A hot swap republished the variant's snapshot.
    Swap {
        /// Registry key.
        id: String,
        /// New generation.
        generation: u64,
    },
    /// The variant was removed from the registry.
    Unregister {
        /// Registry key.
        id: String,
    },
}

impl WalOp {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            WalOp::Register { .. } => "register",
            WalOp::Scrub { .. } => "scrub",
            WalOp::Swap { .. } => "swap",
            WalOp::Unregister { .. } => "unregister",
        }
    }

    fn encode(&self, seq: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(seq);
        match self {
            WalOp::Register { id, generation } => {
                w.put_u8(1);
                w.put_str(id);
                w.put_u64(*generation);
            }
            WalOp::Scrub {
                id,
                corrected,
                uncorrectable,
                rebuilt,
                generation,
            } => {
                w.put_u8(2);
                w.put_str(id);
                w.put_u64(*corrected);
                w.put_u64(*uncorrectable);
                w.put_u8(*rebuilt as u8);
                w.put_u64(*generation);
            }
            WalOp::Swap { id, generation } => {
                w.put_u8(3);
                w.put_str(id);
                w.put_u64(*generation);
            }
            WalOp::Unregister { id } => {
                w.put_u8(4);
                w.put_str(id);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<(u64, WalOp)> {
        let mut r = ByteReader::new(payload);
        let seq = r.get_u64("wal seq").ok()?;
        let op = match r.get_u8("wal type").ok()? {
            1 => WalOp::Register {
                id: r.get_str("wal id").ok()?,
                generation: r.get_u64("wal generation").ok()?,
            },
            2 => WalOp::Scrub {
                id: r.get_str("wal id").ok()?,
                corrected: r.get_u64("wal corrected").ok()?,
                uncorrectable: r.get_u64("wal uncorrectable").ok()?,
                rebuilt: match r.get_u8("wal rebuilt").ok()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
                generation: r.get_u64("wal generation").ok()?,
            },
            3 => WalOp::Swap {
                id: r.get_str("wal id").ok()?,
                generation: r.get_u64("wal generation").ok()?,
            },
            4 => WalOp::Unregister {
                id: r.get_str("wal id").ok()?,
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None;
        }
        Some((seq, op))
    }
}

/// A replayed record: its sequence number and operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (starts at 1 in a fresh log).
    pub seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

/// The result of replaying a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last intact record — where an
    /// appender must truncate before continuing.
    pub valid_bytes: u64,
    /// Trailing bytes dropped because the final record was torn or
    /// corrupt.
    pub torn_bytes_dropped: u64,
    /// The sequence number the next append should use.
    pub next_seq: u64,
}

/// Replay a WAL file from disk. A missing file is an [`StoreError::Io`]
/// (callers that tolerate a fresh store check existence first); a file
/// with the wrong magic or a newer version fails typed. Torn or corrupt
/// tails are dropped, never fatal.
///
/// # Errors
///
/// [`StoreError::Io`], [`StoreError::BadMagic`],
/// [`StoreError::UnsupportedVersion`], or [`StoreError::Truncated`]
/// when even the header is short.
pub fn replay(path: &Path) -> Result<WalReplay, StoreError> {
    let bytes = std::fs::read(path)
        .map_err(|e| StoreError::io(format!("reading WAL {}", path.display()), e))?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            context: "WAL header".to_string(),
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
            expected: WAL_MAGIC,
        });
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version > WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: WAL_VERSION,
        });
    }
    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut next_seq = 1u64;
    while pos < bytes.len() {
        let start = pos;
        if bytes.len() - pos < 8 {
            break; // torn record header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || (len as usize) > bytes.len() - pos - 8 {
            pos = start;
            break; // torn length or payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != stored_crc {
            pos = start;
            break; // corrupt record
        }
        let Some((seq, op)) = WalOp::decode(payload) else {
            pos = start;
            break; // unparseable payload
        };
        if seq != next_seq {
            pos = start;
            break; // sequence discontinuity: treat the rest as torn
        }
        records.push(WalRecord { seq, op });
        next_seq = seq + 1;
        pos += 8 + len as usize;
    }
    Ok(WalReplay {
        records,
        valid_bytes: pos as u64,
        torn_bytes_dropped: (bytes.len() - pos) as u64,
        next_seq,
    })
}

/// When appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every record — maximum durability, one syscall per
    /// mutation.
    EveryRecord,
    /// `fsync` once every `n` records (and on [`WalWriter::sync`] /
    /// drop-to-checkpoint boundaries). A crash can lose at most the
    /// last `n - 1` acknowledged records; replay still never sees a
    /// half-written one.
    Batch(u32),
}

/// Appender over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    next_seq: u64,
    records: u64,
    bytes: u64,
    policy: SyncPolicy,
    unsynced: u32,
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file),
    /// write and sync the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn create(path: &Path, policy: SyncPolicy) -> Result<WalWriter, StoreError> {
        let ctx = |what: &str| format!("{what} WAL {}", path.display());
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::io(ctx("creating"), e))?;
        file.write_all(WAL_MAGIC)
            .and_then(|()| file.write_all(&WAL_VERSION.to_le_bytes()))
            .map_err(|e| StoreError::io(ctx("writing header of"), e))?;
        file.sync_all()
            .map_err(|e| StoreError::io(ctx("syncing"), e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_seq: 1,
            records: 0,
            bytes: HEADER_LEN,
            policy,
            unsynced: 0,
        })
    }

    /// Resume appending to a replayed WAL: truncate at the replay's
    /// high-water mark (physically dropping any torn tail) and continue
    /// the sequence.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn resume(
        path: &Path,
        policy: SyncPolicy,
        rp: &WalReplay,
    ) -> Result<WalWriter, StoreError> {
        let ctx = |what: &str| format!("{what} WAL {}", path.display());
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(ctx("opening"), e))?;
        file.set_len(rp.valid_bytes)
            .map_err(|e| StoreError::io(ctx("truncating torn tail of"), e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io(ctx("seeking"), e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_seq: rp.next_seq,
            records: rp.records.len() as u64,
            bytes: rp.valid_bytes,
            policy,
            unsynced: 0,
        })
    }

    /// Append one record, honoring the sync policy. Returns the
    /// record's sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn append(&mut self, op: &WalOp) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let payload = op.encode(seq);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(format!("appending to WAL {}", self.path.display()), e))?;
        self.next_seq += 1;
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        let due = match self.policy {
            SyncPolicy::EveryRecord => true,
            SyncPolicy::Batch(n) => self.unsynced >= n.max(1),
        };
        if due {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Force an `fsync` of everything appended so far.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(format!("syncing WAL {}", self.path.display()), e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Records durable in this log (replayed plus appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes in the log, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("af-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ops() -> Vec<WalOp> {
        vec![
            WalOp::Register {
                id: "a/b".to_string(),
                generation: 0,
            },
            WalOp::Scrub {
                id: "a/b".to_string(),
                corrected: 3,
                uncorrectable: 1,
                rebuilt: true,
                generation: 1,
            },
            WalOp::Swap {
                id: "a/b".to_string(),
                generation: 2,
            },
            WalOp::Unregister {
                id: "a/b".to_string(),
            },
        ]
    }

    #[test]
    fn append_replay_roundtrips_all_op_types() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryRecord).unwrap();
        for op in ops() {
            w.append(&op).unwrap();
        }
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 4);
        assert_eq!(rp.torn_bytes_dropped, 0);
        assert_eq!(rp.next_seq, 5);
        assert_eq!(
            rp.records.iter().map(|r| r.op.clone()).collect::<Vec<_>>(),
            ops()
        );
        assert_eq!(
            rp.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_resume() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryRecord).unwrap();
        for op in ops().into_iter().take(2) {
            w.append(&op).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Tear the final record at every possible byte boundary.
        let rp_full = replay(&path).unwrap();
        let second_start = {
            // Find where record 2 starts: replay record 1 only.
            let mut probe = full.clone();
            probe.truncate(full.len() - 1);
            std::fs::write(&path, &probe).unwrap();
            let rp = replay(&path).unwrap();
            assert_eq!(rp.records.len(), 1);
            rp.valid_bytes as usize
        };
        for cut in second_start..full.len() - 1 {
            let mut torn = full.clone();
            torn.truncate(cut);
            std::fs::write(&path, &torn).unwrap();
            let rp = replay(&path).unwrap();
            assert_eq!(rp.records.len(), 1, "cut at {cut}");
            assert_eq!(rp.torn_bytes_dropped as usize, cut - second_start);
            assert_eq!(rp.next_seq, 2);
        }
        // Resuming after a tear truncates the file and keeps sequencing.
        let mut torn = full.clone();
        torn.truncate(full.len() - 3);
        std::fs::write(&path, &torn).unwrap();
        let rp = replay(&path).unwrap();
        let mut w = WalWriter::resume(&path, SyncPolicy::EveryRecord, &rp).unwrap();
        let seq = w
            .append(&WalOp::Swap {
                id: "a/b".to_string(),
                generation: 7,
            })
            .unwrap();
        assert_eq!(seq, 2);
        drop(w);
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 2);
        assert_eq!(rp.torn_bytes_dropped, 0);
        assert_eq!(
            rp.records[1].op,
            WalOp::Swap {
                id: "a/b".to_string(),
                generation: 7
            }
        );
        assert_eq!(rp_full.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_in_record_drops_it_and_the_rest() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryRecord).unwrap();
        for op in ops() {
            w.append(&op).unwrap();
        }
        drop(w);
        let clean = std::fs::read(&path).unwrap();
        for at in HEADER_LEN as usize..clean.len() {
            let mut bent = clean.clone();
            bent[at] ^= 0x40;
            std::fs::write(&path, &bent).unwrap();
            let rp = replay(&path).unwrap();
            assert!(rp.records.len() < 4, "flip at {at} survived");
            // Everything replayed must be one of the real records.
            for (i, rec) in rp.records.iter().enumerate() {
                assert_eq!(rec.op, ops()[i], "flip at {at} corrupted record {i}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_and_version_fail_typed() {
        let dir = tmpdir("magic");
        let path = dir.join("wal.log");
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert_eq!(replay(&path).unwrap_err().kind(), "truncated");
        std::fs::write(&path, b"NOTAWAL!\x01\x00").unwrap();
        assert_eq!(replay(&path).unwrap_err().kind(), "bad_magic");
        let mut hdr = WAL_MAGIC.to_vec();
        hdr.extend_from_slice(&99u16.to_le_bytes());
        std::fs::write(&path, &hdr).unwrap();
        assert_eq!(replay(&path).unwrap_err().kind(), "unsupported_version");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_sync_policy_still_replays_cleanly() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, SyncPolicy::Batch(8)).unwrap();
        for i in 0..20u64 {
            w.append(&WalOp::Swap {
                id: format!("v{}", i % 3),
                generation: i,
            })
            .unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.records(), 20);
        drop(w);
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 20);
        assert_eq!(rp.next_seq, 21);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
