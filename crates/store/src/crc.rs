//! CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32` variant) — the
//! per-section integrity check of the container format and the
//! per-record check of the write-ahead log.
//!
//! The workspace builds without network access, so the checksum is
//! implemented here: a 256-entry table generated at first use behind a
//! `OnceLock`, reflected polynomial `0xEDB8_8320`, init and final XOR
//! `0xFFFF_FFFF` — byte-for-byte the checksum `zlib.crc32` produces,
//! which keeps the format verifiable from Python in CI.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE polynomial, zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xA5u8; 257];
        let clean = crc32(&data);
        for byte in [0usize, 1, 128, 256] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
