//! `af-store`: the durable model store.
//!
//! Serving state in this workspace is expensive to build (quantization
//! plans, codebooks, SEC-DED parity) and deliberately deterministic.
//! This crate makes it *durable*: each frozen variant persists as a
//! compact, versioned, checksummed container (packed codes + frozen
//! per-layer plan parameters + SEC-DED parity), registry mutations
//! stream through an append-only write-ahead log, and compaction folds
//! the log into immutable, rollback-able checkpoints. A serving
//! process that dies mid-traffic reopens the store and republishes
//! bit-identical variants without ever touching the f32 master — zero
//! requantization on the recovery path.
//!
//! Layers, bottom-up:
//!
//! - [`crc`] / [`bytes`]: CRC-32 (IEEE, zlib-compatible) and
//!   bounds-checked little-endian (de)serialization.
//! - [`container`]: the `.afc` single-variant format. Per-section CRCs;
//!   LAYER sections additionally self-heal single-bit flips through
//!   their own SEC-DED parity.
//! - [`wal`]: the mutation log. Torn tails drop cleanly; batched
//!   `fsync`.
//! - [`store`]: the root-directory layout (`CURRENT`, `wal.log`,
//!   `variants/`, `ckpt-NNNNNN/`), recovery fold, checkpointing,
//!   rollback.
//!
//! Everything fails typed ([`StoreError`]) — corrupt or truncated input
//! never panics.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bytes;
pub mod container;
pub mod crc;
mod error;
pub mod store;
pub mod wal;

pub use container::{
    decode_container, encode_container, raw_f32_codes, read_container, write_container, ActRecord,
    LayerPayload, ReadReport, SpecRecord, StoredLayer, StoredVariant, CONTAINER_MAGIC,
    CONTAINER_VERSION,
};
pub use error::StoreError;
pub use store::{container_file_name, Recovery, Store, StoreStats};
pub use wal::{replay, SyncPolicy, WalOp, WalRecord, WalReplay, WalWriter, WAL_MAGIC, WAL_VERSION};
