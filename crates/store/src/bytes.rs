//! Bounds-checked little-endian byte (de)serialization.
//!
//! Every length field read from disk is validated against the bytes
//! actually remaining **before** any allocation is sized from it, so a
//! corrupt or adversarial file can at worst produce a typed error —
//! never an OOM or a panic.

/// Append-only little-endian encoder backing container sections and WAL
/// record payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f32 as its IEEE-754 bit pattern (bit-exact roundtrip,
    /// including NaN payloads and signed zeros).
    pub fn put_f32_bits(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an f64 as its bit pattern.
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string (u32 length).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes with no length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed u64 slice (u64 count).
    pub fn put_u64_slice(&mut self, vals: &[u64]) {
        self.put_u64(vals.len() as u64);
        for &v in vals {
            self.put_u64(v);
        }
    }

    /// Append a length-prefixed f32-bits slice (u64 count).
    pub fn put_f32_slice(&mut self, vals: &[f32]) {
        self.put_u64(vals.len() as u64);
        for &v in vals {
            self.put_f32_bits(v);
        }
    }
}

/// Cursor over a borrowed byte slice; every read checks remaining
/// length and reports a descriptive context string on underrun.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error produced by [`ByteReader`]: the slice ran out (or a count was
/// implausible) while reading the named field. Mapped to
/// [`StoreError::Truncated`](crate::StoreError::Truncated) or
/// [`StoreError::Malformed`](crate::StoreError::Malformed) by callers
/// that know which file the bytes came from.
#[derive(Debug, Clone)]
pub struct ShortRead {
    /// The field being decoded when the bytes ran out.
    pub context: &'static str,
    /// True when the failure is a length field larger than the
    /// remaining bytes (malformed) rather than a plain underrun.
    pub bad_count: bool,
}

impl std::fmt::Display for ShortRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.bad_count {
            write!(
                f,
                "length field for {} exceeds remaining bytes",
                self.context
            )
        } else {
            write!(f, "unexpected end of input reading {}", self.context)
        }
    }
}

impl<'a> ByteReader<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ShortRead> {
        if self.remaining() < n {
            return Err(ShortRead {
                context,
                bad_count: false,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, ShortRead> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, ShortRead> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, ShortRead> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, ShortRead> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian i32.
    pub fn get_i32(&mut self, context: &'static str) -> Result<i32, ShortRead> {
        Ok(self.get_u32(context)? as i32)
    }

    /// Read an f32 from its stored bit pattern.
    pub fn get_f32_bits(&mut self, context: &'static str) -> Result<f32, ShortRead> {
        Ok(f32::from_bits(self.get_u32(context)?))
    }

    /// Read an f64 from its stored bit pattern.
    pub fn get_f64_bits(&mut self, context: &'static str) -> Result<f64, ShortRead> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Read a u64 count field, validating it against the remaining
    /// bytes at `elem_size` bytes per element before returning.
    pub fn get_count(
        &mut self,
        elem_size: usize,
        context: &'static str,
    ) -> Result<usize, ShortRead> {
        let n = self.get_u64(context)?;
        let need = (n as u128) * (elem_size as u128);
        if need > self.remaining() as u128 {
            return Err(ShortRead {
                context,
                bad_count: true,
            });
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string (u32 length). Rejects
    /// lengths past the remaining bytes and invalid UTF-8.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, ShortRead> {
        let n = self.get_u32(context)? as usize;
        if n > self.remaining() {
            return Err(ShortRead {
                context,
                bad_count: true,
            });
        }
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ShortRead {
            context,
            bad_count: true,
        })
    }

    /// Read a length-prefixed u64 slice (u64 count, validated).
    pub fn get_u64_slice(&mut self, context: &'static str) -> Result<Vec<u64>, ShortRead> {
        let n = self.get_count(8, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u64(context)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed f32 slice (u64 count, validated).
    pub fn get_f32_slice(&mut self, context: &'static str) -> Result<Vec<f32>, ShortRead> {
        let n = self.get_count(4, context)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32_bits(context)?);
        }
        Ok(out)
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> Result<Vec<u8>, ShortRead> {
        Ok(self.take(n, context)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i32(-42);
        w.put_f32_bits(-0.0);
        w.put_f64_bits(f64::NAN);
        w.put_str("変 variant-α");
        w.put_u64_slice(&[1, 2, 3]);
        w.put_f32_slice(&[1.5, -2.25]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.get_u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("d").unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i32("e").unwrap(), -42);
        let z = r.get_f32_bits("f").unwrap();
        assert_eq!(z.to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64_bits("g").unwrap().is_nan());
        assert_eq!(r.get_str("h").unwrap(), "変 variant-α");
        assert_eq!(r.get_u64_slice("i").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f32_slice("j").unwrap(), vec![1.5, -2.25]);
        assert!(r.is_empty());
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.get_u32("field").unwrap_err();
        assert!(!err.bad_count);
        assert_eq!(err.context, "field");
    }

    #[test]
    fn huge_count_field_rejected_before_allocating() {
        // A count of u64::MAX must not size an allocation.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.get_u64_slice("words").unwrap_err();
        assert!(err.bad_count);
    }

    #[test]
    fn string_length_past_end_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1000);
        w.put_bytes(b"short");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str("id").unwrap_err().bad_count);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_str("id").is_err());
    }
}
