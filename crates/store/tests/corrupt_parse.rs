//! Property/fuzz tests for the container and WAL parsers: arbitrary
//! truncations, random byte flips, random garbage, and torn final WAL
//! records must all produce typed errors (or clean drops) — never a
//! panic, never an OOM-sized allocation, and never silently wrong data.

use std::path::{Path, PathBuf};

use adaptivfloat::{FormatKind, PlanParams};
use af_resilience::{ProtectedCodes, StorageCodec};
use af_store::{
    decode_container, encode_container, raw_f32_codes, ActRecord, LayerPayload, SpecRecord,
    StoreError, StoredLayer, StoredVariant, SyncPolicy, WalOp, WalWriter,
};
use proptest::prelude::*;

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("af-store-fuzz-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a deterministic variant parameterized by the fuzz inputs so
/// different cases exercise different section sizes and formats.
fn make_variant(seed: u64, rows: usize, cols: usize, quantized: bool, act: bool) -> StoredVariant {
    let count = rows * cols;
    let weights: Vec<f32> = (0..count)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed) % 4001;
            (x as f32 - 2000.0) * 1e-3
        })
        .collect();
    let (payload, codes) = if quantized {
        let codec = StorageCodec::fit(FormatKind::AdaptivFloat, 8, &weights).unwrap();
        (
            LayerPayload::Codes {
                kind: FormatKind::AdaptivFloat,
                n: 8,
                params: codec.params(),
            },
            ProtectedCodes::protect(codec.encode_slice(&weights)),
        )
    } else {
        (LayerPayload::RawF32, raw_f32_codes(&weights))
    };
    StoredVariant {
        spec: SpecRecord {
            id: format!("fuzz/v{seed}"),
            family: "ResNet".to_string(),
            dims: vec![rows, cols],
            seed,
            weight_format: quantized.then_some((FormatKind::AdaptivFloat, 8)),
            act_format: act.then_some((FormatKind::AdaptivFloat, 8)),
            protected: quantized,
            fused: false,
            format_label: "fuzz".to_string(),
            plans_built: 1,
            plan_cache_hits: 0,
            warmed_codebooks: 0,
            generation: seed % 5,
            rebuilds: 0,
        },
        layers: vec![StoredLayer {
            rows,
            cols,
            payload,
            codes,
        }],
        act: act.then(|| ActRecord {
            kind: FormatKind::AdaptivFloat,
            n: 8,
            maxes: vec![1.0 + (seed % 7) as f32 * 0.25],
        }),
    }
}

fn assert_typed(err: &StoreError) {
    // Exercise the Display/kind paths too — they must not panic either.
    let kind = err.kind();
    assert!(
        matches!(
            kind,
            "io" | "bad_magic"
                | "unsupported_version"
                | "truncated"
                | "corrupt"
                | "malformed"
                | "missing_checkpoint"
                | "restore"
        ),
        "unknown error kind {kind}"
    );
    let _ = err.to_string();
}

proptest! {
    /// Any prefix of a valid container either parses to the original
    /// (full length) or fails typed.
    #[test]
    fn container_truncation_never_panics(
        seed in 0u64..1000,
        rows in 1usize..12,
        cols in 1usize..12,
        shape in 0u8..4,
        frac in 0.0f64..1.0,
    ) {
        let (quantized, act) = (shape & 1 != 0, shape & 2 != 0);
        let v = make_variant(seed, rows, cols, quantized, act);
        let bytes = encode_container(&v);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match decode_container(&bytes[..cut], Path::new("mem")) {
            Ok(_) => prop_assert_eq!(cut, bytes.len()),
            Err(e) => assert_typed(&e),
        }
    }

    /// A single flipped bit anywhere in a container either (a) fails
    /// typed, or (b) parses successfully — in which case it landed in a
    /// SEC-DED-protected LAYER word, was repaired, and the decoded
    /// weights are bit-identical to the clean file's.
    #[test]
    fn container_bit_flip_is_repaired_or_typed(
        seed in 0u64..1000,
        rows in 1usize..10,
        cols in 1usize..10,
        shape in 0u8..4,
        pos_sel in 0u64..u64::MAX,
        bit in 0u8..8,
    ) {
        let (quantized, act) = (shape & 1 != 0, shape & 2 != 0);
        let v = make_variant(seed, rows, cols, quantized, act);
        let clean = encode_container(&v);
        let pos = (pos_sel % clean.len() as u64) as usize;
        let mut bent = clean.clone();
        bent[pos] ^= 1 << bit;
        match decode_container(&bent, Path::new("mem")) {
            Err(e) => assert_typed(&e),
            Ok((back, report)) => {
                prop_assert!(
                    report.sections_repaired > 0,
                    "flip at byte {} accepted without repair", pos
                );
                let (got, _) = back.layers[0].decode_values().unwrap();
                let (want, _) = v.layers[0].decode_values().unwrap();
                let gb: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                let wb: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(gb, wb);
            }
        }
    }

    /// Pure garbage never panics the container parser.
    #[test]
    fn container_garbage_never_panics(garbage in prop::collection::vec(0u8..=255, 0..4096)) {
        if let Err(e) = decode_container(&garbage, Path::new("mem")) {
            assert_typed(&e);
        }
    }

    /// Garbage with a valid header still never panics — this drives the
    /// section state machine instead of bouncing off the magic check.
    #[test]
    fn container_garbage_after_header_never_panics(
        garbage in prop::collection::vec(0u8..=255, 0..4096),
    ) {
        let mut bytes = b"AFSTORE1\x01\x00".to_vec();
        bytes.extend_from_slice(&garbage);
        if let Err(e) = decode_container(&bytes, Path::new("mem")) {
            assert_typed(&e);
        }
    }

    /// A WAL torn at any byte replays only intact records, drops the
    /// tail cleanly, and resumes with correct sequencing.
    #[test]
    fn wal_torn_anywhere_replays_cleanly(
        case in 0u64..1_000_000,
        nrecords in 1usize..12,
        frac in 0.0f64..1.0,
    ) {
        let dir = scratch("torn", case);
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, SyncPolicy::EveryRecord).unwrap();
        let ops: Vec<WalOp> = (0..nrecords)
            .map(|i| match i % 4 {
                0 => WalOp::Register { id: format!("v{i}"), generation: i as u64 },
                1 => WalOp::Scrub {
                    id: format!("v{i}"),
                    corrected: i as u64,
                    uncorrectable: 0,
                    rebuilt: i % 2 == 0,
                    generation: i as u64,
                },
                2 => WalOp::Swap { id: format!("v{i}"), generation: i as u64 },
                _ => WalOp::Unregister { id: format!("v{i}") },
            })
            .collect();
        for op in &ops {
            w.append(op).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let cut = 10 + (((full.len() - 10) as f64) * frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();
        let rp = af_store::replay(&path).unwrap();
        // Replayed records are an exact prefix of what was written.
        for (i, rec) in rp.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1);
            prop_assert_eq!(&rec.op, &ops[i]);
        }
        prop_assert_eq!(
            rp.valid_bytes + rp.torn_bytes_dropped,
            cut as u64
        );
        // Resume after the tear keeps sequencing contiguous.
        let mut w = WalWriter::resume(&path, SyncPolicy::EveryRecord, &rp).unwrap();
        let seq = w.append(&WalOp::Swap { id: "tail".to_string(), generation: 0 }).unwrap();
        prop_assert_eq!(seq, rp.records.len() as u64 + 1);
        drop(w);
        let rp2 = af_store::replay(&path).unwrap();
        prop_assert_eq!(rp2.records.len(), rp.records.len() + 1);
        prop_assert_eq!(rp2.torn_bytes_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Random garbage WAL bodies never panic replay, and byte
    /// accounting always balances.
    #[test]
    fn wal_garbage_never_panics(garbage in prop::collection::vec(0u8..=255, 0..2048)) {
        let dir = scratch("garbage", garbage.len() as u64);
        let path = dir.join("wal.log");
        let mut bytes = b"AFWALLOG\x01\x00".to_vec();
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();
        let rp = af_store::replay(&path).unwrap();
        prop_assert_eq!(
            rp.valid_bytes + rp.torn_bytes_dropped,
            bytes.len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn params_mismatch_fails_typed_on_decode() {
    // A container whose stored params disagree with its format kind
    // must fail decode_values typed, not panic.
    let mut v = make_variant(1, 3, 3, true, false);
    if let LayerPayload::Codes { params, .. } = &mut v.layers[0].payload {
        *params = PlanParams::Uniform { scale: 0.5 };
    }
    let bytes = encode_container(&v);
    let (back, _) = decode_container(&bytes, Path::new("mem")).unwrap();
    let err = back.layers[0].decode_values().unwrap_err();
    assert_eq!(err.kind(), "malformed");
}
