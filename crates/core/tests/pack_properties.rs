//! Property tests for `core::pack::PackedCodes` — the storage layer the
//! fault-injection subsystem corrupts, so its addressing must be exact
//! for every width, including codes straddling `u64` word boundaries.

use adaptivfloat::PackedCodes;
use proptest::prelude::*;

fn width_mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    /// push → get/iter round-trips every code at every width 1..=16.
    /// Lengths beyond 64/width guarantee word-boundary straddles for
    /// widths that don't divide 64 (3, 5, 6, 7, 9, ...).
    #[test]
    fn push_get_iter_roundtrip(
        width in 1u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 0..300),
    ) {
        let mask = width_mask(width);
        let codes: Vec<u64> = raw.iter().map(|&c| c & mask).collect();
        let mut p = PackedCodes::new(width);
        p.extend(raw.iter().copied()); // push masks high bits itself
        prop_assert_eq!(p.len(), codes.len());
        prop_assert_eq!(p.is_empty(), codes.is_empty());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(p.get(i), c, "width={} index={}", width, i);
        }
        prop_assert_eq!(p.iter().collect::<Vec<_>>(), codes);
    }

    /// packed_bytes() is exactly the tight word count: ⌈len·width/64⌉
    /// words of 8 bytes, never a word more or less.
    #[test]
    fn packed_bytes_is_exact(
        width in 1u32..=16,
        len in 0usize..300,
    ) {
        let mut p = PackedCodes::new(width);
        for i in 0..len {
            p.push(i as u64);
        }
        let bits = len * width as usize;
        prop_assert_eq!(p.packed_bytes(), bits.div_ceil(64) * 8);
    }

    /// set() at a random position stores the new code and leaves every
    /// other code untouched — the guarantee fault injection relies on to
    /// corrupt exactly one word of a weight buffer.
    #[test]
    fn set_is_surgical(
        width in 1u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 1..300),
        pos_raw in 0usize..1_000_000,
        new_code in 0u64..u64::MAX,
    ) {
        let mask = width_mask(width);
        let mut expect: Vec<u64> = raw.iter().map(|&c| c & mask).collect();
        let mut p = PackedCodes::new(width);
        p.extend(raw.iter().copied());
        let pos = pos_raw % expect.len();
        p.set(pos, new_code);
        expect[pos] = new_code & mask;
        prop_assert_eq!(p.iter().collect::<Vec<_>>(), expect);
    }

    /// flip_bits() is a masked XOR: applying the same mask twice restores
    /// the original storage bit-for-bit.
    #[test]
    fn flip_bits_roundtrips(
        width in 1u32..=16,
        raw in prop::collection::vec(0u64..u64::MAX, 1..200),
        pos_raw in 0usize..1_000_000,
        flip_mask in 0u64..u64::MAX,
    ) {
        let mut p = PackedCodes::new(width);
        p.extend(raw.iter().copied());
        let before: Vec<u64> = p.iter().collect();
        let pos = pos_raw % before.len();
        p.flip_bits(pos, flip_mask);
        prop_assert_eq!(p.get(pos), before[pos] ^ (flip_mask & width_mask(width)));
        p.flip_bits(pos, flip_mask);
        prop_assert_eq!(p.iter().collect::<Vec<_>>(), before);
    }
}
