//! Property tests pinning the LUT codebook path to the analytic scalar
//! quantizers: for every enumerable format at `n ∈ {4, 5, 6, 8}` the
//! slice path (which compiles and caches a codebook for `n ≤ 8`,
//! `len ≥ 32`) must agree **bit-for-bit** with the per-element analytic
//! quantizer — including on NaNs, infinities, subnormals, and signed
//! zeros, where the formats legitimately differ from each other in the
//! sign of the zero they produce.

use adaptivfloat::{BlockFloat, FixedPoint, IeeeLikeFloat, NumberFormat, Posit, Uniform};
use proptest::prelude::*;

/// The word sizes the issue calls out for the LUT sweep.
const WORD_SIZES: &[u32] = &[4, 5, 6, 8];

/// Adversarial scalar inputs appended to every random tensor.
fn specials() -> Vec<f32> {
    vec![
        0.0,
        -0.0,
        f32::NAN,
        f32::from_bits(0xffc0_0000), // -NaN
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::from_bits(1),           // smallest subnormal
        f32::from_bits(0x007f_ffff), // largest subnormal
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
    ]
}

/// Exponent-field width matching `FormatKind::build`'s choice.
fn ieee_e(n: u32) -> u32 {
    if n <= 4 {
        3.min(n - 1)
    } else {
        4
    }
}

/// Compare a slice run (LUT path) against the given analytic scalar,
/// bit for bit.
fn assert_matches_scalar(
    name: &str,
    got: &[f32],
    data: &[f32],
    scalar: impl Fn(f32) -> f32,
) -> Result<(), proptest::test_runner::TestCaseError> {
    for (i, &v) in data.iter().enumerate() {
        let want = scalar(v);
        prop_assert_eq!(
            (i, got[i].to_bits()),
            (i, want.to_bits()),
            // Rendered on failure only: the offending input and outputs.
            "{}: input {:?} (bits {:#010x}): lut {:?} != analytic {:?}",
            name,
            v,
            v.to_bits(),
            got[i],
            want
        );
    }
    Ok(())
}

/// A data vector long enough to engage the LUT (`len ≥ 32`), mixing
/// random magnitudes across many binades with the specials.
fn data_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2e4f32..2e4, 32..160)
}

proptest! {
    /// IeeeLikeFloat: slice path vs the public scalar `quantize_value`.
    #[test]
    fn ieee_like_lut_matches_quantize_value(
        data in data_strategy(),
        ni in 0usize..WORD_SIZES.len(),
    ) {
        let mut data = data.clone();
        data.extend(specials());
        let n = WORD_SIZES[ni];
        let fmt = IeeeLikeFloat::new(n, ieee_e(n)).expect("valid geometry");
        let got = fmt.quantize_slice(&data);
        assert_matches_scalar(&fmt.name(), &got, &data, |v| fmt.quantize_value(v))?;
    }

    /// Posit: slice path vs the scalar table walk, at every `es` the
    /// format sweep uses.
    #[test]
    fn posit_lut_matches_quantize_value(
        data in data_strategy(),
        ni in 0usize..WORD_SIZES.len(),
        es in 0u32..=2,
    ) {
        let mut data = data.clone();
        data.extend(specials());
        let n = WORD_SIZES[ni];
        let fmt = Posit::new(n, es).expect("valid geometry");
        let got = fmt.quantize_slice(&data);
        assert_matches_scalar(&fmt.name(), &got, &data, |v| fmt.quantize_value(v))?;
    }

    /// FixedPoint: slice path vs the scalar rounding, across integer-bit
    /// splits.
    #[test]
    fn fixed_lut_matches_quantize_value(
        data in data_strategy(),
        ni in 0usize..WORD_SIZES.len(),
        int_bits in 1u32..=3,
    ) {
        let mut data = data.clone();
        data.extend(specials());
        let n = WORD_SIZES[ni];
        let fmt = FixedPoint::new(n, int_bits.min(n - 1)).expect("valid geometry");
        let got = fmt.quantize_slice(&data);
        assert_matches_scalar(&fmt.name(), &got, &data, |v| fmt.quantize_value(v))?;
    }

    /// Uniform: the full slice takes the LUT path; a 2-element slice
    /// `[v, max]` takes the scalar fallback with the *same* derived
    /// scale (the appended max pins it), so the two must agree.
    #[test]
    fn uniform_lut_matches_scalar_fallback(
        data in data_strategy(),
        ni in 0usize..WORD_SIZES.len(),
    ) {
        let mut data = data.clone();
        data.extend(specials());
        let n = WORD_SIZES[ni];
        let fmt = Uniform::new(n).expect("valid geometry");
        let max_abs = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let got = fmt.quantize_slice(&data);
        assert_matches_scalar(&fmt.name(), &got, &data, |v| {
            fmt.quantize_slice(&[v, max_abs])[0]
        })?;
    }

    /// BlockFloat (per-tensor shared exponent): same pinned-max trick —
    /// the 2-element slice derives the identical shared exponent and
    /// runs the scalar mantissa grid.
    #[test]
    fn bfp_lut_matches_scalar_fallback(
        data in data_strategy(),
        ni in 0usize..WORD_SIZES.len(),
    ) {
        let mut data = data.clone();
        data.extend(specials());
        let n = WORD_SIZES[ni];
        let fmt = BlockFloat::new(n).expect("valid geometry");
        let max_abs = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let got = fmt.quantize_slice(&data);
        assert_matches_scalar(&fmt.name(), &got, &data, |v| {
            fmt.quantize_slice(&[v, max_abs])[0]
        })?;
    }
}

/// Tensors spanning extreme dynamic ranges (subnormal-only, huge-only,
/// mixed) still agree between LUT and analytic paths.
#[test]
fn extreme_range_tensors_match() {
    let subnormals: Vec<f32> = (1u32..64).map(f32::from_bits).collect();
    let huge: Vec<f32> = (0..64).map(|i| f32::MAX / (i + 1) as f32).collect();
    let mixed: Vec<f32> = subnormals
        .iter()
        .chain(huge.iter())
        .flat_map(|&v| [v, -v])
        .collect();
    for data in [&subnormals, &huge, &mixed] {
        for &n in WORD_SIZES {
            let ieee = IeeeLikeFloat::new(n, ieee_e(n)).expect("valid");
            let got = ieee.quantize_slice(data);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(
                    got[i].to_bits(),
                    ieee.quantize_value(v).to_bits(),
                    "{} input {v:e}",
                    ieee.name()
                );
            }
            let posit = Posit::new(n, 1).expect("valid");
            let got = posit.quantize_slice(data);
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(
                    got[i].to_bits(),
                    posit.quantize_value(v).to_bits(),
                    "{} input {v:e}",
                    posit.name()
                );
            }
        }
    }
}
