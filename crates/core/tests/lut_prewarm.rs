//! The serving-path contract behind `lut::prewarm`: once a format's
//! codebooks are warmed at the calibrated activation range, steady-state
//! quantization never takes the cache's write lock — every request is a
//! read-lock lookup plus table walks.
//!
//! This lives in its own integration binary (single `#[test]`) because
//! the write-lock counter is process-global: unrelated tests building
//! codebooks concurrently would perturb it.

use adaptivfloat::{lut, FormatKind, NumberFormat};

#[test]
fn warmed_cache_takes_no_write_lock_on_the_serve_path() {
    // A calibrated activation range per format, as a serving registry
    // would record during model registration.
    let max_abs = 3.7_f32;
    let formats: Vec<Box<dyn NumberFormat>> = FormatKind::ALL
        .iter()
        .map(|k| k.build(8).expect("paper bit width"))
        .collect();

    let mut any_warmed = false;
    for fmt in &formats {
        any_warmed |= fmt.prewarm_codebooks(max_abs);
    }
    assert!(any_warmed, "at least one format must have a codebook path");
    // AdaptivFloat's bit-twiddled kernel carries no cached state.
    assert!(!FormatKind::AdaptivFloat
        .build(8)
        .unwrap()
        .prewarm_codebooks(max_abs));

    // Steady state: quantize calibrated activations repeatedly. The
    // write lock must not be touched — all codebooks are resident.
    let inputs: Vec<f32> = (0..4096).map(|i| (i as f32 / 512.0 - 4.0) * 1.3).collect();
    let before = lut::write_lock_acquisitions();
    let mut sink = 0.0f64;
    for _ in 0..10 {
        for fmt in &formats {
            let q = fmt.quantize_slice_with_max(max_abs, &inputs);
            sink += q[0] as f64;
        }
    }
    let after = lut::write_lock_acquisitions();
    assert_eq!(
        before, after,
        "serve path took the LUT write lock despite prewarmed codebooks"
    );
    assert!(sink.is_finite());

    // A second prewarm at the same calibration is a no-op (still no
    // builds), and the warmed keys answer `is_warm`.
    for fmt in &formats {
        fmt.prewarm_codebooks(max_abs);
    }
    assert_eq!(lut::write_lock_acquisitions(), after);
}
