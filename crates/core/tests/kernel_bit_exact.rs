//! Property tests pinning the bit-twiddled AdaptivFloat kernel to the
//! scalar f64 reference: `quantize_slice` / `quantize_slice_with_params`
//! must agree **bit-for-bit** with `quantize_slice_reference` /
//! `quantize_with` on every input — random finite data, raw bit
//! patterns (NaN payloads, infinities, subnormals), exact halfway ties,
//! and one-ulp neighbours of every representable value.

use adaptivfloat::{AdaptivFloat, NumberFormat};
use proptest::prelude::*;

/// Paper-relevant `<n, e>` geometries, small to wide.
const GEOMETRIES: &[(u32, u32)] = &[(4, 2), (6, 3), (8, 3), (8, 4), (12, 5), (16, 5)];

/// Adversarial scalar inputs: signed zeros, NaNs of both signs, both
/// infinities, the subnormal extremes, and the finite extremes.
fn specials() -> Vec<f32> {
    vec![
        0.0,
        -0.0,
        f32::NAN,
        f32::from_bits(0xffc0_0000), // -NaN
        f32::from_bits(0x7f80_0001), // signalling NaN
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::from_bits(1),           // smallest subnormal
        f32::from_bits(0x007f_ffff), // largest subnormal
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        f32::EPSILON,
        1.0,
        -1.0,
    ]
}

proptest! {
    /// Whole-pipeline agreement (params derivation + quantization) on
    /// random finite tensors, for every geometry.
    #[test]
    fn slice_matches_reference_on_random_data(
        data in prop::collection::vec(-1e6f32..1e6, 1..256),
        gi in 0usize..GEOMETRIES.len(),
    ) {
        let (n, e) = GEOMETRIES[gi];
        let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
        let fast = fmt.quantize_slice(&data);
        let reference = fmt.quantize_slice_reference(&data);
        for i in 0..data.len() {
            prop_assert_eq!(
                (i, fast[i].to_bits()),
                (i, reference[i].to_bits())
            );
        }
    }

    /// Raw bit patterns cover every f32 class — NaN payloads, ±∞,
    /// subnormals, signed zeros — through the full pipeline.
    #[test]
    fn slice_matches_reference_on_raw_bit_patterns(
        bits in prop::collection::vec(0u32..=u32::MAX, 1..256),
        gi in 0usize..GEOMETRIES.len(),
    ) {
        let (n, e) = GEOMETRIES[gi];
        let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let fast = fmt.quantize_slice(&data);
        let reference = fmt.quantize_slice_reference(&data);
        for i in 0..data.len() {
            prop_assert_eq!(
                (i, fast[i].to_bits()),
                (i, reference[i].to_bits())
            );
        }
    }

    /// Fixed parameters (exercising the fast kernel directly, including
    /// biases far from any tensor-derived value) against the scalar
    /// reference on raw bit patterns.
    #[test]
    fn fixed_params_match_scalar_reference(
        bits in prop::collection::vec(0u32..=u32::MAX, 1..128),
        gi in 0usize..GEOMETRIES.len(),
        bias in -30i32..=10,
    ) {
        let (n, e) = GEOMETRIES[gi];
        let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
        let params = fmt.params_with_bias(bias);
        let data: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let fast = fmt.quantize_slice_with_params(&params, &data);
        for (i, &v) in data.iter().enumerate() {
            let reference = fmt.quantize_with(&params, v);
            prop_assert_eq!((i, fast[i].to_bits()), (i, reference.to_bits()));
        }
    }
}

/// One ulp up/down from a finite f32, staying within finite range.
fn ulp_neighbors(v: f32) -> [f32; 2] {
    let bits = v.to_bits();
    let up = if v >= 0.0 { bits + 1 } else { bits - 1 };
    let down = if v > 0.0 {
        bits - 1
    } else if v == 0.0 {
        0x8000_0001 // just below -0.0
    } else {
        bits + 1
    };
    [f32::from_bits(up), f32::from_bits(down)]
}

/// The hardest deterministic inputs: every representable grid value, the
/// exact midpoint of every adjacent pair (the round-half tie), one-ulp
/// neighbours of both, the sub-minimum halfway point, and the specials —
/// swept over all geometries and a spread of biases.
#[test]
fn ties_grid_points_and_specials_match_reference() {
    for &(n, e) in GEOMETRIES {
        let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
        for bias in [-16i32, -8, -2, 0, 3] {
            let params = fmt.params_with_bias(bias);
            let grid = fmt.representable_values(&params);
            let mut inputs: Vec<f32> = specials();
            inputs.push((params.value_min() * 0.5) as f32);
            inputs.push((-params.value_min() * 0.5) as f32);
            for pair in grid.windows(2) {
                let mid = ((pair[0] as f64 + pair[1] as f64) / 2.0) as f32;
                inputs.push(mid);
                inputs.extend(ulp_neighbors(mid));
            }
            for &g in &grid {
                inputs.push(g);
                inputs.extend(ulp_neighbors(g));
            }
            let fast = fmt.quantize_slice_with_params(&params, &inputs);
            for (i, &v) in inputs.iter().enumerate() {
                let reference = fmt.quantize_with(&params, v);
                assert_eq!(
                    fast[i].to_bits(),
                    reference.to_bits(),
                    "<{n},{e}> bias {bias}: input {v:?} (bits {:#010x}): \
                     fast {:?} != reference {reference:?}",
                    v.to_bits(),
                    fast[i],
                );
            }
        }
    }
}

/// Tensor-derived params from the integer max-abs scan equal the f64
/// reference derivation, even when the tensor is polluted with
/// non-finite values (both sides must ignore them).
#[test]
fn derived_params_match_reference_derivation() {
    let fmt = AdaptivFloat::new(8, 3).expect("valid geometry");
    let tensors: &[&[f32]] = &[
        &[0.0],
        &[f32::NAN, f32::INFINITY, f32::NEG_INFINITY],
        &[f32::NAN, 3.7, -0.2],
        &[f32::from_bits(1), f32::from_bits(0x007f_ffff)],
        &[f32::MAX, -1.0],
        &[-255.9, 4.0, f32::INFINITY],
    ];
    for &data in tensors {
        let scanned = adaptivfloat::kernels::params_from_bits_scan(&fmt, data);
        let reference = fmt.params_for(data);
        assert_eq!(scanned, reference, "data {data:?}");
    }
}
