//! Property tests pinning the plan/execute contract: for every format
//! kind and word size, a frozen [`QuantPlan`](adaptivfloat::QuantPlan)
//! produces **bit-identical** output regardless of
//!
//! * which entry point runs it (`execute`, `execute_into` on dirty
//!   scratch, `execute_in_place`),
//! * which backend the planner picked (LUT codebooks engage at n ≤ 8 on
//!   long slices; the bit-twiddled kernel on AdaptivFloat; the analytic
//!   scalar path everywhere else), and
//! * whether the legacy `quantize_slice` wrapper or the plan is called.
//!
//! The scalar reference is obtained by quantizing one element at a time
//! through `quantize_slice_with_max` — a length-1 slice sits below every
//! backend engagement threshold, so it always takes the analytic path.

use adaptivfloat::{FormatKind, QuantStats};
use proptest::prelude::*;

const WORD_SIZES: [u32; 4] = [4, 6, 8, 16];
const POISON: [f32; 3] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY];

proptest! {
    #[test]
    fn plan_execution_is_bit_identical_across_backends(
        data in prop::collection::vec(-1e4f32..1e4, 33..96),
        kind_idx in 0usize..FormatKind::ALL.len(),
        n_idx in 0usize..WORD_SIZES.len(),
        // pos == 96 means "no poison"; otherwise overwrite one element
        // with a non-finite value.
        poison_pos in 0usize..=96,
        poison_kind in 0usize..POISON.len(),
    ) {
        let mut data = data.clone();
        let kind = FormatKind::ALL[kind_idx];
        let n = WORD_SIZES[n_idx];
        let fmt = kind.build(n).expect("valid geometry");
        if poison_pos < 96 {
            let pos = poison_pos % data.len();
            data[pos] = POISON[poison_kind];
        }

        let stats = QuantStats::from_slice(&data);
        let plan = fmt.plan(&stats);
        let label = fmt.name();
        let backend = plan.backend_label();

        let out = plan.execute(&data);
        let mut dst = vec![f32::NAN; data.len()]; // deliberately dirty
        plan.execute_into(&data, &mut dst);
        let mut inplace = data.clone();
        plan.execute_in_place(&mut inplace);
        let legacy = fmt.quantize_slice(&data);

        for i in 0..data.len() {
            prop_assert_eq!(
                out[i].to_bits(), dst[i].to_bits(),
                "{} [{}]: execute vs execute_into at {} ({:?})",
                label, backend, i, data[i]
            );
            prop_assert_eq!(
                out[i].to_bits(), inplace[i].to_bits(),
                "{} [{}]: execute vs execute_in_place at {} ({:?})",
                label, backend, i, data[i]
            );
            prop_assert_eq!(
                out[i].to_bits(), legacy[i].to_bits(),
                "{} [{}]: plan vs legacy quantize_slice at {} ({:?})",
                label, backend, i, data[i]
            );
            // Cross-backend: a length-1 slice never engages the LUT or
            // kernel, so this is the analytic scalar answer under the
            // same calibrated maximum.
            let scalar = fmt.quantize_slice_with_max(stats.max_abs(), &[data[i]])[0];
            prop_assert_eq!(
                out[i].to_bits(), scalar.to_bits(),
                "{} [{}]: slice backend vs analytic scalar at {} ({:?})",
                label, backend, i, data[i]
            );
        }
    }

    /// A plan is frozen: running it twice — including once after other
    /// plans have executed — yields the same bits. Guards against hidden
    /// mutable state in any backend.
    #[test]
    fn plan_reuse_is_deterministic(
        data in prop::collection::vec(-100.0f32..100.0, 1..80),
        kind_idx in 0usize..FormatKind::ALL.len(),
    ) {
        let fmt = FormatKind::ALL[kind_idx].build(8).expect("valid geometry");
        let plan = fmt.plan(&QuantStats::from_slice(&data));
        let first = plan.execute(&data);
        // Interleave an unrelated plan on different data.
        let other = fmt.plan(&QuantStats::calibrated_with_len(1.0, 64));
        other.execute(&vec![0.5f32; 64]);
        let second = plan.execute(&data);
        for i in 0..data.len() {
            prop_assert_eq!(first[i].to_bits(), second[i].to_bits());
        }
    }
}

/// The LUT path is enumerable at n ≤ 8: sweep a dense grid (all binades
/// the format can see plus sub-minimum values and non-finites) and pin
/// the codebook-backed plan to the analytic scalar path bit-for-bit.
#[test]
fn enumerable_codebooks_match_scalar_sweep() {
    for kind in FormatKind::ALL {
        for n in [4u32, 8] {
            let fmt = kind.build(n).expect("valid geometry");
            let mut sweep: Vec<f32> = Vec::new();
            for exp in -20..=6 {
                let base = (exp as f32).exp2();
                for frac in 0..8 {
                    let v = base * (1.0 + frac as f32 / 8.0);
                    sweep.push(v);
                    sweep.push(-v);
                }
            }
            sweep.extend_from_slice(&[0.0, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY]);
            let stats = QuantStats::from_slice(&sweep);
            let plan = fmt.plan(&stats);
            let got = plan.execute(&sweep);
            for (i, (&v, &q)) in sweep.iter().zip(&got).enumerate() {
                let scalar = fmt.quantize_slice_with_max(stats.max_abs(), &[v])[0];
                assert_eq!(
                    q.to_bits(),
                    scalar.to_bits(),
                    "{} [{}] n={n}: sweep index {i} input {v:?}: {q} vs {scalar}",
                    fmt.name(),
                    plan.backend_label(),
                );
            }
        }
    }
}
