//! Bit-identity of every SIMD dispatch path against its scalar twin.
//!
//! The SIMD layer's contract is **exactness, not approximation**: for
//! any input — including NaN, ±∞, subnormals, and awkward lengths that
//! exercise vector remainders — the vectorized quantize, scan, LUT
//! gather, pack, decode, and axpy paths must produce the same bits as
//! the scalar code they replace. `scripts/ci.sh` runs this suite twice,
//! once normally and once under `AF_FORCE_SCALAR=1`, so both dispatch
//! legs stay pinned.

use adaptivfloat::{FormatKind, PackedCodes, QuantStats};
use proptest::prelude::*;

/// Lengths around every lane boundary the dispatcher cares about
/// (AVX2 = 8 lanes, SSE4.1 = 4), plus a large length with a remainder.
const AWKWARD_LENS: [usize; 9] = [0, 1, 3, 4, 5, 7, 8, 9, 1037];

/// A value pool covering specials, extremes, and ordinary magnitudes.
fn special(i: u64) -> f32 {
    match i % 11 {
        0 => 0.0,
        1 => -0.0,
        2 => f32::NAN,
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => f32::MIN_POSITIVE / 2.0, // subnormal
        6 => f32::MAX,
        7 => 1.5e-8,
        _ => ((i as f32) * 0.731).sin() * 3.7,
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}

/// Every format × word size × awkward length: the plan's dispatched
/// `execute_into` must match its `execute_into_scalar` twin bit for bit,
/// and in-place execution must agree with both.
#[test]
fn plan_execution_is_bit_identical_across_dispatch() {
    for kind in FormatKind::ALL {
        for n in [4u32, 6, 8] {
            let fmt = match kind.build(n) {
                Ok(f) => f,
                Err(_) => continue,
            };
            for len in AWKWARD_LENS {
                for seed in 0..3u64 {
                    let data: Vec<f32> = (0..len as u64)
                        .map(|i| special(i * 7 + seed * 131))
                        .collect();
                    let plan = fmt.plan(&QuantStats::from_slice(&data));
                    let mut dispatched = vec![0.0f32; len];
                    let mut scalar = vec![0.0f32; len];
                    plan.execute_into(&data, &mut dispatched);
                    plan.execute_into_scalar(&data, &mut scalar);
                    assert_eq!(
                        bits(&dispatched),
                        bits(&scalar),
                        "{kind} n={n} len={len} seed={seed} backend={}",
                        plan.backend_label()
                    );
                    let mut in_place = data.clone();
                    plan.execute_in_place(&mut in_place);
                    assert_eq!(
                        bits(&in_place),
                        bits(&scalar),
                        "in-place {kind} n={n} len={len} seed={seed}"
                    );
                }
            }
        }
    }
}

/// The fused max-abs scan (used by QuantStats and the fast kernels)
/// matches an elementwise reference fold on any input.
fn scan_reference(data: &[f32]) -> (u32, Option<usize>) {
    let mut max = 0u32;
    let mut first_nf = None;
    for (i, &v) in data.iter().enumerate() {
        let b = v.to_bits() & 0x7fff_ffff;
        if b >= 0x7f80_0000 {
            if first_nf.is_none() {
                first_nf = Some(i);
            }
        } else if b > max {
            max = b;
        }
    }
    (max, first_nf)
}

proptest! {
    #[test]
    fn scan_abs_matches_reference_fold(
        raw in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let data: Vec<f32> = raw.iter().map(|&i| special(i)).collect();
        prop_assert_eq!(adaptivfloat::simd::scan_abs(&data), scan_reference(&data));
    }

    #[test]
    fn axpy_matches_scalar_update(
        a in -10.0f32..10.0,
        raw in prop::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let x: Vec<f32> = raw.iter().map(|&i| special(i)).collect();
        let mut y: Vec<f32> = raw.iter().map(|&i| special(i ^ 0x5a5a)).collect();
        let mut want = y.clone();
        for (o, &v) in want.iter_mut().zip(&x) {
            *o += a * v;
        }
        adaptivfloat::simd::axpy(a, &x, &mut y);
        prop_assert_eq!(bits(&y), bits(&want));
    }

    /// Bulk u32 extend + unpack round-trips against scalar push/get at
    /// the widths the SIMD fast path covers and its neighbours.
    #[test]
    fn packed_bulk_extend_matches_scalar_push(
        width_idx in 0usize..4,
        raw in prop::collection::vec(0u32..u32::MAX, 0..200),
        split in 0usize..200,
    ) {
        let width = [4u32, 7, 8, 9][width_idx];
        let mask = (1u64 << width) - 1;
        let codes: Vec<u32> = raw.iter().map(|&c| c & mask as u32).collect();
        let split = split.min(codes.len());
        let mut bulk = PackedCodes::new(width);
        // Seed with scalar pushes so the bulk path starts mid-word.
        bulk.extend_from_u32(&codes[..split]);
        bulk.extend_from_u32(&codes[split..]);
        let mut scalar = PackedCodes::new(width);
        for &c in &codes {
            scalar.push(c as u64);
        }
        prop_assert_eq!(&bulk, &scalar);
        let mut unpacked = vec![0u32; codes.len()];
        bulk.unpack_u32_into(&mut unpacked);
        prop_assert_eq!(unpacked, codes);
    }
}

/// Plans frozen from calibrated stats (the serving activation path) are
/// also dispatch-invariant — including on inputs that exceed the
/// calibrated range or are non-finite.
#[test]
fn calibrated_plans_are_bit_identical_across_dispatch() {
    for kind in FormatKind::ALL {
        let fmt = kind.build(8).expect("all kinds build at n=8");
        let plan = fmt.plan(&QuantStats::calibrated(2.5));
        for len in AWKWARD_LENS {
            let data: Vec<f32> = (0..len as u64).map(|i| special(i * 13 + 5)).collect();
            let mut dispatched = vec![0.0f32; len];
            let mut scalar = vec![0.0f32; len];
            plan.execute_into(&data, &mut dispatched);
            plan.execute_into_scalar(&data, &mut scalar);
            assert_eq!(bits(&dispatched), bits(&scalar), "{kind} len={len}");
        }
    }
}

/// The capability report is coherent with the environment toggle.
#[test]
fn simd_report_reflects_forced_scalar() {
    let report = adaptivfloat::simd::report();
    if std::env::var("AF_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        assert!(report.forced_scalar);
        assert_eq!(report.isa, adaptivfloat::Isa::Scalar);
        assert_eq!(report.lanes, 1);
    }
    assert!(report.to_json().contains("\"isa\""));
}
