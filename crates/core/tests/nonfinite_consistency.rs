//! Regression tests pinning the NaN/Inf input convention across every
//! quantization path.
//!
//! The workspace-wide convention (relied on by the fault-injection
//! campaigns, which deliberately push garbage through these paths):
//! `NaN → 0.0`, `+∞ → +value_max`, `−∞ → −value_max` — for the analytic
//! per-element quantizers, the bit-twiddled kernel path
//! ([`FastQuantizer`]), and the codebook path ([`LutQuantizer`]) alike.
//! The three paths must agree **bit-for-bit** on non-finite inputs.

use adaptivfloat::kernels::FastQuantizer;
use adaptivfloat::lut::LutQuantizer;
use adaptivfloat::{AdaptivFloat, FormatError, FormatKind, QuantStats};

/// The non-finite scalars under test, plus finite sentinels to make sure
/// interleaving doesn't disturb neighbors.
fn nonfinite_inputs() -> Vec<f32> {
    vec![
        f32::NAN,
        f32::from_bits(0xffc0_0000), // -NaN
        f32::from_bits(0x7f80_0001), // signalling NaN
        f32::INFINITY,
        f32::NEG_INFINITY,
        1.0,
        -0.75,
        0.0,
    ]
}

#[test]
fn adaptivfloat_three_paths_agree_on_nonfinite() {
    for (n, e) in [(4u32, 2u32), (6, 3), (8, 3), (8, 4)] {
        let fmt = AdaptivFloat::new(n, e).expect("valid geometry");
        // A bias derived from ordinary data; non-finites never steer it.
        let params = fmt.params_for(&[3.7f32, -0.2, 0.01]);
        let data = nonfinite_inputs();

        let analytic: Vec<f32> = data
            .iter()
            .map(|&v| fmt.quantize_with(&params, v))
            .collect();

        let kernel = FastQuantizer::new(&fmt, &params).expect("kernel path available");
        let mut kernel_out = vec![0.0f32; data.len()];
        kernel.quantize_into(&data, &mut kernel_out);

        let lut = LutQuantizer::build(|v| fmt.quantize_with(&params, v));
        let lut_out = lut.quantize_slice(&data);

        for i in 0..data.len() {
            assert_eq!(
                analytic[i].to_bits(),
                kernel_out[i].to_bits(),
                "analytic vs kernel, n={n} e={e} input={:?}",
                data[i]
            );
            assert_eq!(
                analytic[i].to_bits(),
                lut_out[i].to_bits(),
                "analytic vs LUT, n={n} e={e} input={:?}",
                data[i]
            );
        }

        // And the convention itself: NaN → 0, ±∞ → ±value_max.
        let vmax = params.value_max() as f32;
        assert_eq!(analytic[0], 0.0, "NaN must quantize to 0.0");
        assert_eq!(analytic[1], 0.0, "-NaN must quantize to 0.0");
        assert_eq!(analytic[2], 0.0, "sNaN must quantize to 0.0");
        assert_eq!(analytic[3], vmax, "+Inf must clamp to value_max");
        assert_eq!(analytic[4], -vmax, "-Inf must clamp to -value_max");
    }
}

#[test]
fn try_quantize_reports_first_nonfinite_index_for_every_kind() {
    // The checked path now rides the planning scan: one traversal both
    // finds the calibration maximum and records the first bad element,
    // so the error index must be exact for every format.
    for kind in FormatKind::ALL {
        let fmt = kind.build(8).expect("valid geometry");
        let label = fmt.name();
        let mut data = vec![0.5f32; 40];
        data[7] = f32::INFINITY;
        data[21] = f32::NAN;
        assert_eq!(
            fmt.try_quantize_slice(&data),
            Err(FormatError::NonFinite { index: 7 }),
            "{label}: earliest non-finite element wins"
        );
        data[7] = 0.5;
        assert_eq!(
            fmt.try_quantize_slice(&data),
            Err(FormatError::NonFinite { index: 21 }),
            "{label}: NaN detected after the ∞ is repaired"
        );
        data[21] = 0.25;
        let checked = fmt.try_quantize_slice(&data).expect("clean input");
        let unchecked = fmt.quantize_slice(&data);
        for (i, (a, b)) in checked.iter().zip(&unchecked).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: checked path diverges at {i}"
            );
        }
    }
}

#[test]
fn stats_scan_records_first_nonfinite_and_finite_maximum() {
    let data = [1.0f32, f32::NEG_INFINITY, f32::NAN, -3.0];
    let stats = QuantStats::from_slice(&data);
    assert_eq!(stats.first_non_finite(), Some(1));
    // Non-finite elements never steer the calibration maximum.
    assert_eq!(stats.max_abs(), 3.0);
    assert_eq!(stats.len(), 4);
}

#[test]
fn every_format_kind_follows_the_convention() {
    for kind in FormatKind::ALL {
        for n in [4u32, 8] {
            let fmt = kind.build(n).expect("valid geometry");
            // Long enough to take the LUT path (len ≥ 32) where one
            // exists; max|finite| = 2 pins the adaptive range.
            let mut data = vec![0.125f32; 40];
            data[0] = 2.0;
            data[1] = f32::NAN;
            data[2] = f32::INFINITY;
            data[3] = f32::NEG_INFINITY;
            let q = fmt.quantize_slice(&data);
            let label = fmt.name();
            assert_eq!(q[1], 0.0, "{label}: NaN must quantize to 0.0");
            assert!(
                q[2].is_finite() && q[2] > 0.0,
                "{label}: +Inf must clamp to a positive finite maximum, got {}",
                q[2]
            );
            assert!(
                q[3].is_finite() && q[3] < 0.0,
                "{label}: -Inf must clamp to a negative finite maximum, got {}",
                q[3]
            );
            assert_eq!(q[2], -q[3], "{label}: the ±Inf clamps must be symmetric");

            // The slice path (LUT or parallel analytic) must match the
            // short-slice path (serial analytic) element for element.
            let short: Vec<f32> = data
                .iter()
                .map(|&v| fmt.quantize_slice(&[2.0, v])[1])
                .collect();
            for (i, (&a, &b)) in q.iter().zip(&short).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label}: slice vs scalar path diverge at {i} on {:?}",
                    data[i]
                );
            }
        }
    }
}
