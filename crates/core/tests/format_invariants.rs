//! Property tests over the format implementations (crate-level; the
//! cross-crate properties live in the workspace `tests/` directory).

use adaptivfloat::{AdaptivFloat, NumberFormat, StochasticRounder};
use proptest::prelude::*;

proptest! {
    /// The derived exponent bias always makes the tensor max
    /// representable: max|data| ≤ value_max, and the top binade is used
    /// (2^exp_max ≤ max).
    #[test]
    fn exp_bias_brackets_the_maximum(
        data in prop::collection::vec(-1e6f32..1e6, 1..64),
        e in 1u32..=5,
    ) {
        let n = e + 3;
        let fmt = AdaptivFloat::new(n, e).expect("valid");
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assume!(max_abs > 0.0);
        let params = fmt.params_for(&data);
        // Algorithm 1 brackets the max by its binade: 2^exp_max ≤ max <
        // 2^(exp_max+1). Note value_max = 2^exp_max · (2 − 2^−m) may sit
        // *below* the max (which then clamps) — by at most 2/(2 − 2^−m).
        let top = (params.exp_max() as f64).exp2();
        prop_assert!(top <= max_abs as f64 * (1.0 + 1e-6));
        prop_assert!((max_abs as f64) < top * 2.0 * (1.0 + 1e-6));
        let m = fmt.mantissa_bits() as f64;
        let overshoot = 2.0 / (2.0 - (-m).exp2());
        prop_assert!(max_abs as f64 <= params.value_max() * overshoot * (1.0 + 1e-6));
    }

    /// Encode → decode is the identity on quantized values for random
    /// geometries and biases.
    #[test]
    fn encode_decode_identity(
        v in -1e4f32..1e4,
        e in 1u32..=4,
        m in 0u32..=4,
        bias in -12i32..=2,
    ) {
        let n = 1 + e + m;
        prop_assume!(n >= 3);
        let fmt = AdaptivFloat::new(n, e).expect("valid");
        let params = fmt.params_with_bias(bias);
        let q = fmt.quantize_with(&params, v);
        let code = fmt.encode_with(&params, q);
        prop_assert_eq!(fmt.decode_with(&params, code), q);
    }

    /// Quantization error for in-range values is at most half the local
    /// grid step (2^exp · 2^−m / 2) plus rounding slack.
    #[test]
    fn in_range_error_bound(v in 0.01f32..100.0) {
        let fmt = AdaptivFloat::new(8, 3).expect("valid");
        let params = fmt.params_for(&[128.0f32]); // wide fixed range
        prop_assume!((v as f64) >= params.value_min());
        let q = fmt.quantize_with(&params, v);
        let exp = (v as f64).log2().floor();
        let step = exp.exp2() * (-(fmt.mantissa_bits() as f64)).exp2();
        prop_assert!(((v - q).abs() as f64) <= step / 2.0 + 1e-9,
            "v={v} q={q} step={step}");
    }

    /// Stochastic rounding lands on one of the two neighbours of nearest
    /// rounding (or the same point).
    #[test]
    fn stochastic_stays_adjacent(v in -50.0f32..50.0, seed in 1u64..1000) {
        let fmt = AdaptivFloat::new(6, 3).expect("valid");
        let params = fmt.params_for(&[64.0f32]);
        let mut r = StochasticRounder::new(seed);
        let s = fmt.quantize_with_stochastic(&params, v, r.next_unit());
        let grid = fmt.representable_values(&params);
        prop_assert!(grid.contains(&s), "{s} off grid");
        // s must be one of the grid points bracketing v.
        let above = grid.iter().copied().filter(|&g| g >= v).fold(f32::INFINITY, f32::min);
        let below = grid.iter().copied().filter(|&g| g <= v).fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(s == above || s == below, "v={v} s={s} [{below},{above}]");
    }

    /// quantize_slice_with_max equals quantize_slice when the calibrated
    /// maximum equals the data's own maximum.
    #[test]
    fn calibrated_max_consistency(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let fmt = AdaptivFloat::new(8, 3).expect("valid");
        let max_abs = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assume!(max_abs > 0.0);
        let a = fmt.quantize_slice(&data);
        let b = fmt.quantize_slice_with_max(max_abs, &data);
        prop_assert_eq!(a, b);
    }
}
