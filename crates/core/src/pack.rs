//! Dense bit-packing of fixed-width codes, the storage layout a weight
//! buffer would use for sub-byte formats.

/// Packs `width`-bit codes back to back into `u64` words.
///
/// # Examples
///
/// ```
/// use adaptivfloat::BitPacker;
///
/// let mut p = BitPacker::new(4);
/// p.push(0xA);
/// p.push(0x5);
/// assert_eq!(p.get(0), 0xA);
/// assert_eq!(p.get(1), 0x5);
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPacker {
    width: u32,
    len: usize,
    words: Vec<u64>,
}

impl BitPacker {
    /// Create a packer for `width`-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        BitPacker {
            width,
            len: 0,
            words: Vec::new(),
        }
    }

    /// The code width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a code. Bits above `width` are masked off.
    pub fn push(&mut self, code: u64) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let code = code & mask;
        let bit_pos = self.len * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= code << offset;
        let spill = offset + self.width;
        if spill > 64 {
            // Code straddles a word boundary.
            self.words.push(code >> (64 - offset));
        }
        self.len += 1;
    }

    /// Read the code at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> u64 {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let bit_pos = index * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        let mut code = self.words[word] >> offset;
        let spill = offset + self.width;
        if spill > 64 {
            code |= self.words[word + 1] << (64 - offset);
        }
        code & mask
    }

    /// Iterate over all stored codes.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bytes consumed by the packed storage.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

impl Extend<u64> for BitPacker {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for code in iter {
            self.push(code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1, 3, 4, 5, 7, 8, 13, 16, 31, 32, 33, 63, 64] {
            let mut p = BitPacker::new(width);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let codes: Vec<u64> = (0..200u64)
                .map(|i| (i.wrapping_mul(0x9E3779B9)) & mask)
                .collect();
            p.extend(codes.iter().copied());
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(p.get(i), c, "width={width} index={i}");
            }
        }
    }

    #[test]
    fn straddling_word_boundaries() {
        // 7-bit codes: code 9 starts at bit 63 and straddles words 0/1.
        let mut p = BitPacker::new(7);
        for i in 0..20 {
            p.push(0x7F - i);
        }
        for i in 0..20 {
            assert_eq!(p.get(i as usize), 0x7F - i);
        }
    }

    #[test]
    fn masks_high_bits() {
        let mut p = BitPacker::new(4);
        p.push(0xFFFF);
        assert_eq!(p.get(0), 0xF);
    }

    #[test]
    fn packed_bytes_is_tight() {
        let mut p = BitPacker::new(4);
        for _ in 0..16 {
            p.push(1);
        }
        // 16 × 4 bits = 64 bits = one word.
        assert_eq!(p.packed_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let p = BitPacker::new(8);
        p.get(0);
    }

    #[test]
    fn iter_matches_get() {
        let mut p = BitPacker::new(5);
        for i in 0..40 {
            p.push(i % 32);
        }
        let collected: Vec<u64> = p.iter().collect();
        assert_eq!(collected.len(), 40);
        assert_eq!(collected[37], 37 % 32);
    }
}
