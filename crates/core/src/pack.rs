//! Dense bit-packing of fixed-width codes, the storage layout a weight
//! buffer would use for sub-byte formats.

/// Packs `width`-bit codes back to back into `u64` words.
///
/// This is the in-memory layout the fault-injection subsystem corrupts:
/// besides append/read access it supports in-place overwrite
/// ([`set`](PackedCodes::set)) and bit flips
/// ([`flip_bits`](PackedCodes::flip_bits)), so a seeded fault campaign
/// can upset exactly the stored bits a hardware weight buffer would hold.
///
/// # Examples
///
/// ```
/// use adaptivfloat::PackedCodes;
///
/// let mut p = PackedCodes::new(4);
/// p.push(0xA);
/// p.push(0x5);
/// assert_eq!(p.get(0), 0xA);
/// assert_eq!(p.get(1), 0x5);
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedCodes {
    width: u32,
    len: usize,
    words: Vec<u64>,
}

/// Former name of [`PackedCodes`], kept as an alias for existing callers.
pub type BitPacker = PackedCodes;

impl PackedCodes {
    /// Create a packer for `width`-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        PackedCodes {
            width,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Reassemble a packer from a raw storage image — the inverse of
    /// reading [`width`](Self::width)/[`len`](Self::len)/
    /// [`words`](Self::words), used when codes come back from disk.
    ///
    /// Returns `None` (never panics) if the geometry is inconsistent:
    /// `width` outside `1..=64`, or `words.len()` not exactly the
    /// `(len × width).div_ceil(64)` words that `len` codes occupy.
    /// Padding bits past the last code are accepted as-is so a stored
    /// image (which may carry fault-flipped padding under ECC) survives
    /// a byte-exact roundtrip.
    pub fn from_raw_parts(width: u32, len: usize, words: Vec<u64>) -> Option<Self> {
        if !(1..=64).contains(&width) {
            return None;
        }
        let expect = len.checked_mul(width as usize)?.div_ceil(64);
        if words.len() != expect {
            return None;
        }
        Some(PackedCodes { width, len, words })
    }

    /// The code width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mask selecting the low `width` bits of a code.
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Append a code. Bits above `width` are masked off.
    pub fn push(&mut self, code: u64) {
        let code = code & self.mask();
        let bit_pos = self.len * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= code << offset;
        let spill = offset + self.width;
        if spill > 64 {
            // Code straddles a word boundary.
            self.words.push(code >> (64 - offset));
        }
        self.len += 1;
    }

    /// Read the code at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn get(&self, index: usize) -> u64 {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let bit_pos = index * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        let mut code = self.words[word] >> offset;
        let spill = offset + self.width;
        if spill > 64 {
            code |= self.words[word + 1] << (64 - offset);
        }
        code & self.mask()
    }

    /// Overwrite the code at `index`. Bits above `width` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, code: u64) {
        assert!(index < self.len, "index {index} out of bounds {}", self.len);
        let code = code & self.mask();
        let bit_pos = index * self.width as usize;
        let word = bit_pos / 64;
        let offset = (bit_pos % 64) as u32;
        self.words[word] &= !(self.mask() << offset);
        self.words[word] |= code << offset;
        let spill = offset + self.width;
        if spill > 64 {
            let high_bits = spill - 64;
            let low = 64 - offset; // bits of the code kept in `word`
            self.words[word + 1] &= !((1u64 << high_bits) - 1);
            self.words[word + 1] |= code >> low;
        }
    }

    /// XOR `mask` (truncated to `width` bits) into the code at `index` —
    /// the primitive a bit-upset fault model uses.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn flip_bits(&mut self, index: usize, mask: u64) {
        let flipped = self.get(index) ^ (mask & self.mask());
        self.set(index, flipped);
    }

    /// Append every code in `codes` (bits above `width` masked off), as
    /// if by repeated [`push`](Self::push) but word-at-a-time: a local
    /// bit cursor accumulates whole `u64` words instead of re-deriving
    /// word/offset per code, and 8-bit codes take a SIMD byte-pack once
    /// the cursor is word-aligned (see [`crate::simd::pack_u8_words`]).
    pub fn extend_from_u32(&mut self, codes: &[u32]) {
        let mut codes = codes;
        if self.width == 8 {
            // Align the cursor to a word boundary, then pack 8 codes per
            // word directly.
            while !codes.is_empty() && !(self.len * 8).is_multiple_of(64) {
                self.push(codes[0] as u64);
                codes = &codes[1..];
            }
            debug_assert!(codes.is_empty() || (self.len * 8).is_multiple_of(64));
            let consumed = crate::simd::pack_u8_words(codes, &mut self.words);
            self.len += consumed;
            codes = &codes[consumed..];
            for &c in codes {
                self.push(c as u64);
            }
            return;
        }
        let mask = self.mask();
        let width = self.width as usize;
        let mut bit_pos = self.len * width;
        // Reopen the partially-filled last word as the accumulator.
        let mut cur = if !bit_pos.is_multiple_of(64) {
            self.words.pop().expect("partial word exists")
        } else {
            0
        };
        let total_bits = bit_pos + codes.len() * width;
        self.words
            .reserve(total_bits.div_ceil(64) - self.words.len());
        for &c in codes {
            let code = (c as u64) & mask;
            let offset = (bit_pos % 64) as u32;
            cur |= code << offset;
            let spill = offset + self.width;
            if spill >= 64 {
                self.words.push(cur);
                cur = if spill > 64 { code >> (64 - offset) } else { 0 };
            }
            bit_pos += width;
        }
        if !bit_pos.is_multiple_of(64) {
            self.words.push(cur);
        }
        self.len += codes.len();
        debug_assert_eq!(self.words.len(), (self.len * width).div_ceil(64));
    }

    /// Read every stored code into `dst` (low 32 bits of each code), as
    /// if by repeated [`get`](Self::get) but word-at-a-time, with a SIMD
    /// byte-unpack for 8-bit codes. Intended for codes of width ≤ 32.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != self.len()`.
    pub fn unpack_u32_into(&self, dst: &mut [u32]) {
        assert_eq!(dst.len(), self.len, "slice length mismatch");
        if self.width == 8 {
            crate::simd::unpack_u8_words(&self.words, dst);
            return;
        }
        let mask = self.mask();
        let width = self.width as usize;
        for (i, d) in dst.iter_mut().enumerate() {
            let bit_pos = i * width;
            let word = bit_pos / 64;
            let offset = (bit_pos % 64) as u32;
            let mut code = self.words[word] >> offset;
            if offset + self.width > 64 {
                code |= self.words[word + 1] << (64 - offset);
            }
            *d = (code & mask) as u32;
        }
    }

    /// Iterate over all stored codes.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Bytes consumed by the packed storage.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The raw `u64` storage words backing the packed codes — the
    /// memory-row granularity an ECC layer protects. Padding bits past
    /// the last code are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the raw storage words, for layers that repair
    /// or corrupt storage at memory-row granularity (ECC scrubbing,
    /// fault injection). Writing bits past `len × width` is harmless to
    /// every code-level accessor but *is* visible to [`words`](Self::words)
    /// — exactly like real SRAM padding under a parity check.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

impl Extend<u64> for PackedCodes {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for code in iter {
            self.push(code);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        for width in [1, 3, 4, 5, 7, 8, 13, 16, 31, 32, 33, 63, 64] {
            let mut p = PackedCodes::new(width);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let codes: Vec<u64> = (0..200u64)
                .map(|i| (i.wrapping_mul(0x9E3779B9)) & mask)
                .collect();
            p.extend(codes.iter().copied());
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(p.get(i), c, "width={width} index={i}");
            }
        }
    }

    #[test]
    fn bulk_extend_matches_push_and_unpack_matches_get() {
        for width in [1u32, 3, 4, 5, 7, 8, 12, 16, 31, 32] {
            let mask = (1u64 << width) - 1;
            for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 200] {
                let codes: Vec<u32> = (0..len as u64)
                    .map(|i| (i.wrapping_mul(0x9E37_79B9) & mask) as u32)
                    .collect();
                // Seed with a few scalar pushes so the bulk append starts
                // mid-word, then extend in two chunks.
                let mut bulk = PackedCodes::new(width);
                let mut reference = PackedCodes::new(width);
                for &c in codes.iter().take(3.min(len)) {
                    bulk.push(c as u64);
                }
                let split = len / 2;
                bulk.extend_from_u32(&codes[3.min(len)..split.max(3.min(len))]);
                bulk.extend_from_u32(&codes[split.max(3.min(len))..]);
                for &c in &codes {
                    reference.push(c as u64);
                }
                assert_eq!(bulk, reference, "width={width} len={len}");
                let mut unpacked = vec![0u32; len];
                bulk.unpack_u32_into(&mut unpacked);
                assert_eq!(unpacked, codes, "width={width} len={len}");
            }
        }
    }

    #[test]
    fn straddling_word_boundaries() {
        // 7-bit codes: code 9 starts at bit 63 and straddles words 0/1.
        let mut p = PackedCodes::new(7);
        for i in 0..20 {
            p.push(0x7F - i);
        }
        for i in 0..20 {
            assert_eq!(p.get(i as usize), 0x7F - i);
        }
    }

    #[test]
    fn masks_high_bits() {
        let mut p = PackedCodes::new(4);
        p.push(0xFFFF);
        assert_eq!(p.get(0), 0xF);
    }

    #[test]
    fn set_overwrites_without_disturbing_neighbors() {
        for width in [1u32, 3, 5, 7, 8, 13, 16, 33, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let codes: Vec<u64> = (0..150u64)
                .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) & mask)
                .collect();
            let mut p = PackedCodes::new(width);
            p.extend(codes.iter().copied());
            // Overwrite every third code, then check all of them.
            let mut expect = codes.clone();
            for i in (0..codes.len()).step_by(3) {
                let new = (codes[i] ^ 0x5555_5555_5555_5555) & mask;
                p.set(i, new);
                expect[i] = new;
            }
            for (i, &c) in expect.iter().enumerate() {
                assert_eq!(p.get(i), c, "width={width} index={i}");
            }
        }
    }

    #[test]
    fn set_straddling_boundary() {
        // 7-bit code 9 occupies bits 63..70: the straddle case for set.
        let mut p = PackedCodes::new(7);
        for i in 0..20u64 {
            p.push(i);
        }
        p.set(9, 0x7F);
        for i in 0..20u64 {
            let want = if i == 9 { 0x7F } else { i };
            assert_eq!(p.get(i as usize), want, "index {i}");
        }
    }

    #[test]
    fn flip_bits_is_involutive() {
        let mut p = PackedCodes::new(5);
        for i in 0..40u64 {
            p.push(i % 32);
        }
        let before: Vec<u64> = p.iter().collect();
        p.flip_bits(7, 0b10010);
        assert_eq!(p.get(7), 7 ^ 0b10010);
        p.flip_bits(7, 0b10010);
        assert_eq!(p.iter().collect::<Vec<_>>(), before);
    }

    #[test]
    fn packed_bytes_is_tight() {
        let mut p = PackedCodes::new(4);
        for _ in 0..16 {
            p.push(1);
        }
        // 16 × 4 bits = 64 bits = one word.
        assert_eq!(p.packed_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let p = PackedCodes::new(8);
        p.get(0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut p = PackedCodes::new(8);
        p.set(0, 1);
    }

    #[test]
    fn raw_words_expose_the_exact_storage_image() {
        let mut p = PackedCodes::new(5);
        for i in 0..40u64 {
            p.push(i % 32);
        }
        // 40 × 5 bits = 200 bits → 4 words.
        assert_eq!(p.words().len(), 4);
        let before: Vec<u64> = p.iter().collect();
        // Flipping a raw storage bit perturbs exactly the code holding it.
        p.words_mut()[0] ^= 1 << 7; // bit 7 lives in code 1 (bits 5..10)
        let after: Vec<u64> = p.iter().collect();
        assert_eq!(after[1], before[1] ^ (1 << 2));
        for (i, (&a, &b)) in after.iter().zip(&before).enumerate() {
            if i != 1 {
                assert_eq!(a, b, "code {i} must be untouched");
            }
        }
        // Undo through the same surface restores bit-identity.
        p.words_mut()[0] ^= 1 << 7;
        assert_eq!(p.iter().collect::<Vec<_>>(), before);
    }

    #[test]
    fn from_raw_parts_roundtrips_and_rejects_bad_geometry() {
        let mut p = PackedCodes::new(5);
        for i in 0..40u64 {
            p.push(i.wrapping_mul(0x9E37_79B9) % 32);
        }
        let rebuilt = PackedCodes::from_raw_parts(p.width(), p.len(), p.words().to_vec()).unwrap();
        assert_eq!(rebuilt, p);
        // Wrong word count, zero width, oversized width: all rejected.
        assert!(PackedCodes::from_raw_parts(5, 40, vec![0; 3]).is_none());
        assert!(PackedCodes::from_raw_parts(5, 40, vec![0; 5]).is_none());
        assert!(PackedCodes::from_raw_parts(0, 0, vec![]).is_none());
        assert!(PackedCodes::from_raw_parts(65, 1, vec![0; 2]).is_none());
        // usize overflow in len × width must not panic.
        assert!(PackedCodes::from_raw_parts(64, usize::MAX, vec![]).is_none());
    }

    #[test]
    fn iter_matches_get() {
        let mut p = PackedCodes::new(5);
        for i in 0..40 {
            p.push(i % 32);
        }
        let collected: Vec<u64> = p.iter().collect();
        assert_eq!(collected.len(), 40);
        assert_eq!(collected[37], 37 % 32);
    }
}
