//! Stochastic rounding for AdaptivFloat — an unbiased-rounding extension
//! useful during quantization-aware training (the expected value of the
//! quantized weight equals the real weight, which keeps SGD unbiased).

use crate::adaptiv::{AdaptivFloat, AdaptivParams};
use crate::util::{exp2, floor_log2};

/// A tiny deterministic xorshift64* stream in `[0, 1)` so the crate stays
/// dependency-free and runs are reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StochasticRounder {
    state: u64,
}

impl StochasticRounder {
    /// Seeded stream (seed 0 is remapped to a fixed non-zero constant).
    pub fn new(seed: u64) -> Self {
        StochasticRounder {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next uniform sample in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let r = x.wrapping_mul(0x2545F4914F6CDD1D);
        (r >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl AdaptivFloat {
    /// Quantize one value with *stochastic* rounding: round down or up
    /// with probability proportional to the distance, so
    /// `E[quantize(v)] = v` for in-range values. `u` must be uniform in
    /// `[0, 1)`. Out-of-range values clamp deterministically; the
    /// sub-minimum region rounds stochastically between 0 and
    /// `±value_min`.
    pub fn quantize_with_stochastic(&self, params: &AdaptivParams, v: f32, u: f64) -> f32 {
        debug_assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
        if v.is_nan() || v == 0.0 {
            return 0.0;
        }
        let sign = if v.is_sign_negative() { -1.0f64 } else { 1.0 };
        let a = v.abs() as f64;
        let vmin = params.value_min();
        let vmax = params.value_max();
        if a >= vmax || a.is_infinite() {
            return (sign * vmax) as f32;
        }
        if a < vmin {
            // P(round to vmin) = a / vmin — unbiased between 0 and vmin.
            return if u < a / vmin {
                (sign * vmin) as f32
            } else {
                0.0
            };
        }
        let m = params.mantissa_bits();
        let mut exp = floor_log2(a);
        let scale = exp2(m as i32);
        let mant_scaled = a / exp2(exp) * scale; // in [scale, 2·scale)
        let lo = mant_scaled.floor();
        let frac = mant_scaled - lo;
        let mut q = if u < frac { lo + 1.0 } else { lo } / scale;
        if q >= 2.0 {
            exp += 1;
            q = 1.0;
        }
        if exp > params.exp_max() {
            return (sign * vmax) as f32;
        }
        (sign * exp2(exp) * q) as f32
    }

    /// Quantize a slice with stochastic rounding from a seeded stream.
    pub fn quantize_slice_stochastic(
        &self,
        data: &[f32],
        rounder: &mut StochasticRounder,
    ) -> Vec<f32> {
        let params = self.params_for(data);
        data.iter()
            .map(|&v| self.quantize_with_stochastic(&params, v, rounder.next_unit()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::NumberFormat;

    #[test]
    fn stream_is_uniform_ish_and_deterministic() {
        let mut r1 = StochasticRounder::new(7);
        let mut r2 = StochasticRounder::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let a = r1.next_unit();
            assert_eq!(a, r2.next_unit());
            assert!((0.0..1.0).contains(&a));
            sum += a;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn representable_values_are_fixed_points() {
        let fmt = AdaptivFloat::new(6, 3).unwrap();
        let params = fmt.params_with_bias(-5);
        for &g in &fmt.representable_values(&params) {
            for u in [0.0, 0.3, 0.7, 0.999] {
                assert_eq!(
                    fmt.quantize_with_stochastic(&params, g, u),
                    g,
                    "g={g} u={u}"
                );
            }
        }
    }

    #[test]
    fn expectation_is_unbiased() {
        // E[q(v)] ≈ v for a value halfway between two grid points.
        let fmt = AdaptivFloat::new(8, 3).unwrap();
        let params = fmt.params_with_bias(-7);
        let v = 1.03125f32; // between 1.0 and 1.0625 on the <8,3> grid
        let mut r = StochasticRounder::new(3);
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| fmt.quantize_with_stochastic(&params, v, r.next_unit()) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - v as f64).abs() < 2e-3, "mean {mean} vs {v}");
    }

    #[test]
    fn sub_minimum_expectation() {
        let fmt = AdaptivFloat::new(4, 2).unwrap();
        let params = fmt.params_with_bias(-2); // vmin = 0.375
        let v = 0.15f32;
        let mut r = StochasticRounder::new(11);
        let n = 40_000;
        let mean: f64 = (0..n)
            .map(|_| fmt.quantize_with_stochastic(&params, v, r.next_unit()) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - v as f64).abs() < 5e-3, "mean {mean} vs {v}");
    }

    #[test]
    fn clamping_is_deterministic() {
        let fmt = AdaptivFloat::new(4, 2).unwrap();
        let params = fmt.params_with_bias(-2);
        for u in [0.0, 0.5, 0.99] {
            assert_eq!(fmt.quantize_with_stochastic(&params, 50.0, u), 3.0);
            assert_eq!(fmt.quantize_with_stochastic(&params, -50.0, u), -3.0);
        }
    }

    #[test]
    fn slice_variant_stays_on_grid() {
        let fmt = AdaptivFloat::new(6, 2).unwrap();
        let data: Vec<f32> = (0..200).map(|i| (i as f32 * 0.031).sin() * 2.0).collect();
        let mut r = StochasticRounder::new(5);
        let q = fmt.quantize_slice_stochastic(&data, &mut r);
        let params = fmt.params_for(&data);
        let grid = fmt.representable_values(&params);
        for &v in &q {
            assert!(grid.contains(&v), "{v} off grid");
        }
        // Different from nearest rounding somewhere (it is stochastic).
        let nearest = fmt.quantize_slice(&data);
        assert_ne!(q, nearest);
    }
}
