//! Block floating-point (BFP): a shared exponent per block with fixed-point
//! mantissas, as used by Flexpoint and the Brainwave NPU.
//!
//! Every element of a block is stored as a signed `(n−1)`-bit mantissa
//! scaled by `2^(E − n + 3)` where `E = floor(log2(max|block|))`. Collapsing
//! each element's exponent to the block maximum is what makes BFP cheap in
//! hardware — and what degrades small-magnitude elements, the weakness the
//! paper demonstrates on wide NLP weight distributions.

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::util::{exp2, floor_log2, from_twos_complement, to_twos_complement};

/// Block floating-point format descriptor.
///
/// # Examples
///
/// ```
/// use adaptivfloat::{BlockFloat, NumberFormat};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// // Per-tensor shared exponent (the paper's configuration).
/// let fmt = BlockFloat::new(8)?;
/// let q = fmt.quantize_slice(&[1.0, 0.001, -0.5]);
/// // The large value survives; the tiny one is crushed to the grid.
/// assert!((q[0] - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockFloat {
    n: u32,
    /// Elements sharing one exponent; `None` = the whole tensor.
    block: Option<usize>,
}

impl BlockFloat {
    /// Per-tensor shared exponent with `n`-bit words (1 sign bit,
    /// `n − 1` mantissa bits).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `2 ≤ n ≤ 32`.
    pub fn new(n: u32) -> Result<Self, FormatError> {
        if !(2..=32).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e: 0,
                reason: "block float word size must be between 2 and 32 bits",
            });
        }
        Ok(BlockFloat { n, block: None })
    }

    /// Shared exponent per `block_size` consecutive elements instead of per
    /// tensor (used by the block-size ablation).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if `n` is out of range or
    /// `block_size` is zero.
    pub fn with_block_size(n: u32, block_size: usize) -> Result<Self, FormatError> {
        if block_size == 0 {
            return Err(FormatError::InvalidBits {
                n,
                e: 0,
                reason: "block size must be at least 1",
            });
        }
        let mut f = Self::new(n)?;
        f.block = Some(block_size);
        Ok(f)
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Block size (`None` means per-tensor).
    pub fn block_size(&self) -> Option<usize> {
        self.block
    }

    /// The shared exponent a block with maximum magnitude `max_abs` gets.
    pub fn shared_exponent(max_abs: f32) -> i32 {
        if max_abs == 0.0 {
            0
        } else {
            floor_log2(max_abs as f64)
        }
    }

    /// Largest mantissa level, `2^(n−2) − 1`.
    fn mant_max(&self) -> i64 {
        (1i64 << (self.n - 2)) - 1
    }

    /// The mantissa grid step for shared exponent `e`, `2^(E − n + 3)`.
    fn scale_at(&self, e: i32) -> f64 {
        exp2(e - self.n as i32 + 3)
    }

    /// Encode one element against a fixed shared exponent as an `n`-bit
    /// two's-complement mantissa word — what the weight buffer stores
    /// next to the block's exponent.
    pub fn encode_code(&self, e: i32, v: f32) -> u32 {
        if v.is_nan() {
            return 0;
        }
        let q = ((v as f64) / self.scale_at(e)).round() as i64;
        to_twos_complement(q.clamp(-self.mant_max(), self.mant_max()), self.n)
    }

    /// Decode an `n`-bit mantissa word against a shared exponent, exactly
    /// as the bits say (a corrupted word may decode outside the mantissa
    /// clamp range).
    pub fn decode_code(&self, e: i32, code: u32) -> f32 {
        (from_twos_complement(code, self.n) as f64 * self.scale_at(e)) as f32
    }

    /// Decode an `n`-bit mantissa word under a [`DecodePolicy`].
    ///
    /// Under [`DecodePolicy::Harden`], mantissa levels outside the
    /// quantizer's clamp range (`±(2^(n−2) − 1)` — reachable only via
    /// corruption, e.g. the unused `−2^(n−1)` extreme) clamp back to it,
    /// and a corrupted shared exponent that overflows `f32` repairs to
    /// `0.0`; both are counted in `stats`.
    pub fn decode_code_with_policy(
        &self,
        e: i32,
        code: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let v = self.decode_code(e, code);
        let max_abs = (self.mant_max() as f64 * self.scale_at(e)) as f32;
        stats.guard(policy, max_abs, v)
    }

    /// Quantize one element against a fixed shared exponent.
    pub(crate) fn quantize_one_at(&self, e: i32, v: f32) -> f32 {
        if v.is_nan() {
            return 0.0;
        }
        let scale = exp2(e - self.n as i32 + 3);
        let mant_max = (1i64 << (self.n - 2)) - 1;
        let q = ((v as f64) / scale).round() as i64;
        (q.clamp(-mant_max, mant_max) as f64 * scale) as f32
    }

    /// Quantize one block in place.
    pub(crate) fn quantize_block(&self, block: &mut [f32]) {
        let max_abs = f32::from_bits(crate::kernels::max_abs_bits(block));
        if max_abs == 0.0 {
            block.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        let e = Self::shared_exponent(max_abs);
        self.quantize_block_at(e, block);
    }

    /// Quantize a block in place against a fixed shared exponent.
    fn quantize_block_at(&self, e: i32, block: &mut [f32]) {
        use crate::lut::{self, LutKey};
        if self.n <= lut::MAX_LUT_BITS && block.len() >= lut::MIN_LUT_LEN {
            // Shared exponents take few distinct values across blocks and
            // tensors, so the per-exponent codebooks are reused heavily.
            let table = lut::cached(LutKey::Bfp { n: self.n, exp: e }, |v| {
                self.quantize_one_at(e, v)
            });
            crate::par::par_apply(block, |chunk| {
                for v in chunk.iter_mut() {
                    *v = table.quantize_one(*v);
                }
            });
            return;
        }
        // Mantissa grid: signed (n−1)-bit integers at scale 2^(E − n + 3),
        // so the top magnitude 2^(E+1) maps to the extreme mantissa.
        let scale = exp2(e - self.n as i32 + 3);
        let mant_max = (1i64 << (self.n - 2)) - 1;
        crate::par::par_apply(block, |chunk| {
            for v in chunk.iter_mut() {
                if v.is_nan() {
                    *v = 0.0;
                    continue;
                }
                let q = ((*v as f64) / scale).round() as i64;
                let q = q.clamp(-mant_max, mant_max);
                *v = (q as f64 * scale) as f32;
            }
        });
    }

    /// Quantize, also returning the shared exponent of each block (what a
    /// hardware implementation stores alongside the mantissas).
    pub fn quantize_with_exponents(&self, data: &[f32]) -> (Vec<f32>, Vec<i32>) {
        let mut out = data.to_vec();
        let block_len = self.block.unwrap_or(data.len().max(1));
        let mut exps = Vec::new();
        for chunk in out.chunks_mut(block_len) {
            let max_abs = chunk
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .fold(0.0f32, |acc, v| acc.max(v.abs()));
            exps.push(Self::shared_exponent(max_abs));
            self.quantize_block(chunk);
        }
        (out, exps)
    }
}

impl NumberFormat for BlockFloat {
    fn name(&self) -> String {
        match self.block {
            Some(b) => format!("BFP<{}>/block{}", self.n, b),
            None => format!("BFP<{}>", self.n),
        }
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::lut::{self, LutKey};
        use crate::plan::{Backend, PlanParams, QuantPlan};
        // Per-block exponents are re-derived during execution; a
        // calibrated range collapses to one shared exponent for the whole
        // slice, exactly as the fused with-max path did.
        if self.block.is_some() && !stats.is_calibrated() {
            return QuantPlan::new(self.n, PlanParams::PerBlock, Backend::BfpBlocked(*self));
        }
        let max_abs = stats.max_abs();
        if max_abs == 0.0 {
            return QuantPlan::new(self.n, PlanParams::Bfp { shared_exp: None }, Backend::Zero);
        }
        let e = Self::shared_exponent(max_abs);
        let backend = if self.n <= lut::MAX_LUT_BITS && stats.len() >= lut::MIN_LUT_LEN {
            // Shared exponents take few distinct values across blocks and
            // tensors, so the per-exponent codebooks are reused heavily.
            Backend::Lut(lut::cached(LutKey::Bfp { n: self.n, exp: e }, |v| {
                self.quantize_one_at(e, v)
            }))
        } else {
            Backend::BfpScalar { fmt: *self, exp: e }
        };
        QuantPlan::new(
            self.n,
            PlanParams::Bfp {
                shared_exp: Some(e),
            },
            backend,
        )
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_magnitude_survives() {
        let fmt = BlockFloat::new(8).unwrap();
        let q = fmt.quantize_slice(&[3.7, 0.1, -1.0]);
        assert!((q[0] - 3.7).abs() < 0.05);
    }

    #[test]
    fn small_values_crushed_by_wide_range() {
        // With max 100 and 8-bit words the grid step is ~1.56; a value of
        // 0.4 is crushed to 0 — BFP's documented weakness.
        let fmt = BlockFloat::new(8).unwrap();
        let q = fmt.quantize_slice(&[100.0, 0.4]);
        assert_eq!(q[1], 0.0);
    }

    #[test]
    fn grid_step_matches_formula() {
        let fmt = BlockFloat::new(8).unwrap();
        // max 1.0 → E=0 → scale 2^(0−8+3) = 2^−5 = 0.03125.
        let q = fmt.quantize_slice(&[1.0, 0.03125, 0.046875]);
        assert_eq!(q[1], 0.03125);
        // 0.046875 = 1.5 steps → rounds away to 2 steps = 0.0625.
        assert_eq!(q[2], 0.0625);
    }

    #[test]
    fn symmetric_clamping() {
        let fmt = BlockFloat::new(4).unwrap();
        // 4-bit: mantissas in [−3, 3] at scale 2^(E−1).
        let q = fmt.quantize_slice(&[1.0, -1.0]);
        assert_eq!(q[0], -q[1]);
    }

    #[test]
    fn per_block_exponents_differ() {
        let fmt = BlockFloat::with_block_size(8, 2).unwrap();
        let (_, exps) = fmt.quantize_with_exponents(&[8.0, 1.0, 0.5, 0.25]);
        assert_eq!(exps, vec![3, -1]);
    }

    #[test]
    fn per_block_beats_per_tensor_on_bimodal_data() {
        use crate::rms_error;
        // Two populations of very different magnitude: a per-row shared
        // exponent renders the small block far better.
        let mut data = vec![50.0f32; 8];
        data.extend(std::iter::repeat_n(0.05f32, 8));
        let per_tensor = BlockFloat::new(8).unwrap().quantize_slice(&data);
        let per_block = BlockFloat::with_block_size(8, 8)
            .unwrap()
            .quantize_slice(&data);
        assert!(rms_error(&data, &per_block) < rms_error(&data, &per_tensor));
    }

    #[test]
    fn all_zero_block() {
        let fmt = BlockFloat::new(8).unwrap();
        assert_eq!(fmt.quantize_slice(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn nan_and_inf_handling() {
        let fmt = BlockFloat::new(8).unwrap();
        let q = fmt.quantize_slice(&[1.0, f32::NAN, f32::INFINITY]);
        assert_eq!(q[1], 0.0);
        // Infinity saturates to the mantissa clamp.
        assert!(q[2].is_finite());
    }

    #[test]
    fn idempotent() {
        let fmt = BlockFloat::new(6).unwrap();
        let data: Vec<f32> = (-40..40).map(|i| i as f32 * 0.13).collect();
        let q1 = fmt.quantize_slice(&data);
        let q2 = fmt.quantize_slice(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(BlockFloat::new(1).is_err());
        assert!(BlockFloat::new(33).is_err());
        assert!(BlockFloat::with_block_size(8, 0).is_err());
    }
}
