//! Hardened decode policies for corrupted codes.
//!
//! A bit upset in a weight buffer or a parameter register turns a valid
//! code into an arbitrary one. Every format in this crate decodes every
//! bit pattern to *some* value, but a corrupted pattern can still be
//! poisonous downstream: a posit NaR decodes to NaN, a flipped
//! `exp_bias` register can push an AdaptivFloat decode to ±∞ in `f32`,
//! an integer level can escape the symmetric range. [`DecodePolicy`]
//! selects between the raw decode (faithful to the bits, garbage
//! included) and a hardened decode that detects and repairs such codes
//! at the decoder boundary — the cheap "clamp at the output mux"
//! hardening a resilient PE would implement — while counting every
//! repair in a [`DecodeStats`] so campaigns can report detection rates.

/// How a decoder treats suspicious codes and parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodePolicy {
    /// Trust the bits: decode exactly what they say. NaN/Inf and
    /// out-of-range magnitudes propagate into the tensor.
    Raw,
    /// Detect-and-repair: non-finite decodes (posit NaR, overflowed
    /// exponent arithmetic) become `0.0`, magnitudes beyond the format's
    /// representable maximum clamp to it (sign preserved), and integer
    /// levels beyond the symmetric range clamp to the extreme level.
    /// Every repair increments a [`DecodeStats`] counter.
    #[default]
    Harden,
}

impl DecodePolicy {
    /// Short label for reports: `"raw"` or `"harden"`.
    pub fn label(self) -> &'static str {
        match self {
            DecodePolicy::Raw => "raw",
            DecodePolicy::Harden => "harden",
        }
    }
}

impl std::fmt::Display for DecodePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-tensor corruption counters accumulated by hardened decodes.
///
/// The counters are *detections*, not injected-fault counts: a flipped
/// mantissa bit yields a perfectly valid nearby code and is invisible
/// here, while exponent/special-pattern upsets are caught. Comparing
/// `repaired()` against a campaign's injected-fault count measures the
/// decoder's detection coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeStats {
    /// Codes decoded in total.
    pub decoded: u64,
    /// Decodes that produced NaN/±∞ (or a special not-a-real pattern)
    /// and were repaired to `0.0`.
    pub nonfinite: u64,
    /// Decodes whose magnitude exceeded the format's representable
    /// range and were clamped to the extreme (sign preserved).
    pub out_of_range: u64,
}

impl DecodeStats {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of repaired (detected-corrupt) decodes.
    pub fn repaired(&self) -> u64 {
        self.nonfinite + self.out_of_range
    }

    /// Merge another tensor's counters into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.decoded += other.decoded;
        self.nonfinite += other.nonfinite;
        self.out_of_range += other.out_of_range;
    }

    /// Apply the policy's finite/range repair to a decoded value:
    /// under [`DecodePolicy::Harden`], NaN/±∞ → `0.0` and
    /// `|v| > max_abs` → `±max_abs`, with the matching counter bumped.
    /// Under [`DecodePolicy::Raw`] the value passes through (only
    /// `decoded` is counted).
    pub fn guard(&mut self, policy: DecodePolicy, max_abs: f32, v: f32) -> f32 {
        self.decoded += 1;
        if policy == DecodePolicy::Raw {
            return v;
        }
        if !v.is_finite() {
            self.nonfinite += 1;
            return 0.0;
        }
        if v.abs() > max_abs {
            self.out_of_range += 1;
            return if v < 0.0 { -max_abs } else { max_abs };
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_passes_everything_through() {
        let mut s = DecodeStats::new();
        assert!(s.guard(DecodePolicy::Raw, 1.0, f32::NAN).is_nan());
        assert_eq!(s.guard(DecodePolicy::Raw, 1.0, 5.0), 5.0);
        assert_eq!(s.decoded, 2);
        assert_eq!(s.repaired(), 0);
    }

    #[test]
    fn harden_repairs_and_counts() {
        let mut s = DecodeStats::new();
        assert_eq!(s.guard(DecodePolicy::Harden, 3.0, f32::NAN), 0.0);
        assert_eq!(s.guard(DecodePolicy::Harden, 3.0, f32::INFINITY), 0.0);
        assert_eq!(s.guard(DecodePolicy::Harden, 3.0, -7.5), -3.0);
        assert_eq!(s.guard(DecodePolicy::Harden, 3.0, 2.5), 2.5);
        assert_eq!(s.decoded, 4);
        assert_eq!(s.nonfinite, 2);
        assert_eq!(s.out_of_range, 1);
        assert_eq!(s.repaired(), 3);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = DecodeStats {
            decoded: 10,
            nonfinite: 1,
            out_of_range: 2,
        };
        let b = DecodeStats {
            decoded: 5,
            nonfinite: 3,
            out_of_range: 0,
        };
        a.merge(&b);
        assert_eq!(a.decoded, 15);
        assert_eq!(a.repaired(), 6);
    }

    #[test]
    fn default_policy_is_harden() {
        assert_eq!(DecodePolicy::default(), DecodePolicy::Harden);
        assert_eq!(DecodePolicy::Harden.to_string(), "harden");
        assert_eq!(DecodePolicy::Raw.label(), "raw");
    }
}
