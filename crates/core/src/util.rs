//! Internal numeric helpers shared by the format implementations.

/// Exact `2^k` as `f64`.
pub(crate) fn exp2(k: i32) -> f64 {
    (k as f64).exp2()
}

/// Exact `floor(log2(|x|))` for finite non-zero `x`, via the IEEE-754 bit
/// layout of `f64`. Every non-zero finite `f32` widens to a *normal* `f64`,
/// so the fast path is exact for all inputs this crate sees.
pub(crate) fn floor_log2(x: f64) -> i32 {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.abs().to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // f64 subnormal: find the highest set mantissa bit.
        let mant = bits & ((1u64 << 52) - 1);
        -1023 - 52 + (63 - mant.leading_zeros() as i32) + 1
    } else {
        biased - 1023
    }
}

/// Encode a signed integer level as an `n`-bit two's-complement word
/// (`n ≤ 32`). Bits above `n` are cleared; the level is expected to fit,
/// but out-of-range inputs simply wrap, as hardware storage would.
pub(crate) fn to_twos_complement(level: i64, n: u32) -> u32 {
    let mask = if n >= 32 {
        u64::MAX >> 32
    } else {
        (1u64 << n) - 1
    };
    (level as u64 & mask) as u32
}

/// Decode an `n`-bit two's-complement word back to a signed level
/// (`n ≤ 32`). Bits above `n` are ignored.
pub(crate) fn from_twos_complement(code: u32, n: u32) -> i64 {
    let mask = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
    let code = code & mask;
    if n < 32 && (code >> (n - 1)) & 1 == 1 {
        code as i64 - (1i64 << n)
    } else if n == 32 {
        code as i32 as i64
    } else {
        code as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twos_complement_roundtrip() {
        for n in [2u32, 4, 8, 13, 16, 31, 32] {
            let hi = if n == 32 {
                i32::MAX as i64
            } else {
                (1i64 << (n - 1)) - 1
            };
            for level in [-(hi + 1), -hi, -1, 0, 1, hi] {
                let code = to_twos_complement(level, n);
                assert_eq!(from_twos_complement(code, n), level, "n={n} level={level}");
            }
        }
    }

    #[test]
    fn floor_log2_exact_powers() {
        for k in -60..=60 {
            assert_eq!(floor_log2(exp2(k)), k);
            // Just below a power of two belongs to the previous binade.
            let below = exp2(k) * (1.0 - 1e-12);
            assert_eq!(floor_log2(below), k - 1, "k={k}");
        }
    }

    #[test]
    fn floor_log2_subnormal_f64() {
        let tiny = f64::from_bits(1);
        assert_eq!(floor_log2(tiny), -1074);
    }
}
