//! Internal numeric helpers shared by the format implementations.

/// Exact `2^k` as `f64`.
pub(crate) fn exp2(k: i32) -> f64 {
    (k as f64).exp2()
}

/// Exact `floor(log2(|x|))` for finite non-zero `x`, via the IEEE-754 bit
/// layout of `f64`. Every non-zero finite `f32` widens to a *normal* `f64`,
/// so the fast path is exact for all inputs this crate sees.
pub(crate) fn floor_log2(x: f64) -> i32 {
    debug_assert!(x.is_finite() && x != 0.0);
    let bits = x.abs().to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // f64 subnormal: find the highest set mantissa bit.
        let mant = bits & ((1u64 << 52) - 1);
        -1023 - 52 + (63 - mant.leading_zeros() as i32) + 1
    } else {
        biased - 1023
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_log2_exact_powers() {
        for k in -60..=60 {
            assert_eq!(floor_log2(exp2(k)), k);
            // Just below a power of two belongs to the previous binade.
            let below = exp2(k) * (1.0 - 1e-12);
            assert_eq!(floor_log2(below), k - 1, "k={k}");
        }
    }

    #[test]
    fn floor_log2_subnormal_f64() {
        let tiny = f64::from_bits(1);
        assert_eq!(floor_log2(tiny), -1074);
    }
}
