//! Fast integer-domain AdaptivFloat quantization kernels.
//!
//! [`AdaptivFloat::quantize_with`] is the paper-faithful f64 reference:
//! readable, obviously correct, and slow (per element it computes
//! `floor_log2`, two `exp2`, a division, and a round in f64). This module
//! reimplements the same function directly on `f32::to_bits()` patterns:
//!
//! * the three magnitude regions (underflow to zero, promote to
//!   `value_min`, clamp to `value_max`) become unsigned comparisons
//!   against **precomputed threshold bit patterns** — for an exact f64
//!   threshold `X`, the smallest `f32` `t` with `t ≥ X` satisfies
//!   `a ≥ X ⟺ a.to_bits() ≥ t.to_bits()` for every non-negative finite
//!   `a` (positive f32 bit patterns order identically to their values,
//!   subnormals included);
//! * mantissa rounding at scale `2^−m` becomes an add-and-shift on the
//!   24-bit significand: with `shift = 23 − m`, the reference's
//!   `(mant · 2^m).round()` equals `(sig + (1 << (shift−1))) >> shift`
//!   because `mant · 2^m = sig / 2^shift` is exact in f64 and `.round()`
//!   is round-half-away-from-zero, which on non-negative values is
//!   round-half-up — exactly what the biased shift computes;
//! * the result is assembled straight into an `f32` bit pattern (the
//!   quantized value has at most `m + 1 ≤ 24` significand bits and a
//!   normal exponent, so the construction is exact).
//!
//! The fast path covers every format whose grid lives inside the normal
//! f32 range (`m ≤ 23`, `exp_bias ≥ −126`, `exp_max ≤ 127`) — in
//! particular all paper configurations. [`FastQuantizer::new`] returns
//! `None` outside that envelope and callers fall back to the reference.
//! Bit-exactness against the reference is enforced by the property tests
//! in `tests/kernel_bitexact.rs`.

use crate::adaptiv::{AdaptivFloat, AdaptivParams};

/// Bit mask of the f32 exponent field (also the +∞ pattern).
const EXP_MASK: u32 = 0x7f80_0000;
/// Bit mask of the f32 mantissa field.
const MANT_MASK: u32 = 0x007f_ffff;
/// Bit mask selecting the magnitude (everything but the sign).
const ABS_MASK: u32 = 0x7fff_ffff;
/// Bit mask of the sign.
const SIGN_MASK: u32 = 0x8000_0000;

/// The bit pattern of the smallest `f32` whose value is `≥ x`.
///
/// `x` must be positive and at most `f32::MAX` (as f64). The returned
/// pattern `t` satisfies, for every non-negative finite `f32` value `a`:
/// `(a as f64) >= x ⟺ a.to_bits() >= t`.
fn threshold_bits(x: f64) -> u32 {
    debug_assert!(x > 0.0 && x <= f32::MAX as f64);
    // `as f32` rounds to nearest; nudge up one ulp if it rounded down.
    let t = x as f32;
    if (t as f64) >= x {
        t.to_bits()
    } else {
        t.to_bits() + 1
    }
}

/// Maximum finite magnitude of `data` as a non-negative f32 bit pattern
/// (`0` when the slice is empty, all zero, or all non-finite).
///
/// Because non-negative f32 bit patterns order identically to their
/// values, the max-abs reduction runs entirely on integers: mask the
/// sign, skip NaN/∞, take the integer maximum. This is a thin wrapper
/// over the canonical fused scan in [`crate::simd::scan_abs`] — the same
/// single pass `QuantStats::from_slice` runs, so the max-abs logic
/// exists exactly once (and is vectorized once).
pub fn max_abs_bits(data: &[f32]) -> u32 {
    crate::simd::scan_abs(data).0
}

/// `floor(log2(value))` of the f32 whose magnitude bit pattern is
/// `abs_bits` (must be non-zero and finite).
///
/// Matches `util::floor_log2(value as f64)` exactly: a normal number's
/// floor-log2 is its unbiased exponent; a subnormal's comes from the
/// position of its leading mantissa bit.
pub fn floor_log2_bits(abs_bits: u32) -> i32 {
    debug_assert!(abs_bits != 0 && abs_bits < EXP_MASK);
    let biased = (abs_bits >> 23) as i32;
    if biased != 0 {
        biased - 127
    } else {
        // value = frac · 2^−149 with frac ∈ [1, 2^23).
        let frac = abs_bits & MANT_MASK;
        (31 - frac.leading_zeros() as i32) - 149
    }
}

/// A prepared single-format, single-tensor quantizer: all thresholds and
/// shift amounts derived once, so the per-element work is a handful of
/// integer compares, an add, and two shifts.
#[derive(Debug, Clone, Copy)]
pub struct FastQuantizer {
    /// Patterns below this (incl. ±0) quantize to +0.0: `vmin / 2`.
    pub(crate) t_half_min: u32,
    /// Patterns below this (but ≥ `t_half_min`) promote to `±value_min`.
    pub(crate) t_min: u32,
    /// Patterns at or above this clamp to `±value_max`.
    pub(crate) t_max: u32,
    /// `value_min` as f32 bits (positive).
    pub(crate) vmin_bits: u32,
    /// `value_max` as f32 bits (positive).
    pub(crate) vmax_bits: u32,
    /// Significand right-shift, `23 − m`.
    pub(crate) shift: u32,
    /// Rounding increment, `2^(shift−1)` (0 when `shift == 0`).
    pub(crate) round: u32,
    /// `2^(m+1)` in significand units — the carry sentinel.
    carry_at: u32,
    /// `2^m` in significand units — the post-carry significand.
    carry_to: u32,
}

impl FastQuantizer {
    /// Prepare the fast path for one `(format, params)` pair, or `None`
    /// when the grid leaves the normal-f32 envelope (callers then use the
    /// f64 reference, [`AdaptivFloat::quantize_with`]).
    pub fn new(fmt: &AdaptivFloat, params: &AdaptivParams) -> Option<Self> {
        debug_assert_eq!((params.n, params.e), (fmt.n(), fmt.e()));
        let m = params.mantissa_bits();
        if m > 23 || params.exp_bias < -126 || params.exp_max() > 127 {
            return None;
        }
        let vmin = params.value_min();
        let vmax = params.value_max();
        let shift = 23 - m;
        Some(FastQuantizer {
            t_half_min: threshold_bits(vmin * 0.5),
            t_min: threshold_bits(vmin),
            t_max: threshold_bits(vmax),
            // Both are exact: ≤ m+1 significand bits, normal exponent.
            vmin_bits: (vmin as f32).to_bits(),
            vmax_bits: (vmax as f32).to_bits(),
            shift,
            round: if shift == 0 { 0 } else { 1 << (shift - 1) },
            carry_at: 1 << (m + 1),
            carry_to: 1 << m,
        })
    }

    /// Quantize one value. Bit-identical to the reference
    /// [`AdaptivFloat::quantize_with`] under the same parameters.
    #[inline]
    pub fn quantize_one(&self, v: f32) -> f32 {
        let bits = v.to_bits();
        let abs = bits & ABS_MASK;
        let sign = bits & SIGN_MASK;
        if abs < self.t_half_min {
            // Below vmin/2 (including ±0): underflow to +0.0, sign
            // dropped, exactly as the reference does.
            return 0.0;
        }
        if abs >= self.t_max {
            if abs > EXP_MASK {
                return 0.0; // NaN
            }
            return f32::from_bits(sign | self.vmax_bits); // clamp (∞ too)
        }
        if abs < self.t_min {
            return f32::from_bits(sign | self.vmin_bits);
        }
        // Main path: abs is a normal number in [vmin, vmax).
        let mut exp = (abs >> 23) as i32 - 127;
        let sig = (abs & MANT_MASK) | (1 << 23);
        let mut q = (sig + self.round) >> self.shift;
        if q == self.carry_at {
            // Mantissa rounded up to 2.0: carry into the exponent. This
            // cannot push past exp_max — values that would land there sit
            // in [vmax, ∞) and were clamped above.
            exp += 1;
            q = self.carry_to;
        }
        f32::from_bits(sign | (((exp + 127) as u32) << 23) | ((q - self.carry_to) << self.shift))
    }

    /// Quantize `src` into `dst`, through the SIMD path when the host
    /// offers one (see [`crate::simd`]). Bit-identical to
    /// [`quantize_into_scalar`](Self::quantize_into_scalar) always.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn quantize_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        crate::simd::quantize_fast(self, src, dst);
    }

    /// Quantize `src` into `dst` through the plain scalar loop — the
    /// vector paths' reference twin, exposed so benchmarks and the
    /// bit-identity suites can compare both legs in one process.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn quantize_into_scalar(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.quantize_one(s);
        }
    }

    /// Quantize `data` where it sits (SIMD-dispatched like
    /// [`quantize_into`](Self::quantize_into)).
    pub fn quantize_in_place(&self, data: &mut [f32]) {
        crate::simd::quantize_fast_in_place(self, data);
    }
}

/// Derive per-tensor parameters with a single integer max-abs scan.
/// Equal to [`AdaptivFloat::params_for`] on every input.
pub fn params_from_bits_scan(fmt: &AdaptivFloat, data: &[f32]) -> AdaptivParams {
    let max = max_abs_bits(data);
    let exp_max = if max == 0 { 0 } else { floor_log2_bits(max) };
    fmt.params_with_exp_max(exp_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn af(n: u32, e: u32) -> AdaptivFloat {
        AdaptivFloat::new(n, e).unwrap()
    }

    #[test]
    fn threshold_bits_is_exact_boundary() {
        for x in [0.375f64, 1.0, 3.0, 1e-40, 0.1, f32::MAX as f64] {
            let t = threshold_bits(x);
            let below = f32::from_bits(t.saturating_sub(1));
            let at = f32::from_bits(t);
            assert!((at as f64) >= x, "x={x}");
            if t > 0 {
                assert!((below as f64) < x, "x={x}");
            }
        }
    }

    #[test]
    fn max_abs_bits_matches_reference_fold() {
        let data = [
            0.0f32,
            -0.0,
            1.5,
            -2.25,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            -1e-40,
            3.7e37,
        ];
        let reference = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        assert_eq!(max_abs_bits(&data), reference.to_bits());
        assert_eq!(max_abs_bits(&[]), 0);
        assert_eq!(max_abs_bits(&[f32::NAN]), 0);
    }

    #[test]
    fn floor_log2_bits_matches_util() {
        for v in [1.0f32, 1.5, 2.0, 0.5, 0.37, 1e-38, 1e-44, 3e38, 2.89] {
            assert_eq!(
                floor_log2_bits(v.to_bits()),
                crate::util::floor_log2(v as f64),
                "v={v}"
            );
        }
        assert_eq!(floor_log2_bits(1), -149); // smallest subnormal
    }

    #[test]
    fn params_from_bits_scan_matches_params_for() {
        let fmt = af(8, 3);
        let cases: [&[f32]; 5] = [
            &[],
            &[0.0, -0.0],
            &[0.1, -0.9, 0.5],
            &[20.0, -3.0],
            &[f32::NAN, f32::INFINITY, 8.0],
        ];
        for data in cases {
            assert_eq!(params_from_bits_scan(&fmt, data), fmt.params_for(data));
        }
    }

    #[test]
    fn fast_matches_reference_on_dense_sweep() {
        for (n, e) in [(4, 2), (6, 3), (8, 3), (8, 4), (4, 3), (16, 5)] {
            let fmt = af(n, e);
            for bias in [-7i32, -2, 0, 3] {
                let params = fmt.params_with_bias(bias);
                let fast = FastQuantizer::new(&fmt, &params).expect("in envelope");
                let mut x = -40.0f32;
                while x < 40.0 {
                    let want = fmt.quantize_with(&params, x);
                    let got = fast.quantize_one(x);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "n={n} e={e} bias={bias} x={x}: {got} vs {want}"
                    );
                    x += 0.0173;
                }
            }
        }
    }

    #[test]
    fn fast_matches_reference_on_specials() {
        let fmt = af(8, 3);
        let params = fmt.params_with_bias(-7);
        let fast = FastQuantizer::new(&fmt, &params).unwrap();
        for v in [
            0.0f32,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            f32::from_bits(1),
            f32::MAX,
            f32::MIN,
        ] {
            let want = fmt.quantize_with(&params, v);
            let got = fast.quantize_one(v);
            assert_eq!(got.to_bits(), want.to_bits(), "v={v}");
        }
    }

    #[test]
    fn envelope_gate_rejects_out_of_range_grids() {
        // m = 27 > 23.
        let wide = af(32, 4);
        assert!(FastQuantizer::new(&wide, &wide.params_with_bias(-3)).is_none());
        // exp_bias below the normal-f32 floor.
        let fmt = af(8, 3);
        assert!(FastQuantizer::new(&fmt, &fmt.params_with_bias(-127)).is_none());
        // exp_max above 127.
        assert!(FastQuantizer::new(&fmt, &fmt.params_with_bias(121)).is_none());
        assert!(FastQuantizer::new(&fmt, &fmt.params_with_bias(120)).is_some());
    }
}
