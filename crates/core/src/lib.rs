//! # AdaptivFloat — adaptive floating-point encodings for deep learning
//!
//! This crate implements the number formats studied in *"Algorithm-Hardware
//! Co-Design of Adaptive Floating-Point Encodings for Resilient Deep Learning
//! Inference"* (Tambe et al., DAC 2020):
//!
//! * [`AdaptivFloat`] — the paper's contribution: a float-like `<n, e>`
//!   format with **no denormals**, the all-zero encoding reassigned from
//!   ±minimum to ±0, and a per-tensor exponent bias chosen from the tensor's
//!   maximum absolute value (Algorithm 1 of the paper).
//! * [`IeeeLikeFloat`] — a non-adaptive IEEE-754-style `<n, e>` miniature
//!   float with subnormals and round-to-nearest-even.
//! * [`Posit`] — the posit `<n, es>` tapered-precision format.
//! * [`BlockFloat`] — block floating-point with a shared per-block exponent.
//! * [`Uniform`] — symmetric uniform (integer) quantization with an FP scale.
//! * [`FixedPoint`] — a classic Qm.f fixed-point baseline.
//!
//! All formats implement the [`NumberFormat`] trait so they can be swept
//! uniformly in experiments, and each exposes a bit-accurate codec
//! (encode a value to its bit pattern, decode a bit pattern back) so the
//! hardware model in `af-hw` can be driven bit-for-bit.
//!
//! ## Quickstart
//!
//! ```
//! use adaptivfloat::{AdaptivFloat, NumberFormat};
//!
//! # fn main() -> Result<(), adaptivfloat::FormatError> {
//! // An 8-bit AdaptivFloat with 3 exponent bits (the paper's sweet spot).
//! let fmt = AdaptivFloat::new(8, 3)?;
//! let weights = [0.02_f32, -1.4, 3.1, -0.3, 0.0];
//! let q = fmt.quantize_slice(&weights);
//! assert_eq!(q.len(), weights.len());
//! // Zero is exactly representable — the paper's custom zero assignment.
//! assert_eq!(q[4], 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adaptiv;
pub mod bfp;
pub mod block_adaptiv;
pub mod decode;
pub mod error;
pub mod fixed;
pub mod format;
pub mod ieee_like;
pub mod kernels;
pub mod lut;
pub mod metrics;
pub mod pack;
pub mod par;
pub mod plan;
pub mod posit;
pub mod search;
pub mod simd;
pub mod stats;
pub mod stochastic;
pub mod table;
pub mod uniform;
pub(crate) mod util;

pub use adaptiv::{AdaptivFloat, AdaptivParams, QuantizedTensor};
pub use bfp::BlockFloat;
pub use block_adaptiv::BlockAdaptivFloat;
pub use decode::{DecodePolicy, DecodeStats};
pub use error::FormatError;
pub use fixed::FixedPoint;
pub use format::{FormatKind, NumberFormat};
pub use ieee_like::IeeeLikeFloat;
pub use metrics::{max_abs_error, mean_abs_error, rms_error, sqnr_db};
pub use pack::{BitPacker, PackedCodes};
pub use plan::{PlanParams, QuantPlan, QuantStats};
pub use posit::Posit;
pub use simd::{Isa, SimdReport};
pub use stats::TensorStats;
pub use stochastic::StochasticRounder;
pub use uniform::Uniform;
