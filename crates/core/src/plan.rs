//! The plan/execute quantization pipeline.
//!
//! The paper's Algorithm 1 is naturally two phases: derive the per-tensor
//! parameters once (`exp_bias` from `max |W|` — step 1), then apply the
//! rounding map to every element (steps 2–4). This module separates those
//! phases for *every* format, mirroring what the hardware does with its
//! scale/bias registers:
//!
//! * [`QuantStats`] — one single-pass scan over the tensor (integer-domain
//!   max-abs, recording the first non-finite element on the way), or a
//!   calibrated range captured offline;
//! * [`QuantPlan`] — the frozen per-tensor parameters for any format
//!   (AdaptivFloat exponent bias, BFP shared exponent, uniform scale,
//!   static float/posit/fixed grids) plus an execution backend chosen
//!   **once at plan time**;
//! * [`QuantPlan::execute_into`] / [`QuantPlan::execute_in_place`] — the
//!   allocation-free executor, bit-identical to the fused
//!   `NumberFormat::quantize_slice` paths it replaces.
//!
//! # Backend cost heuristic
//!
//! The backend is picked from `(format, n, len)` when the plan is built,
//! never per element:
//!
//! * **AdaptivFloat** uses the bit-twiddled [`FastQuantizer`] whenever the
//!   grid fits the normal-f32 envelope (every paper configuration does),
//!   falling back to the f64 analytic reference outside it.
//! * **Enumerable formats** (float, posit, fixed, uniform-at-a-scale,
//!   BFP-at-an-exponent) compile to a cached LUT codebook when
//!   `n ≤ 8` and the tensor is long enough to amortize the table lookup
//!   (`len ≥ 32`); otherwise they run the analytic scalar map. The LUT
//!   handle is resolved at plan time, so executing a plan never touches
//!   the codebook cache — a warmed serving path takes no locks at all.
//! * **All-zero BFP tensors** (and calibrated `max_abs == 0` ranges)
//!   compile to a trivial zero-fill backend.
//! * **Per-block formats** (blocked BFP, per-block AdaptivFloat) re-derive
//!   their block parameters during execution, exactly as the fused paths
//!   did — block granularity is the parameter, not a per-tensor constant.
//!
//! Every backend is bit-identical to every other for the same parameters
//! (the LUT is exact by construction, the kernel is proven against the
//! reference), so the heuristic affects only speed, never results.

use std::sync::Arc;

use crate::adaptiv::{AdaptivFloat, AdaptivParams};
use crate::bfp::BlockFloat;
use crate::block_adaptiv::BlockAdaptivFloat;
use crate::fixed::FixedPoint;
use crate::ieee_like::IeeeLikeFloat;
use crate::kernels::FastQuantizer;
use crate::lut::LutQuantizer;
use crate::posit::Posit;
use crate::uniform::Uniform;

/// Single-pass statistics a format plans against: the maximum finite
/// magnitude, the position of the first non-finite element (folded into
/// the same scan, so strict paths never traverse twice), the tensor
/// length (the backend heuristic's amortization input), and whether the
/// range was *calibrated* offline rather than derived from the data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantStats {
    max_abs: f32,
    first_non_finite: Option<usize>,
    len: usize,
    calibrated: bool,
}

impl QuantStats {
    /// Scan `data` once: integer-domain max-abs reduction that also
    /// records the index of the first NaN/±∞ element. Runs the canonical
    /// fused scan in [`crate::simd::scan_abs`] — the same implementation
    /// behind `kernels::max_abs_bits`, so the max-abs pass exists once
    /// (and is vectorized once) for the whole crate.
    pub fn from_slice(data: &[f32]) -> QuantStats {
        let (max, first_non_finite) = crate::simd::scan_abs(data);
        QuantStats {
            max_abs: f32::from_bits(max),
            first_non_finite,
            len: data.len(),
            calibrated: false,
        }
    }

    /// A calibrated range captured offline (the paper's activation
    /// quantization): the maximum magnitude is `max_abs` regardless of
    /// the data each execution sees. The tensor length is taken as
    /// unbounded, so length-gated backends (LUT codebooks) engage —
    /// the plan is built once and reused across many requests.
    pub fn calibrated(max_abs: f32) -> QuantStats {
        QuantStats {
            max_abs,
            first_non_finite: None,
            len: usize::MAX,
            calibrated: true,
        }
    }

    /// A calibrated range for one known tensor length (what the
    /// `quantize_slice_with_max` compatibility wrapper uses, preserving
    /// the fused paths' per-call backend gating exactly).
    pub fn calibrated_with_len(max_abs: f32, len: usize) -> QuantStats {
        QuantStats {
            max_abs,
            first_non_finite: None,
            len,
            calibrated: true,
        }
    }

    /// Maximum finite magnitude observed (or the calibrated range).
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Index of the first non-finite element, if the scan saw one.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.first_non_finite
    }

    /// Number of elements scanned (or the assumed length for calibrated
    /// stats).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no elements were scanned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the range came from offline calibration rather than the
    /// data itself (calibrated plans ignore block structure, exactly as
    /// the fused `quantize_slice_with_max` paths did).
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }
}

/// The frozen per-tensor parameters a plan carries, exposed for
/// introspection (the resilience codec reads these to build its
/// bit-accurate storage encoders without re-deriving anything).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanParams {
    /// AdaptivFloat: the per-tensor exponent bias (Algorithm 1, step 1).
    AdaptivFloat {
        /// The derived exponent bias.
        exp_bias: i32,
    },
    /// Block floating-point: the per-tensor shared exponent, or `None`
    /// when the tensor was all zero (everything quantizes to 0).
    Bfp {
        /// The shared exponent, `None` for an all-zero range.
        shared_exp: Option<i32>,
    },
    /// Uniform: the derived full-precision scale.
    Uniform {
        /// The per-tensor scale (`max_abs / q_max`, or 1.0 at zero range).
        scale: f64,
    },
    /// A static grid fixed by the geometry alone (float, posit, fixed).
    Static,
    /// Parameters are re-derived per block during execution (blocked BFP,
    /// per-block AdaptivFloat).
    PerBlock,
}

/// How the plan applies the rounding map — chosen once at plan time.
#[derive(Debug, Clone)]
pub(crate) enum Backend {
    /// Everything quantizes to zero (BFP at an all-zero range).
    Zero,
    /// Bit-twiddled AdaptivFloat kernel.
    Kernel(FastQuantizer),
    /// Prewarmed LUT codebook handle (no cache access at execute time).
    Lut(Arc<LutQuantizer>),
    /// AdaptivFloat f64 analytic reference (outside the kernel envelope).
    AdaptivRef {
        /// Format geometry.
        fmt: AdaptivFloat,
        /// Frozen per-tensor parameters.
        params: AdaptivParams,
    },
    /// IEEE-like float analytic scalar map.
    IeeeScalar(IeeeLikeFloat),
    /// Posit table-walk scalar map (shared, the table is not cloned).
    PositScalar(Arc<Posit>),
    /// Fixed-point analytic scalar map.
    FixedScalar(FixedPoint),
    /// Uniform analytic scalar map at a frozen scale.
    UniformScalar {
        /// Format geometry.
        fmt: Uniform,
        /// Frozen per-tensor scale.
        scale: f64,
    },
    /// BFP analytic scalar map at a frozen shared exponent.
    BfpScalar {
        /// Format geometry.
        fmt: BlockFloat,
        /// Frozen shared exponent.
        exp: i32,
    },
    /// Blocked BFP: per-block shared exponents derived during execution.
    BfpBlocked(BlockFloat),
    /// Per-block AdaptivFloat: per-block biases derived during execution.
    BlockAdaptiv(BlockAdaptivFloat),
}

/// A frozen, reusable quantization plan: per-tensor parameters plus the
/// execution backend, built once via [`NumberFormat::plan`] and executed
/// allocation-free many times.
///
/// [`NumberFormat::plan`]: crate::format::NumberFormat::plan
///
/// # Examples
///
/// ```
/// use adaptivfloat::{AdaptivFloat, NumberFormat, QuantStats};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = AdaptivFloat::new(8, 3)?;
/// let data = [0.02_f32, -1.4, 3.1, -0.3, 0.0];
/// let plan = fmt.plan(&QuantStats::from_slice(&data));
/// let mut out = [0.0_f32; 5];
/// plan.execute_into(&data, &mut out); // no allocation
/// assert_eq!(out.to_vec(), fmt.quantize_slice(&data));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantPlan {
    bits: u32,
    params: PlanParams,
    backend: Backend,
}

/// Elementwise map `src → dst` through `f`, parallel for large slices.
fn zip_map_into(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    crate::par::par_zip_into(src, dst, |s, d| {
        for (dv, &sv) in d.iter_mut().zip(s) {
            *dv = f(sv);
        }
    });
}

/// Elementwise in-place map through `f`, parallel for large slices.
fn apply_map(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    crate::par::par_apply(data, |chunk| {
        for v in chunk.iter_mut() {
            *v = f(*v);
        }
    });
}

impl QuantPlan {
    /// Assemble a plan (format `plan()` implementations only).
    pub(crate) fn new(bits: u32, params: PlanParams, backend: Backend) -> QuantPlan {
        QuantPlan {
            bits,
            params,
            backend,
        }
    }

    /// Word size of the format this plan quantizes for.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The frozen per-tensor parameters.
    pub fn params(&self) -> &PlanParams {
        &self.params
    }

    /// Whether this plan executes through a LUT codebook (and therefore
    /// warmed the process-wide cache when it was built). Used by
    /// `prewarm_codebooks`: building the plan *is* the prewarm.
    pub fn uses_codebook(&self) -> bool {
        matches!(self.backend, Backend::Lut(_))
    }

    /// The backend this plan selected, as a diagnostic label:
    /// `"zero"`, `"kernel"`, `"lut"`, `"analytic"` or `"blocked"`.
    pub fn backend_label(&self) -> &'static str {
        match &self.backend {
            Backend::Zero => "zero",
            Backend::Kernel(_) => "kernel",
            Backend::Lut(_) => "lut",
            Backend::AdaptivRef { .. }
            | Backend::IeeeScalar(_)
            | Backend::PositScalar(_)
            | Backend::FixedScalar(_)
            | Backend::UniformScalar { .. }
            | Backend::BfpScalar { .. } => "analytic",
            Backend::BfpBlocked(_) | Backend::BlockAdaptiv(_) => "blocked",
        }
    }

    /// Execute the plan: quantize `src` into `dst` with no heap
    /// allocation. Bit-identical to the fused `quantize_slice` paths.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn execute_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        match &self.backend {
            Backend::Zero => dst.fill(0.0),
            Backend::Kernel(fast) => {
                crate::par::par_zip_into(src, dst, |s, d| fast.quantize_into(s, d));
            }
            Backend::Lut(table) => {
                crate::par::par_zip_into(src, dst, |s, d| table.quantize_into(s, d));
            }
            Backend::AdaptivRef { fmt, params } => {
                zip_map_into(src, dst, |v| fmt.quantize_with(params, v));
            }
            Backend::IeeeScalar(fmt) => zip_map_into(src, dst, |v| fmt.quantize_value(v)),
            Backend::PositScalar(fmt) => zip_map_into(src, dst, |v| fmt.quantize_value(v)),
            Backend::FixedScalar(fmt) => zip_map_into(src, dst, |v| fmt.quantize_value(v)),
            Backend::UniformScalar { fmt, scale } => {
                zip_map_into(src, dst, |v| {
                    (fmt.quantize_level(*scale, v) as f64 * scale) as f32
                });
            }
            Backend::BfpScalar { fmt, exp } => {
                zip_map_into(src, dst, |v| fmt.quantize_one_at(*exp, v));
            }
            Backend::BfpBlocked(fmt) => {
                dst.copy_from_slice(src);
                let block = fmt.block_size().unwrap_or(src.len().max(1));
                for chunk in dst.chunks_mut(block) {
                    fmt.quantize_block(chunk);
                }
            }
            Backend::BlockAdaptiv(fmt) => {
                let block = fmt.block_size();
                let inner = fmt.scalar_format();
                for (s, d) in src.chunks(block).zip(dst.chunks_mut(block)) {
                    let params = inner.params_for(s);
                    for (dv, &sv) in d.iter_mut().zip(s) {
                        *dv = inner.quantize_with(&params, sv);
                    }
                }
            }
        }
    }

    /// Execute the plan in place: quantize `data` where it sits, with no
    /// heap allocation and no second buffer. Bit-identical to
    /// [`execute_into`](Self::execute_into) on the same input.
    pub fn execute_in_place(&self, data: &mut [f32]) {
        match &self.backend {
            Backend::Zero => data.fill(0.0),
            Backend::Kernel(fast) => {
                crate::par::par_apply(data, |chunk| fast.quantize_in_place(chunk));
            }
            Backend::Lut(table) => {
                crate::par::par_apply(data, |chunk| table.quantize_in_place(chunk));
            }
            Backend::AdaptivRef { fmt, params } => {
                apply_map(data, |v| fmt.quantize_with(params, v));
            }
            Backend::IeeeScalar(fmt) => apply_map(data, |v| fmt.quantize_value(v)),
            Backend::PositScalar(fmt) => apply_map(data, |v| fmt.quantize_value(v)),
            Backend::FixedScalar(fmt) => apply_map(data, |v| fmt.quantize_value(v)),
            Backend::UniformScalar { fmt, scale } => {
                apply_map(data, |v| {
                    (fmt.quantize_level(*scale, v) as f64 * scale) as f32
                });
            }
            Backend::BfpScalar { fmt, exp } => {
                apply_map(data, |v| fmt.quantize_one_at(*exp, v));
            }
            Backend::BfpBlocked(fmt) => {
                let block = fmt.block_size().unwrap_or(data.len().max(1));
                for chunk in data.chunks_mut(block) {
                    fmt.quantize_block(chunk);
                }
            }
            Backend::BlockAdaptiv(fmt) => {
                let block = fmt.block_size();
                let inner = fmt.scalar_format();
                for chunk in data.chunks_mut(block) {
                    // Parameters must come from the pre-quantization
                    // values: derive before overwriting.
                    let params = inner.params_for(chunk);
                    for v in chunk.iter_mut() {
                        *v = inner.quantize_with(&params, *v);
                    }
                }
            }
        }
    }

    /// Execute the plan through the **scalar** kernel twins, bypassing
    /// the SIMD dispatch in [`execute_into`](Self::execute_into) (and its
    /// thread fan-out). Bit-identical to `execute_into` by construction —
    /// this is the reference leg benchmarks and the bit-identity suites
    /// compare the vector paths against in one process, without flipping
    /// the process-wide `AF_FORCE_SCALAR` switch.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn execute_into_scalar(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "slice length mismatch");
        match &self.backend {
            Backend::Kernel(fast) => fast.quantize_into_scalar(src, dst),
            Backend::Lut(table) => table.quantize_into_scalar(src, dst),
            // Every other backend is already a scalar map.
            _ => self.execute_into(src, dst),
        }
    }

    /// Execute into a fresh vector (the convenience the compatibility
    /// wrappers use; hot paths should reuse buffers via
    /// [`execute_into`](Self::execute_into)).
    pub fn execute(&self, src: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; src.len()];
        self.execute_into(src, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FormatKind, NumberFormat};

    fn mixed_data(len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32 * 0.37).sin() + (i as f32 * 0.11).cos()) * 2.3)
            .collect()
    }

    #[test]
    fn stats_scan_matches_reference_fold() {
        let data = [
            0.0f32,
            -0.0,
            1.5,
            -2.25,
            f32::NAN,
            f32::INFINITY,
            -1e-40,
            3.7e37,
        ];
        let stats = QuantStats::from_slice(&data);
        let reference = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        assert_eq!(stats.max_abs().to_bits(), reference.to_bits());
        assert_eq!(stats.first_non_finite(), Some(4));
        assert_eq!(stats.len(), 8);
        assert!(!stats.is_calibrated());
        assert_eq!(QuantStats::from_slice(&[]).max_abs(), 0.0);
        assert_eq!(QuantStats::from_slice(&[1.0, 2.0]).first_non_finite(), None);
    }

    #[test]
    fn plan_execute_matches_quantize_slice_for_every_kind() {
        let data = mixed_data(300);
        for kind in FormatKind::ALL {
            for n in [4u32, 8, 16] {
                let fmt = kind.build(n).unwrap();
                let plan = fmt.plan(&QuantStats::from_slice(&data));
                assert_eq!(plan.bits(), n);
                let mut out = vec![0.0f32; data.len()];
                plan.execute_into(&data, &mut out);
                let want = fmt.quantize_slice(&data);
                let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "{kind} n={n}");
            }
        }
    }

    #[test]
    fn execute_in_place_matches_execute_into() {
        let data = mixed_data(100);
        for kind in FormatKind::ALL {
            let fmt = kind.build(8).unwrap();
            let plan = fmt.plan(&QuantStats::from_slice(&data));
            let into = plan.execute(&data);
            let mut in_place = data.clone();
            plan.execute_in_place(&mut in_place);
            assert_eq!(
                into.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                in_place.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{kind}"
            );
        }
    }

    #[test]
    fn backend_choice_follows_cost_heuristic() {
        let long = mixed_data(256);
        let short = mixed_data(8);
        // AdaptivFloat in the envelope → kernel, at any length.
        let af = FormatKind::AdaptivFloat.build(8).unwrap();
        assert_eq!(
            af.plan(&QuantStats::from_slice(&long)).backend_label(),
            "kernel"
        );
        assert_eq!(
            af.plan(&QuantStats::from_slice(&short)).backend_label(),
            "kernel"
        );
        // Enumerable formats: LUT for long tensors at n ≤ 8, scalar else.
        let posit = FormatKind::Posit.build(8).unwrap();
        let plan = posit.plan(&QuantStats::from_slice(&long));
        assert_eq!(plan.backend_label(), "lut");
        assert!(plan.uses_codebook());
        assert_eq!(
            posit.plan(&QuantStats::from_slice(&short)).backend_label(),
            "analytic"
        );
        let posit16 = FormatKind::Posit.build(16).unwrap();
        assert_eq!(
            posit16.plan(&QuantStats::from_slice(&long)).backend_label(),
            "analytic"
        );
        // All-zero BFP → zero-fill.
        let bfp = FormatKind::Bfp.build(8).unwrap();
        assert_eq!(
            bfp.plan(&QuantStats::from_slice(&[0.0; 64]))
                .backend_label(),
            "zero"
        );
    }

    #[test]
    fn calibrated_plan_reused_across_batches_stays_bit_identical() {
        // The serving pattern: one calibrated plan, many differently
        // sized executions — each must equal the fused with_max path.
        let fmt = FormatKind::Uniform.build(8).unwrap();
        let plan = fmt.plan(&QuantStats::calibrated(3.0));
        for len in [1usize, 7, 32, 300] {
            let data = mixed_data(len);
            let got = plan.execute(&data);
            let want = fmt.quantize_slice_with_max(3.0, &data);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn plan_params_expose_frozen_parameters() {
        let data = mixed_data(100);
        let af = crate::AdaptivFloat::new(8, 3).unwrap();
        let plan = NumberFormat::plan(&af, &QuantStats::from_slice(&data));
        let want = af.params_for(&data).exp_bias;
        assert_eq!(*plan.params(), PlanParams::AdaptivFloat { exp_bias: want });
        let bfp = crate::BlockFloat::new(8).unwrap();
        let plan = NumberFormat::plan(&bfp, &QuantStats::from_slice(&data));
        assert!(matches!(
            plan.params(),
            PlanParams::Bfp {
                shared_exp: Some(_)
            }
        ));
        let uni = crate::Uniform::new(8).unwrap();
        let plan = NumberFormat::plan(&uni, &QuantStats::calibrated(127.0));
        assert_eq!(*plan.params(), PlanParams::Uniform { scale: 1.0 });
    }

    #[test]
    fn blocked_formats_rederive_per_block() {
        let mut data = vec![0.01f32; 64];
        data.extend(std::iter::repeat_n(5.0f32, 64));
        let fmt = crate::BlockFloat::with_block_size(8, 64).unwrap();
        let plan = NumberFormat::plan(&fmt, &QuantStats::from_slice(&data));
        assert_eq!(plan.backend_label(), "blocked");
        assert_eq!(*plan.params(), PlanParams::PerBlock);
        let got = plan.execute(&data);
        let want = fmt.quantize_slice(&data);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Calibrated stats ignore block structure, like with_max did.
        let cal = NumberFormat::plan(&fmt, &QuantStats::calibrated(5.0));
        let got = cal.execute(&data);
        let want = fmt.quantize_slice_with_max(5.0, &data);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
