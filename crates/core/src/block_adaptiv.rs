//! Per-block AdaptivFloat — an extension beyond the paper's per-layer
//! granularity.
//!
//! The paper adapts the exponent bias per layer; finer granularity (per
//! output channel / per row / per fixed-size block) buys extra accuracy
//! for a few more 4-bit bias registers. This module provides that
//! generalization and is exercised by the `ablations` experiment.

use crate::adaptiv::AdaptivFloat;
use crate::error::FormatError;
use crate::format::NumberFormat;

/// AdaptivFloat with a per-block exponent bias.
///
/// # Examples
///
/// ```
/// use adaptivfloat::block_adaptiv::BlockAdaptivFloat;
/// use adaptivfloat::NumberFormat;
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = BlockAdaptivFloat::new(8, 3, 64)?;
/// let data = vec![0.5_f32; 130];
/// assert_eq!(fmt.quantize_slice(&data).len(), 130);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockAdaptivFloat {
    inner: AdaptivFloat,
    block_size: usize,
}

impl BlockAdaptivFloat {
    /// `<n, e>` AdaptivFloat with one exponent bias per `block_size`
    /// consecutive elements (the trailing block may be shorter).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if the `<n, e>` geometry is
    /// invalid or `block_size` is zero.
    pub fn new(n: u32, e: u32, block_size: usize) -> Result<Self, FormatError> {
        if block_size == 0 {
            return Err(FormatError::InvalidBits {
                n,
                e,
                reason: "block size must be at least 1",
            });
        }
        Ok(BlockAdaptivFloat {
            inner: AdaptivFloat::new(n, e)?,
            block_size,
        })
    }

    /// Elements sharing one exponent bias.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The underlying scalar format.
    pub fn scalar_format(&self) -> &AdaptivFloat {
        &self.inner
    }

    /// Quantize, also returning the per-block exponent biases (what the
    /// hardware stores in its 4-bit registers — one per block).
    pub fn quantize_with_biases(&self, data: &[f32]) -> (Vec<f32>, Vec<i32>) {
        let mut out = Vec::with_capacity(data.len());
        let mut biases = Vec::new();
        for chunk in data.chunks(self.block_size) {
            let params = self.inner.params_for(chunk);
            biases.push(params.exp_bias);
            out.extend(chunk.iter().map(|&v| self.inner.quantize_with(&params, v)));
        }
        (out, biases)
    }

    /// Metadata overhead in bits per element (4-bit bias per block).
    pub fn overhead_bits_per_element(&self) -> f64 {
        4.0 / self.block_size as f64
    }
}

impl NumberFormat for BlockAdaptivFloat {
    fn name(&self) -> String {
        format!(
            "AdaptivFloat<{},{}>/block{}",
            self.inner.n(),
            self.inner.e(),
            self.block_size
        )
    }

    fn bits(&self) -> u32 {
        self.inner.n()
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::plan::{Backend, PlanParams, QuantPlan};
        // One bias per block, derived from the block itself during
        // execution — also under a calibrated range, matching the fused
        // path (which had no calibrated override at block granularity).
        let _ = stats;
        QuantPlan::new(
            self.inner.n(),
            PlanParams::PerBlock,
            Backend::BlockAdaptiv(*self),
        )
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rms_error;

    #[test]
    fn per_block_never_worse_much_and_better_on_multiscale() {
        // Two populations at very different scales, interleaved in blocks.
        let mut data = vec![0.01f32; 128];
        data.extend(std::iter::repeat_n(5.0f32, 128));
        let per_layer = AdaptivFloat::new(6, 3).unwrap();
        let per_block = BlockAdaptivFloat::new(6, 3, 128).unwrap();
        let e_layer = rms_error(&data, &per_layer.quantize_slice(&data));
        let e_block = rms_error(&data, &per_block.quantize_slice(&data));
        assert!(e_block <= e_layer, "{e_block} vs {e_layer}");
    }

    #[test]
    fn biases_reflect_block_magnitudes() {
        let fmt = BlockAdaptivFloat::new(8, 3, 4).unwrap();
        let data = [8.0f32, 1.0, 1.0, 1.0, 0.25, 0.1, 0.1, 0.1];
        let (_, biases) = fmt.quantize_with_biases(&data);
        assert_eq!(biases.len(), 2);
        // Block maxima 8.0 (exp 3) and 0.25 (exp −2): biases differ by 5.
        assert_eq!(biases[0] - biases[1], 5);
    }

    #[test]
    fn block_size_one_is_lossless_on_magnitude() {
        // One bias per element → every element sits in its own top binade;
        // the only error left is the mantissa rounding.
        let fmt = BlockAdaptivFloat::new(8, 3, 1).unwrap();
        let data: Vec<f32> = (1..100).map(|i| i as f32 * 0.173).collect();
        let q = fmt.quantize_slice(&data);
        for (&orig, &quant) in data.iter().zip(&q) {
            let rel = ((orig - quant) / orig).abs();
            assert!(rel < 0.05, "rel err {rel} for {orig}");
        }
    }

    #[test]
    fn trailing_partial_block() {
        let fmt = BlockAdaptivFloat::new(8, 3, 64).unwrap();
        let data = vec![1.0f32; 70];
        let (q, biases) = fmt.quantize_with_biases(&data);
        assert_eq!(q.len(), 70);
        assert_eq!(biases.len(), 2);
    }

    #[test]
    fn overhead_accounting() {
        let fmt = BlockAdaptivFloat::new(8, 3, 64).unwrap();
        assert_eq!(fmt.overhead_bits_per_element(), 0.0625);
    }

    #[test]
    fn rejects_zero_block() {
        assert!(BlockAdaptivFloat::new(8, 3, 0).is_err());
    }
}
