//! Classic Qi.f fixed-point — the conventional hardware baseline the
//! paper's introduction argues against at low precision.

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::util::{exp2, from_twos_complement, to_twos_complement};

/// Fixed-point format with `n` total bits: 1 sign bit, `i` integer bits
/// and `f = n − 1 − i` fractional bits, two's-complement, saturating.
///
/// # Examples
///
/// ```
/// use adaptivfloat::{FixedPoint, NumberFormat};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// // Q2.5 in an 8-bit word.
/// let fmt = FixedPoint::new(8, 2)?;
/// assert_eq!(fmt.quantize_slice(&[1.5])[0], 1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPoint {
    n: u32,
    int_bits: u32,
}

impl FixedPoint {
    /// Create an `n`-bit fixed-point format with `int_bits` integer bits.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `2 ≤ n ≤ 32` and
    /// `int_bits ≤ n − 1`.
    pub fn new(n: u32, int_bits: u32) -> Result<Self, FormatError> {
        if !(2..=32).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e: int_bits,
                reason: "fixed-point word size must be between 2 and 32 bits",
            });
        }
        if int_bits > n - 1 {
            return Err(FormatError::InvalidBits {
                n,
                e: int_bits,
                reason: "integer bits must leave room for the sign bit",
            });
        }
        Ok(FixedPoint { n, int_bits })
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Integer bits (excluding sign).
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Fractional bits, `n − 1 − int_bits`.
    pub fn frac_bits(&self) -> u32 {
        self.n - 1 - self.int_bits
    }

    /// The quantization step, `2^−f`.
    pub fn step(&self) -> f64 {
        exp2(-(self.frac_bits() as i32))
    }

    /// Largest representable value, `2^i − 2^−f`.
    pub fn value_max(&self) -> f64 {
        exp2(self.int_bits as i32) - self.step()
    }

    /// Quantize one value (round to nearest step, saturate symmetrically).
    /// NaN maps to `0.0`.
    pub fn quantize_value(&self, v: f32) -> f32 {
        if v.is_nan() {
            return 0.0;
        }
        let step = self.step();
        let vmax = self.value_max();
        let q = ((v as f64) / step).round() * step;
        (q.clamp(-vmax, vmax)) as f32
    }

    /// Largest step count, `2^(n−1) − 1` (symmetric saturation).
    fn level_max(&self) -> i64 {
        (1i64 << (self.n - 1)) - 1
    }

    /// Encode one value as an `n`-bit two's-complement step-count word
    /// (quantizing first).
    pub fn encode(&self, v: f32) -> u32 {
        if v.is_nan() {
            return 0;
        }
        let q = ((v as f64) / self.step()).round() as i64;
        to_twos_complement(q.clamp(-self.level_max(), self.level_max()), self.n)
    }

    /// Decode an `n`-bit word exactly as the bits say (a corrupted word
    /// may decode to the unused `−2^(n−1)` extreme).
    pub fn decode(&self, code: u32) -> f32 {
        (from_twos_complement(code, self.n) as f64 * self.step()) as f32
    }

    /// Decode an `n`-bit word under a [`DecodePolicy`]: hardened decodes
    /// clamp magnitudes beyond [`value_max`](Self::value_max) back to it
    /// (counted in `stats`); valid symmetric codes pass through.
    pub fn decode_with_policy(
        &self,
        code: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let v = self.decode(code);
        stats.guard(policy, self.value_max() as f32, v)
    }
}

impl NumberFormat for FixedPoint {
    fn name(&self) -> String {
        format!("Fixed<Q{}.{}>", self.int_bits, self.frac_bits())
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::lut::{self, LutKey};
        use crate::plan::{Backend, PlanParams, QuantPlan};
        let backend = if self.n <= lut::MAX_LUT_BITS && stats.len() >= lut::MIN_LUT_LEN {
            Backend::Lut(lut::cached(
                LutKey::Fixed {
                    n: self.n,
                    int_bits: self.int_bits,
                },
                |v| self.quantize_value(v),
            ))
        } else {
            Backend::FixedScalar(*self)
        };
        QuantPlan::new(self.n, PlanParams::Static, backend)
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q2_5_geometry() {
        let fmt = FixedPoint::new(8, 2).unwrap();
        assert_eq!(fmt.frac_bits(), 5);
        assert_eq!(fmt.step(), 0.03125);
        assert_eq!(fmt.value_max(), 4.0 - 0.03125);
    }

    #[test]
    fn grid_values_exact() {
        let fmt = FixedPoint::new(8, 2).unwrap();
        for k in -20..20 {
            let v = k as f32 * 0.03125;
            assert_eq!(fmt.quantize_value(v), v);
        }
    }

    #[test]
    fn saturation_symmetric() {
        let fmt = FixedPoint::new(8, 2).unwrap();
        let vmax = fmt.value_max() as f32;
        assert_eq!(fmt.quantize_value(100.0), vmax);
        assert_eq!(fmt.quantize_value(-100.0), -vmax);
    }

    #[test]
    fn fixed_range_fails_on_wide_data() {
        // Q2.5 saturates far below Transformer-scale weights.
        let fmt = FixedPoint::new(8, 2).unwrap();
        assert!(fmt.quantize_value(20.41) < 4.0);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(FixedPoint::new(8, 8).is_err());
        assert!(FixedPoint::new(1, 0).is_err());
        assert!(FixedPoint::new(8, 7).is_ok());
    }

    #[test]
    fn nan_to_zero() {
        let fmt = FixedPoint::new(8, 2).unwrap();
        assert_eq!(fmt.quantize_value(f32::NAN), 0.0);
    }
}
