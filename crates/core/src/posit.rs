//! The posit `<n, es>` tapered-precision format (Gustafson & Yonemoto,
//! "Beating Floating Point at Its Own Game").
//!
//! Posits spend a variable number of *regime* bits before the exponent and
//! fraction, giving high precision near ±1 and huge dynamic range at the
//! extremes. Per the posit standard: negative values are the two's
//! complement of the bit pattern, there is exactly one zero and one NaR,
//! and rounding never underflows a non-zero value to zero nor overflows to
//! NaR (it saturates at `minpos` / `maxpos`).
//!
//! The paper uses posit as its strongest non-adaptive baseline, with
//! `es = 1` at word sizes ≥ 5 bits and `es = 0` at 4 bits.

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::util::exp2;

/// Posit `<n, es>` format descriptor with a precomputed rounding table.
///
/// # Examples
///
/// ```
/// use adaptivfloat::Posit;
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let p = Posit::new(8, 1)?;
/// assert_eq!(p.decode(0x40), 1.0); // 0b0100_0000 is 1.0 in any posit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Posit {
    n: u32,
    es: u32,
    /// Positive representable values, ascending, paired with their codes.
    table: Vec<(f64, u32)>,
}

impl PartialEq for Posit {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.es == other.es
    }
}

impl Eq for Posit {}

impl Posit {
    /// Create a posit `<n, es>` format.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `3 ≤ n ≤ 16` (the
    /// rounding table enumerates all `2^n` codes) and `es ≤ 4`.
    pub fn new(n: u32, es: u32) -> Result<Self, FormatError> {
        if !(3..=16).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e: es,
                reason: "posit word size must be between 3 and 16 bits",
            });
        }
        if es > 4 {
            return Err(FormatError::InvalidBits {
                n,
                e: es,
                reason: "es must be at most 4",
            });
        }
        let mut table = Vec::with_capacity(1 << (n - 1));
        // Positive codes are 1 ..= 2^(n-1) − 1.
        for code in 1u32..(1 << (n - 1)) {
            let v = decode_raw(n, es, code);
            table.push((v, code));
        }
        table.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite posits"));
        Ok(Posit { n, es, table })
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Exponent field width `es`.
    pub fn es(&self) -> u32 {
        self.es
    }

    /// Smallest positive representable value, `2^(−(n−2)·2^es)`.
    pub fn minpos(&self) -> f64 {
        self.table[0].0
    }

    /// Largest representable value, `2^((n−2)·2^es)`.
    pub fn maxpos(&self) -> f64 {
        self.table[self.table.len() - 1].0
    }

    /// Decode an `n`-bit code. Code `0` is `0.0`; the NaR pattern
    /// (`1000…0`) decodes to NaN.
    pub fn decode(&self, code: u32) -> f32 {
        let mask = word_mask(self.n);
        let code = code & mask;
        if code == 0 {
            return 0.0;
        }
        if code == 1 << (self.n - 1) {
            return f32::NAN;
        }
        if code >> (self.n - 1) == 1 {
            let abs = (!code).wrapping_add(1) & mask;
            -(decode_raw(self.n, self.es, abs) as f32)
        } else {
            decode_raw(self.n, self.es, code) as f32
        }
    }

    /// Decode an `n`-bit code under a [`DecodePolicy`].
    ///
    /// Under [`DecodePolicy::Harden`] the NaR pattern — which a single
    /// sign-bit upset on a zero code produces — is repaired to `0.0` and
    /// counted as a non-finite detection instead of releasing NaN into
    /// the tensor. All other posit codes decode to finite in-range
    /// values and pass through unchanged.
    pub fn decode_with_policy(
        &self,
        code: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let v = self.decode(code);
        stats.guard(policy, self.maxpos() as f32, v)
    }

    /// Quantize one value: round to the nearest representable posit.
    /// Following the posit standard, non-zero magnitudes saturate at
    /// `minpos`/`maxpos` (no underflow to zero, no overflow to NaR);
    /// NaN maps to `0.0` for DNN-friendliness.
    pub fn quantize_value(&self, v: f32) -> f32 {
        let (q, _) = self.quantize_code(v);
        q
    }

    /// Quantize and return both the value and its `n`-bit code.
    pub fn quantize_code(&self, v: f32) -> (f32, u32) {
        if v.is_nan() || v == 0.0 {
            return (0.0, 0);
        }
        let sign_neg = v < 0.0;
        let a = v.abs() as f64;
        let (mag, code) = self.nearest_positive(a);
        if sign_neg {
            let mask = word_mask(self.n);
            (-(mag as f32), (!code).wrapping_add(1) & mask)
        } else {
            (mag as f32, code)
        }
    }

    /// Encode a value (quantizing first).
    pub fn encode(&self, v: f32) -> u32 {
        self.quantize_code(v).1
    }

    /// Nearest positive representable to `a > 0` (ties away from zero).
    fn nearest_positive(&self, a: f64) -> (f64, u32) {
        match self
            .table
            .binary_search_by(|probe| probe.0.partial_cmp(&a).expect("finite"))
        {
            Ok(i) => self.table[i],
            Err(0) => self.table[0], // below minpos: saturate up
            Err(i) if i == self.table.len() => self.table[i - 1],
            Err(i) => {
                let lo = self.table[i - 1];
                let hi = self.table[i];
                if (a - lo.0) < (hi.0 - a) {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// Enumerate all representable values (excluding NaR), sorted
    /// ascending: negatives, zero, positives.
    pub fn representable_values(&self) -> Vec<f32> {
        let mut vals: Vec<f32> = self.table.iter().rev().map(|&(v, _)| -(v as f32)).collect();
        vals.push(0.0);
        vals.extend(self.table.iter().map(|&(v, _)| v as f32));
        vals
    }
}

fn word_mask(n: u32) -> u32 {
    if n == 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Decode a *positive* posit code (sign bit clear, code ≠ 0).
fn decode_raw(n: u32, es: u32, code: u32) -> f64 {
    debug_assert!(code != 0 && code >> (n - 1) == 0);
    // Parse the n−1 bits below the sign bit, MSB first.
    let body_bits = n - 1;
    let first = (code >> (body_bits - 1)) & 1;
    let mut pos = body_bits as i32 - 1;
    let mut run = 0u32;
    while pos >= 0 && ((code >> pos) & 1) == first {
        run += 1;
        pos -= 1;
    }
    pos -= 1; // skip the regime terminator (may step past the end)
    let k: i32 = if first == 1 {
        run as i32 - 1
    } else {
        -(run as i32)
    };
    // Exponent: the next `es` bits; missing (truncated) bits are zero.
    let mut e = 0u32;
    let mut got = 0u32;
    for _ in 0..es {
        if pos >= 0 {
            e = (e << 1) | ((code >> pos) & 1);
            pos -= 1;
            got += 1;
        }
    }
    e <<= es - got;
    // Fraction: whatever remains.
    let f_bits = (pos + 1).max(0) as u32;
    let frac_field = if f_bits == 0 {
        0
    } else {
        code & ((1u32 << f_bits) - 1)
    };
    let frac = frac_field as f64 / exp2(f_bits as i32);
    let scale = k * (1i32 << es) + e as i32;
    exp2(scale) * (1.0 + frac)
}

impl NumberFormat for Posit {
    fn name(&self) -> String {
        format!("Posit<{},{}>", self.n, self.es)
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::lut::{self, LutKey};
        use crate::plan::{Backend, PlanParams, QuantPlan};
        let backend = if self.n <= lut::MAX_LUT_BITS && stats.len() >= lut::MIN_LUT_LEN {
            // Replaces the per-element f64 table walk with a codebook
            // lookup over f32 bit space (static per geometry).
            Backend::Lut(lut::cached(
                LutKey::Posit {
                    n: self.n,
                    es: self.es,
                },
                |v| self.quantize_value(v),
            ))
        } else {
            Backend::PositScalar(std::sync::Arc::new(self.clone()))
        };
        QuantPlan::new(self.n, PlanParams::Static, backend)
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values_posit8_1() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.decode(0x40), 1.0);
        assert_eq!(p.decode(0x41), 1.0625); // 1 + 1/16
        assert_eq!(p.decode(0x50), 2.0); // regime 10, e=1
        assert_eq!(p.decode(0x60), 4.0); // regime 110, e=0
        assert_eq!(p.decode(0x30), 0.5);
        // Two's complement negation.
        assert_eq!(p.decode(0xC0), -1.0);
        assert_eq!(p.decode(0), 0.0);
        assert!(p.decode(0x80).is_nan()); // NaR
    }

    #[test]
    fn extremes_match_standard_formulas() {
        // maxpos = 2^((n−2)·2^es), minpos = its reciprocal.
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.maxpos(), exp2(12));
        assert_eq!(p.minpos(), exp2(-12));
        let p4 = Posit::new(4, 0).unwrap();
        assert_eq!(p4.maxpos(), 4.0);
        assert_eq!(p4.minpos(), 0.25);
    }

    #[test]
    fn no_underflow_to_zero() {
        // The standard: non-zero values round to at least minpos.
        let p = Posit::new(8, 1).unwrap();
        let tiny = 1e-30f32;
        assert_eq!(p.quantize_value(tiny) as f64, p.minpos());
        assert_eq!(p.quantize_value(-tiny) as f64, -p.minpos());
        // But exact zero stays zero.
        assert_eq!(p.quantize_value(0.0), 0.0);
    }

    #[test]
    fn saturates_at_maxpos() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.quantize_value(1e30) as f64, p.maxpos());
        assert_eq!(p.quantize_value(f32::INFINITY) as f64, p.maxpos());
    }

    #[test]
    fn roundtrip_all_codes() {
        for (n, es) in [(4, 0), (5, 1), (6, 1), (8, 0), (8, 1), (8, 2)] {
            let p = Posit::new(n, es).unwrap();
            for code in 0..(1u32 << n) {
                if code == 1 << (n - 1) {
                    continue; // NaR
                }
                let v = p.decode(code);
                let (q, recode) = p.quantize_code(v);
                assert_eq!(q, v, "n={n} es={es} code={code:#x} not fixed");
                assert_eq!(recode, code, "n={n} es={es} code={code:#x}");
            }
        }
    }

    #[test]
    fn tapered_precision_is_densest_near_one() {
        // The spacing of representable posits around 1.0 must be finer
        // than around maxpos/4.
        let p = Posit::new(8, 1).unwrap();
        let vals = p.representable_values();
        let gap_at = |target: f32| {
            let i = vals
                .iter()
                .position(|&v| v >= target)
                .expect("target in range");
            vals[i + 1] - vals[i]
        };
        assert!(gap_at(1.0) < gap_at(100.0));
    }

    #[test]
    fn quantization_is_nearest_within_range() {
        let p = Posit::new(6, 1).unwrap();
        let vals = p.representable_values();
        let mut x = 0.01f32;
        while x < 50.0 {
            let q = p.quantize_value(x);
            let best = vals
                .iter()
                .map(|&g| (x - g).abs())
                .fold(f32::INFINITY, f32::min);
            assert!(
                (x - q).abs() <= best * (1.0 + 1e-5) + 1e-9,
                "x={x} q={q} best={best}"
            );
            x *= 1.07;
        }
    }

    #[test]
    fn representable_count() {
        // 2^n codes minus NaR, ±0 are a single zero code → 2^n − 1 values.
        let p = Posit::new(6, 1).unwrap();
        assert_eq!(p.representable_values().len(), 63);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Posit::new(2, 0).is_err());
        assert!(Posit::new(17, 1).is_err());
        assert!(Posit::new(8, 5).is_err());
    }

    #[test]
    fn nan_maps_to_zero() {
        let p = Posit::new(8, 1).unwrap();
        assert_eq!(p.quantize_value(f32::NAN), 0.0);
    }
}
