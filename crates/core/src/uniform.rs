//! Symmetric uniform (integer) quantization with a full-precision scale —
//! the TensorRT-style baseline of the paper.

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::util::{from_twos_complement, to_twos_complement};

/// Symmetric uniform quantizer: `q = clamp(round(v / s), −Q, Q) · s` with
/// `Q = 2^(n−1) − 1` and scale `s = max|data| / Q` derived per tensor.
///
/// # Examples
///
/// ```
/// use adaptivfloat::{NumberFormat, Uniform};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = Uniform::new(8)?;
/// let q = fmt.quantize_slice(&[1.0, -1.0, 0.0]);
/// assert_eq!(q[0], 1.0);
/// assert_eq!(q[2], 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uniform {
    n: u32,
}

impl Uniform {
    /// Create an `n`-bit symmetric uniform quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `2 ≤ n ≤ 32`.
    pub fn new(n: u32) -> Result<Self, FormatError> {
        if !(2..=32).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e: 0,
                reason: "uniform word size must be between 2 and 32 bits",
            });
        }
        Ok(Uniform { n })
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The largest integer level, `2^(n−1) − 1`.
    pub fn q_max(&self) -> i64 {
        (1i64 << (self.n - 1)) - 1
    }

    /// The scale a tensor with maximum magnitude `max_abs` receives.
    pub fn scale_for(&self, max_abs: f32) -> f64 {
        if max_abs == 0.0 {
            1.0
        } else {
            max_abs as f64 / self.q_max() as f64
        }
    }

    /// Quantize one value under a fixed scale, returning the integer level.
    pub fn quantize_level(&self, scale: f64, v: f32) -> i64 {
        if v.is_nan() {
            return 0;
        }
        let q = ((v as f64) / scale).round();
        let q_max = self.q_max() as f64;
        q.clamp(-q_max, q_max) as i64
    }

    /// Encode one value under a fixed scale as an `n`-bit
    /// two's-complement level word — what an INT weight buffer stores.
    pub fn encode_code(&self, scale: f64, v: f32) -> u32 {
        to_twos_complement(self.quantize_level(scale, v), self.n)
    }

    /// Decode an `n`-bit level word exactly as the bits say (a corrupted
    /// word may decode to the unused `−2^(n−1)` extreme, outside the
    /// symmetric range).
    pub fn decode_code(&self, scale: f64, code: u32) -> f32 {
        (from_twos_complement(code, self.n) as f64 * scale) as f32
    }

    /// Decode an `n`-bit level word under a [`DecodePolicy`]: hardened
    /// decodes clamp levels beyond `±(2^(n−1) − 1)` back to the extreme
    /// (counted in `stats`); valid symmetric levels pass through.
    pub fn decode_code_with_policy(
        &self,
        scale: f64,
        code: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let v = self.decode_code(scale, code);
        let max_abs = (self.q_max() as f64 * scale) as f32;
        stats.guard(policy, max_abs, v)
    }

    /// Quantize a slice under a fixed scale (dequantized values).
    pub fn quantize_with_scale(&self, scale: f64, data: &[f32]) -> Vec<f32> {
        use crate::lut::{self, LutKey};
        if self.n <= lut::MAX_LUT_BITS && data.len() >= lut::MIN_LUT_LEN {
            // One codebook per (geometry, scale); per-tensor scales repeat
            // across calls (calibrated activations), so the cache pays off.
            return lut::cached(
                LutKey::Uniform {
                    n: self.n,
                    scale_bits: scale.to_bits(),
                },
                |v| (self.quantize_level(scale, v) as f64 * scale) as f32,
            )
            .quantize_slice(data);
        }
        crate::par::par_map_slice(data, |v| {
            (self.quantize_level(scale, v) as f64 * scale) as f32
        })
    }

    /// Quantize, also returning the derived scale and integer levels —
    /// what an INT accelerator actually stores.
    pub fn quantize_levels(&self, data: &[f32]) -> (f64, Vec<i64>) {
        let max_abs = data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, v| acc.max(v.abs()));
        let scale = self.scale_for(max_abs);
        let levels = data
            .iter()
            .map(|&v| self.quantize_level(scale, v))
            .collect();
        (scale, levels)
    }
}

impl NumberFormat for Uniform {
    fn name(&self) -> String {
        format!("Uniform<{}>", self.n)
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::lut::{self, LutKey};
        use crate::plan::{Backend, PlanParams, QuantPlan};
        let scale = self.scale_for(stats.max_abs());
        let backend = if self.n <= lut::MAX_LUT_BITS && stats.len() >= lut::MIN_LUT_LEN {
            // One codebook per (geometry, scale); per-tensor scales repeat
            // across calls (calibrated activations), so the cache pays off.
            Backend::Lut(lut::cached(
                LutKey::Uniform {
                    n: self.n,
                    scale_bits: scale.to_bits(),
                },
                |v| (self.quantize_level(scale, v) as f64 * scale) as f32,
            ))
        } else {
            Backend::UniformScalar { fmt: *self, scale }
        };
        QuantPlan::new(self.n, PlanParams::Uniform { scale }, backend)
    }

    fn is_adaptive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms_error;

    #[test]
    fn extremes_are_exact() {
        let fmt = Uniform::new(8).unwrap();
        let q = fmt.quantize_slice(&[5.0, -5.0, 0.0]);
        assert_eq!(q, vec![5.0, -5.0, 0.0]);
    }

    #[test]
    fn step_size_matches_formula() {
        let fmt = Uniform::new(8).unwrap();
        // max 127 → scale exactly 1.0.
        let q = fmt.quantize_slice(&[127.0, 3.4, -2.6]);
        assert_eq!(q, vec![127.0, 3.0, -3.0]);
    }

    #[test]
    fn equal_steps_everywhere() {
        let fmt = Uniform::new(6).unwrap();
        let (scale, _) = fmt.quantize_levels(&[1.0]);
        let data = [0.9f32, 0.5, 0.1, 0.01];
        let q = fmt.quantize_with_scale(scale, &data);
        for (&orig, &quant) in data.iter().zip(&q) {
            assert!(((orig - quant).abs() as f64) <= scale / 2.0 + 1e-9);
        }
    }

    #[test]
    fn wide_distribution_wastes_levels() {
        // One outlier at 100 forces a coarse grid: values below scale/2
        // vanish. This is the paper's motivation for format comparison.
        let fmt = Uniform::new(4).unwrap();
        let data = [100.0f32, 0.3, -0.2, 5.0];
        let q = fmt.quantize_slice(&data);
        assert_eq!(q[1], 0.0);
        assert_eq!(q[2], 0.0);
    }

    #[test]
    fn four_bit_has_15_levels() {
        let fmt = Uniform::new(4).unwrap();
        assert_eq!(fmt.q_max(), 7);
    }

    #[test]
    fn all_zero_tensor() {
        let fmt = Uniform::new(8).unwrap();
        assert_eq!(fmt.quantize_slice(&[0.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn idempotent() {
        let fmt = Uniform::new(5).unwrap();
        let data: Vec<f32> = (-30..30).map(|i| i as f32 * 0.21).collect();
        let q1 = fmt.quantize_slice(&data);
        let q2 = fmt.quantize_slice(&q1);
        assert_eq!(q1, q2);
    }

    #[test]
    fn more_bits_lower_error() {
        let data: Vec<f32> = (0..512)
            .map(|i| ((i * 37) % 101) as f32 * 0.07 - 3.5)
            .collect();
        let e4 = rms_error(&data, &Uniform::new(4).unwrap().quantize_slice(&data));
        let e8 = rms_error(&data, &Uniform::new(8).unwrap().quantize_slice(&data));
        assert!(e8 < e4);
    }

    #[test]
    fn nan_to_zero() {
        let fmt = Uniform::new(8).unwrap();
        let q = fmt.quantize_slice(&[1.0, f32::NAN]);
        assert_eq!(q[1], 0.0);
    }
}
