//! Exponent-width search.
//!
//! The paper: *"The number of exponent bits in the AdaptivFloat,
//! IEEE-like float, and posit formats is set evenly for all the layers in
//! the network to the value yielding the highest inference accuracy after
//! doing a search on the exponent width."* This module provides that
//! search with RMS error as the (task-free) objective, over one tensor or
//! a whole set of layers.

use crate::adaptiv::AdaptivFloat;
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::ieee_like::IeeeLikeFloat;
use crate::metrics::rms_error;
use crate::plan::QuantStats;
use crate::posit::Posit;

/// The outcome of an exponent-width search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentSearch {
    /// The winning exponent width (or `es` for posit).
    pub best_e: u32,
    /// The mean RMS error achieved by the winner.
    pub best_rms: f64,
    /// Every candidate with its mean RMS error, ascending in `e`.
    pub candidates: Vec<(u32, f64)>,
}

fn search<F>(
    n: u32,
    e_range: impl Iterator<Item = u32>,
    layers: &[&[f32]],
    build: F,
) -> Result<ExponentSearch, FormatError>
where
    F: Fn(u32, u32) -> Result<Box<dyn NumberFormat>, FormatError>,
{
    // Scan each layer once; every candidate geometry then scores through
    // a frozen plan into one shared scratch buffer (no per-candidate
    // parameter re-derivation, no per-candidate allocation).
    let stats: Vec<QuantStats> = layers.iter().map(|w| QuantStats::from_slice(w)).collect();
    let mut scratch = vec![0.0f32; layers.iter().map(|w| w.len()).max().unwrap_or(0)];
    let mut candidates = Vec::new();
    for e in e_range {
        let fmt = match build(n, e) {
            Ok(f) => f,
            Err(_) => continue, // geometry impossible at this width
        };
        let mut total = 0.0f64;
        for (w, s) in layers.iter().zip(&stats) {
            let dst = &mut scratch[..w.len()];
            fmt.plan(s).execute_into(w, dst);
            total += rms_error(w, dst);
        }
        candidates.push((e, total / layers.len().max(1) as f64));
    }
    let best = candidates
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite rms"))
        .copied()
        .ok_or(FormatError::InvalidBits {
            n,
            e: 0,
            reason: "no feasible exponent width",
        })?;
    Ok(ExponentSearch {
        best_e: best.0,
        best_rms: best.1,
        candidates,
    })
}

/// Search the best AdaptivFloat exponent width at word size `n` for a set
/// of layers (mean per-layer RMS objective).
///
/// # Errors
///
/// Returns [`FormatError::InvalidBits`] if no exponent width is feasible.
///
/// # Examples
///
/// ```
/// use adaptivfloat::search::search_adaptivfloat_exponent;
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let layer: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
/// let result = search_adaptivfloat_exponent(8, &[&layer])?;
/// assert!(result.best_e >= 1);
/// # Ok(())
/// # }
/// ```
pub fn search_adaptivfloat_exponent(
    n: u32,
    layers: &[&[f32]],
) -> Result<ExponentSearch, FormatError> {
    search(n, 1..n, layers, |n, e| {
        Ok(Box::new(AdaptivFloat::new(n, e)?) as Box<dyn NumberFormat>)
    })
}

/// Search the best IEEE-like float exponent width at word size `n`.
///
/// # Errors
///
/// Returns [`FormatError::InvalidBits`] if no exponent width is feasible.
pub fn search_float_exponent(n: u32, layers: &[&[f32]]) -> Result<ExponentSearch, FormatError> {
    search(n, 1..n, layers, |n, e| {
        Ok(Box::new(IeeeLikeFloat::new(n, e)?) as Box<dyn NumberFormat>)
    })
}

/// Search the best posit `es` at word size `n`.
///
/// # Errors
///
/// Returns [`FormatError::InvalidBits`] if no `es` is feasible.
pub fn search_posit_es(n: u32, layers: &[&[f32]]) -> Result<ExponentSearch, FormatError> {
    search(n, 0..=4, layers, |n, es| {
        Ok(Box::new(Posit::new(n, es)?) as Box<dyn NumberFormat>)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_ish(scale: f32) -> Vec<f32> {
        (0..2048)
            .map(|i| {
                let x = (i as f32 * 0.37).sin() + (i as f32 * 0.11).cos();
                x * scale
            })
            .collect()
    }

    #[test]
    fn adaptivfloat_search_returns_feasible_best() {
        let layer = gaussian_ish(0.5);
        let r = search_adaptivfloat_exponent(8, &[&layer]).unwrap();
        assert!((1..8).contains(&r.best_e));
        assert_eq!(r.candidates.len(), 7);
        // The winner really is the minimum.
        for &(_, rms) in &r.candidates {
            assert!(r.best_rms <= rms);
        }
    }

    #[test]
    fn narrow_data_prefers_fewer_exponent_bits() {
        // A tight unimodal distribution wants mantissa precision, not
        // range: the best e should be small-to-moderate.
        let layer = gaussian_ish(0.1);
        let r = search_adaptivfloat_exponent(8, &[&layer]).unwrap();
        assert!(r.best_e <= 3, "best_e {}", r.best_e);
    }

    #[test]
    fn multi_scale_layers_prefer_more_exponent_bits_than_single() {
        // Mixed magnitudes across layers push the preferred width up or
        // keep it equal — never down.
        let narrow = gaussian_ish(0.1);
        let r1 = search_adaptivfloat_exponent(6, &[&narrow]).unwrap();
        let wide: Vec<f32> = gaussian_ish(0.1)
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 50 == 0 { v * 100.0 } else { v })
            .collect();
        let r2 = search_adaptivfloat_exponent(6, &[&wide]).unwrap();
        assert!(r2.best_e >= r1.best_e, "{} vs {}", r2.best_e, r1.best_e);
    }

    #[test]
    fn posit_search_range() {
        let layer = gaussian_ish(1.0);
        let r = search_posit_es(8, &[&layer]).unwrap();
        assert!(r.best_e <= 2, "es {}", r.best_e);
    }

    #[test]
    fn float_search_works() {
        let layer = gaussian_ish(0.5);
        let r = search_float_exponent(8, &[&layer]).unwrap();
        assert!((1..8).contains(&r.best_e));
    }

    #[test]
    fn empty_layer_set_is_benign() {
        // Zero layers → all candidates have rms 0; the search still
        // returns a feasible width.
        let r = search_adaptivfloat_exponent(8, &[]).unwrap();
        assert_eq!(r.best_rms, 0.0);
    }
}
