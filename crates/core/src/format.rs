//! The [`NumberFormat`] trait and the [`FormatKind`] selector used by the
//! paper's format sweeps.

use crate::error::FormatError;
use crate::plan::{QuantPlan, QuantStats};
use crate::{AdaptivFloat, BlockFloat, IeeeLikeFloat, Posit, Uniform};

/// A lossy numerical encoding that can quantize a tensor of `f32` values.
///
/// Adaptive formats (AdaptivFloat, block floating-point, uniform) derive
/// their scaling parameters from the data they are given — mirroring the
/// paper's layer-granularity adaptation. Non-adaptive formats (IEEE-like
/// float, posit) ignore the data statistics.
///
/// The trait is structured around the plan/execute split: every format
/// implements [`plan`](NumberFormat::plan), which freezes its per-tensor
/// parameters from a [`QuantStats`] scan into a reusable [`QuantPlan`];
/// the quantize methods below are thin wrappers over plan + execute, so
/// every call site — fused or planned — goes through the same backends
/// and produces bit-identical results.
///
/// # Examples
///
/// ```
/// use adaptivfloat::{NumberFormat, Uniform};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = Uniform::new(8)?;
/// let q = fmt.quantize_slice(&[0.5, -0.25, 1.0]);
/// assert!((q[2] - 1.0).abs() < 1e-2);
/// # Ok(())
/// # }
/// ```
pub trait NumberFormat: Send + Sync + std::fmt::Debug {
    /// Short human-readable name, e.g. `"AdaptivFloat<8,3>"`.
    fn name(&self) -> String;

    /// Total word size in bits (including the sign bit).
    fn bits(&self) -> u32;

    /// Freeze the per-tensor quantization parameters derived from `stats`
    /// (Algorithm 1, step 1 — generalized to every format) into a
    /// [`QuantPlan`], picking the execution backend once from the format
    /// geometry and tensor length. The plan can then be executed
    /// allocation-free any number of times.
    fn plan(&self, stats: &QuantStats) -> QuantPlan;

    /// Quantize every element of `data`, returning the *dequantized*
    /// (reconstructed) values. The output has the same length as `data`.
    ///
    /// Non-finite inputs are mapped deterministically: NaN becomes `0.0`
    /// and ±∞ saturates to the format's extremes; use
    /// [`try_quantize_slice`](NumberFormat::try_quantize_slice) to reject
    /// them instead.
    ///
    /// This is the plan/execute pipeline fused into one call: scan,
    /// [`plan`](NumberFormat::plan), execute into a fresh vector.
    fn quantize_slice(&self, data: &[f32]) -> Vec<f32> {
        self.plan(&QuantStats::from_slice(data)).execute(data)
    }

    /// Quantize, rejecting non-finite inputs.
    ///
    /// The non-finite check rides the planning scan (a [`QuantStats`]
    /// pass records the first non-finite index while reducing max-abs),
    /// so the strict path traverses the data once before quantizing.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::NonFinite`] if any element is NaN or ±∞.
    fn try_quantize_slice(&self, data: &[f32]) -> Result<Vec<f32>, FormatError> {
        let stats = QuantStats::from_slice(data);
        if let Some(index) = stats.first_non_finite() {
            return Err(FormatError::NonFinite { index });
        }
        Ok(self.plan(&stats).execute(data))
    }

    /// Whether the format adapts its parameters to the data distribution.
    fn is_adaptive(&self) -> bool;

    /// Quantize under parameters derived from a *calibrated* maximum
    /// magnitude instead of the data's own maximum.
    ///
    /// This is how the paper quantizes activations: the per-layer range is
    /// "informed from statistics during offline batch inference", then held
    /// fixed at run time. Non-adaptive formats ignore `max_abs`.
    fn quantize_slice_with_max(&self, max_abs: f32, data: &[f32]) -> Vec<f32> {
        self.plan(&QuantStats::calibrated_with_len(max_abs, data.len()))
            .execute(data)
    }

    /// Pre-build any LUT codebooks the format would otherwise compile
    /// lazily on its first quantize call at calibrated range `max_abs`
    /// (the serving registry calls this at model-load time so the first
    /// request never pays the build, nor the cache's write lock).
    ///
    /// Building a calibrated plan *is* the prewarm: a codebook-backed
    /// plan resolves (and, on a miss, builds) its LUT handle at plan
    /// time. Returns `true` if the format has a codebook path and it is
    /// now warm; `false` for formats with no codebook (e.g. AdaptivFloat's
    /// bit-twiddled kernel, which has no cached state).
    fn prewarm_codebooks(&self, max_abs: f32) -> bool {
        self.plan(&QuantStats::calibrated(max_abs)).uses_codebook()
    }
}

/// The five format families compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FormatKind {
    /// Non-adaptive IEEE-like miniature float.
    Float,
    /// Block floating-point with a per-tensor shared exponent.
    Bfp,
    /// Symmetric uniform (integer) quantization.
    Uniform,
    /// Posit tapered-precision format.
    Posit,
    /// The paper's AdaptivFloat format.
    AdaptivFloat,
}

impl FormatKind {
    /// All kinds, in the column order used by the paper's tables.
    pub const ALL: [FormatKind; 5] = [
        FormatKind::Float,
        FormatKind::Bfp,
        FormatKind::Uniform,
        FormatKind::Posit,
        FormatKind::AdaptivFloat,
    ];

    /// Construct the format at word size `n` with the per-kind field split
    /// the paper found best: 3 exponent bits for AdaptivFloat, 4 for float
    /// (3 when `n == 4`), and `es = 1` for posit (`es = 0` when `n == 4`).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] if `n` is too small for the
    /// kind's field split (all kinds need `n >= 4`; AdaptivFloat at the
    /// paper split needs `n >= 4` so the mantissa is non-negative).
    ///
    /// # Examples
    ///
    /// ```
    /// use adaptivfloat::FormatKind;
    ///
    /// # fn main() -> Result<(), adaptivfloat::FormatError> {
    /// let fmt = FormatKind::AdaptivFloat.build(8)?;
    /// assert_eq!(fmt.bits(), 8);
    /// assert!(fmt.is_adaptive());
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(self, n: u32) -> Result<Box<dyn NumberFormat>, FormatError> {
        Ok(match self {
            FormatKind::Float => {
                let e = if n <= 4 { 3 } else { 4 };
                Box::new(IeeeLikeFloat::new(n, e)?)
            }
            FormatKind::Bfp => Box::new(BlockFloat::new(n)?),
            FormatKind::Uniform => Box::new(Uniform::new(n)?),
            FormatKind::Posit => {
                let es = if n <= 4 { 0 } else { 1 };
                Box::new(Posit::new(n, es)?)
            }
            // The paper keeps 3 exponent bits even at n = 4 (the mantissa
            // field vanishes; the implied one remains).
            FormatKind::AdaptivFloat => Box::new(AdaptivFloat::new(n, 3.min(n - 1))?),
        })
    }

    /// Column label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Float => "Float",
            FormatKind::Bfp => "BFP",
            FormatKind::Uniform => "Uniform",
            FormatKind::Posit => "Posit",
            FormatKind::AdaptivFloat => "AdaptivFloat",
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_kinds_at_paper_bit_widths() {
        for kind in FormatKind::ALL {
            for n in [4, 5, 6, 7, 8, 16] {
                let fmt = kind.build(n).unwrap();
                assert_eq!(fmt.bits(), n, "{kind} at {n} bits");
            }
        }
    }

    #[test]
    fn adaptive_flags_match_paper_taxonomy() {
        // The paper calls AdaptivFloat, uniform and BFP "self-adaptive";
        // float and posit are non-adaptive.
        assert!(FormatKind::AdaptivFloat.build(8).unwrap().is_adaptive());
        assert!(FormatKind::Uniform.build(8).unwrap().is_adaptive());
        assert!(FormatKind::Bfp.build(8).unwrap().is_adaptive());
        assert!(!FormatKind::Float.build(8).unwrap().is_adaptive());
        assert!(!FormatKind::Posit.build(8).unwrap().is_adaptive());
    }

    #[test]
    fn try_quantize_rejects_nan() {
        let fmt = FormatKind::AdaptivFloat.build(8).unwrap();
        let err = fmt.try_quantize_slice(&[1.0, f32::NAN]).unwrap_err();
        assert_eq!(err, FormatError::NonFinite { index: 1 });
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(FormatKind::Bfp.to_string(), "BFP");
        assert_eq!(FormatKind::AdaptivFloat.to_string(), "AdaptivFloat");
    }
}
