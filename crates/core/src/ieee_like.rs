//! A non-adaptive IEEE-754-style miniature float `<n, e>` with subnormals.
//!
//! This is the "Float" column of the paper's tables: a fixed exponent bias
//! `2^(e−1) − 1`, subnormal numbers at the bottom of the range, and — as is
//! customary in DNN quantization studies — **no Inf/NaN encodings**: the
//! all-ones exponent field is an ordinary top binade and out-of-range
//! values saturate.

use crate::decode::{DecodePolicy, DecodeStats};
use crate::error::FormatError;
use crate::format::NumberFormat;
use crate::util::{exp2, floor_log2};

/// IEEE-like float format descriptor.
///
/// # Examples
///
/// ```
/// use adaptivfloat::{IeeeLikeFloat, NumberFormat};
///
/// # fn main() -> Result<(), adaptivfloat::FormatError> {
/// let fmt = IeeeLikeFloat::new(8, 4)?;
/// // 1.0 is exactly representable in any float format.
/// assert_eq!(fmt.quantize_slice(&[1.0])[0], 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IeeeLikeFloat {
    n: u32,
    e: u32,
}

impl IeeeLikeFloat {
    /// Create an IEEE-like `<n, e>` float.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBits`] unless `1 ≤ e ≤ n − 1` and
    /// `2 ≤ n ≤ 32`.
    pub fn new(n: u32, e: u32) -> Result<Self, FormatError> {
        if !(2..=32).contains(&n) {
            return Err(FormatError::InvalidBits {
                n,
                e,
                reason: "word size must be between 2 and 32 bits",
            });
        }
        if e == 0 || e > n - 1 {
            return Err(FormatError::InvalidBits {
                n,
                e,
                reason: "need 1 <= e <= n - 1 (sign bit plus exponent field)",
            });
        }
        Ok(IeeeLikeFloat { n, e })
    }

    /// Word size in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Exponent field width in bits.
    pub fn e(&self) -> u32 {
        self.e
    }

    /// Mantissa field width, `n − e − 1`.
    pub fn mantissa_bits(&self) -> u32 {
        self.n - self.e - 1
    }

    /// The fixed IEEE exponent bias, `2^(e−1) − 1`.
    pub fn bias(&self) -> i32 {
        (1i32 << (self.e - 1)) - 1
    }

    /// Largest representable magnitude: `2^(emax) · (2 − 2^−m)` where
    /// `emax = (2^e − 1) − bias` (no Inf encoding — the top binade is
    /// ordinary).
    pub fn value_max(&self) -> f64 {
        let m = self.mantissa_bits();
        let emax = ((1i32 << self.e) - 1) - self.bias();
        exp2(emax) * (2.0 - exp2(-(m as i32)))
    }

    /// Smallest positive *subnormal* magnitude: `2^(1−bias) · 2^−m`.
    pub fn value_min_subnormal(&self) -> f64 {
        let m = self.mantissa_bits();
        exp2(1 - self.bias() - m as i32)
    }

    /// Quantize one value with round-to-nearest (ties away from zero),
    /// saturating at [`value_max`](Self::value_max). NaN maps to `0.0`.
    pub fn quantize_value(&self, v: f32) -> f32 {
        if v.is_nan() {
            return 0.0;
        }
        let sign = if v.is_sign_negative() { -1.0f64 } else { 1.0 };
        let a = v.abs() as f64;
        if a == 0.0 {
            return 0.0;
        }
        let vmax = self.value_max();
        if a >= vmax {
            return (sign * vmax) as f32;
        }
        let m = self.mantissa_bits();
        let min_normal_exp = 1 - self.bias();
        let exp = floor_log2(a);
        if exp < min_normal_exp {
            // Subnormal region: a fixed grid with step 2^(min_exp − m).
            let step = exp2(min_normal_exp - m as i32);
            let q = (a / step).round() * step;
            return (sign * q) as f32;
        }
        let scale = exp2(m as i32);
        let mant = a / exp2(exp);
        let mut q = (mant * scale).round() / scale;
        let mut exp = exp;
        if q >= 2.0 {
            exp += 1;
            q = 1.0;
        }
        let emax = ((1i32 << self.e) - 1) - self.bias();
        if exp > emax {
            return (sign * vmax) as f32;
        }
        (sign * exp2(exp) * q) as f32
    }

    /// Encode a value to its `n`-bit pattern (quantizing first).
    pub fn encode(&self, v: f32) -> u32 {
        let q = self.quantize_value(v);
        let m = self.mantissa_bits();
        let sign_bit = u32::from(q.is_sign_negative() && q != 0.0);
        if q == 0.0 {
            return sign_bit << (self.n - 1);
        }
        let a = q.abs() as f64;
        let min_normal_exp = 1 - self.bias();
        let exp = floor_log2(a);
        let (exp_field, mant_field) = if exp < min_normal_exp {
            // Subnormal: exponent field 0, mantissa is the step count.
            let step = exp2(min_normal_exp - m as i32);
            (0u32, (a / step).round() as u32)
        } else {
            let mant = a / exp2(exp);
            (
                (exp + self.bias()) as u32,
                ((mant - 1.0) * exp2(m as i32)).round() as u32,
            )
        };
        (sign_bit << (self.n - 1)) | (exp_field << m) | mant_field
    }

    /// Decode an `n`-bit pattern.
    pub fn decode(&self, bits: u32) -> f32 {
        let m = self.mantissa_bits();
        let sign_bit = (bits >> (self.n - 1)) & 1;
        let exp_field = (bits >> m) & ((1 << self.e) - 1);
        let mant_field = bits & ((1u32 << m) - 1);
        let sign = if sign_bit == 1 { -1.0f64 } else { 1.0 };
        let v = if exp_field == 0 {
            // Subnormal (or zero when the mantissa is also zero).
            exp2(1 - self.bias() - m as i32) * mant_field as f64
        } else {
            let exp = exp_field as i32 - self.bias();
            exp2(exp) * (1.0 + mant_field as f64 / exp2(m as i32))
        };
        (sign * v) as f32
    }

    /// Decode an `n`-bit pattern under a [`DecodePolicy`].
    ///
    /// Every bit pattern of this format decodes to a finite in-range
    /// value (there are no Inf/NaN encodings), so hardening never alters
    /// the value — but the decode is still counted in `stats`, keeping
    /// campaign denominators comparable across formats.
    pub fn decode_with_policy(
        &self,
        bits: u32,
        policy: DecodePolicy,
        stats: &mut DecodeStats,
    ) -> f32 {
        let v = self.decode(bits);
        stats.guard(policy, self.value_max() as f32, v)
    }

    /// Enumerate all representable values, sorted ascending (±0 collapse).
    pub fn representable_values(&self) -> Vec<f32> {
        let mut vals: Vec<f32> = (0u32..(1 << self.n))
            .map(|code| self.decode(code))
            .map(|v| if v == 0.0 { 0.0 } else { v })
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        vals.dedup();
        vals
    }
}

impl NumberFormat for IeeeLikeFloat {
    fn name(&self) -> String {
        format!("Float<{},{}>", self.n, self.e)
    }

    fn bits(&self) -> u32 {
        self.n
    }

    fn plan(&self, stats: &crate::plan::QuantStats) -> crate::plan::QuantPlan {
        use crate::lut::{self, LutKey};
        use crate::plan::{Backend, PlanParams, QuantPlan};
        let backend = if self.n <= lut::MAX_LUT_BITS && stats.len() >= lut::MIN_LUT_LEN {
            // The grid is static per geometry: compile the scalar
            // quantizer to a codebook once and reuse it process-wide.
            Backend::Lut(lut::cached(
                LutKey::Ieee {
                    n: self.n,
                    e: self.e,
                },
                |v| self.quantize_value(v),
            ))
        } else {
            Backend::IeeeScalar(*self)
        };
        QuantPlan::new(self.n, PlanParams::Static, backend)
    }

    fn is_adaptive(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp8_e4m3_like_extremes() {
        // <8,4>: bias 7, emax = 15 − 7 = 8, vmax = 2^8 · (2 − 2^−3) = 480.
        let fmt = IeeeLikeFloat::new(8, 4).unwrap();
        assert_eq!(fmt.bias(), 7);
        assert_eq!(fmt.value_max(), 480.0);
        // Smallest subnormal: 2^(1−7−3) = 2^−9.
        assert_eq!(fmt.value_min_subnormal(), exp2(-9));
    }

    #[test]
    fn subnormals_are_representable() {
        let fmt = IeeeLikeFloat::new(8, 4).unwrap();
        let sub = exp2(-9) as f32; // smallest subnormal
        assert_eq!(fmt.quantize_value(sub), sub);
        assert_eq!(fmt.quantize_value(sub * 3.0), sub * 3.0);
        // Half the smallest subnormal rounds to... its nearest grid point.
        let half = sub * 0.5;
        let q = fmt.quantize_value(half);
        assert!(q == 0.0 || q == sub);
    }

    #[test]
    fn saturates_no_infinity() {
        let fmt = IeeeLikeFloat::new(8, 4).unwrap();
        assert_eq!(fmt.quantize_value(1e10), 480.0);
        assert_eq!(fmt.quantize_value(f32::INFINITY), 480.0);
        assert_eq!(fmt.quantize_value(f32::NEG_INFINITY), -480.0);
        assert_eq!(fmt.quantize_value(f32::NAN), 0.0);
    }

    #[test]
    fn roundtrip_all_codes() {
        for (n, e) in [(4, 3), (6, 3), (8, 4), (8, 3), (7, 4)] {
            let fmt = IeeeLikeFloat::new(n, e).unwrap();
            for code in 0..(1u32 << n) {
                let v = fmt.decode(code);
                let q = fmt.quantize_value(v);
                assert_eq!(q, v, "n={n} e={e} code={code:#x} not a fixed point");
                let re = fmt.encode(v);
                assert_eq!(fmt.decode(re), v, "n={n} e={e} code={code:#x}");
            }
        }
    }

    #[test]
    fn representable_count() {
        // 2^n codes, ±0 collapse → 2^n − 1 distinct values.
        let fmt = IeeeLikeFloat::new(6, 3).unwrap();
        assert_eq!(fmt.representable_values().len(), 63);
    }

    #[test]
    fn quantization_is_nearest() {
        let fmt = IeeeLikeFloat::new(6, 3).unwrap();
        let grid = fmt.representable_values();
        let mut x = -9.0f32;
        while x < 9.0 {
            let q = fmt.quantize_value(x);
            let best = grid
                .iter()
                .map(|&g| (x - g).abs())
                .fold(f32::INFINITY, f32::min);
            assert!(
                (x - q).abs() <= best * (1.0 + 1e-6) + 1e-9,
                "x={x} q={q} best={best}"
            );
            x += 0.0137;
        }
    }

    #[test]
    fn fixed_range_is_static() {
        // The motivating contrast with AdaptivFloat: the range is fixed by
        // the geometry alone. <8,3> tops out at 2^4·(2−2^−4) = 31 no
        // matter the data, and narrow-range data wastes the top binades.
        let fmt = IeeeLikeFloat::new(8, 3).unwrap();
        assert_eq!(fmt.value_max(), 31.0);
        assert_eq!(fmt.quantize_value(20.41), 20.0);
        // A 6-bit variant (vmax = 2^4·1.75 = 28) clamps 30.0.
        let small = IeeeLikeFloat::new(6, 3).unwrap();
        assert_eq!(small.quantize_value(30.0), small.value_max() as f32);
    }

    #[test]
    fn geometry_validation() {
        assert!(IeeeLikeFloat::new(8, 0).is_err());
        assert!(IeeeLikeFloat::new(8, 8).is_err());
        assert!(IeeeLikeFloat::new(1, 1).is_err());
    }
}
