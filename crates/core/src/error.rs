//! Error types for format construction and quantization.

use std::error::Error;
use std::fmt;

/// Error returned when a number format cannot be constructed or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// The requested bit allocation is impossible, e.g. more exponent bits
    /// than the word can hold once the sign bit is accounted for.
    InvalidBits {
        /// Total word size requested.
        n: u32,
        /// Exponent (or `es`, or fractional) bits requested.
        e: u32,
        /// Human-readable explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// The input slice contained a NaN or infinity where a finite value was
    /// required by a checked API.
    NonFinite {
        /// Index of the first offending element.
        index: usize,
    },
    /// The input tensor was empty but the operation needs at least one
    /// element (e.g. to derive an exponent bias).
    EmptyTensor,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::InvalidBits { n, e, reason } => {
                write!(f, "invalid bit allocation n={n}, e={e}: {reason}")
            }
            FormatError::NonFinite { index } => {
                write!(f, "non-finite value at index {index}")
            }
            FormatError::EmptyTensor => write!(f, "empty tensor"),
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = FormatError::InvalidBits {
            n: 4,
            e: 9,
            reason: "exponent field exceeds word",
        };
        let msg = err.to_string();
        assert!(msg.contains("n=4"));
        assert!(msg.contains("e=9"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FormatError>();
    }

    #[test]
    fn non_finite_reports_index() {
        let err = FormatError::NonFinite { index: 7 };
        assert!(err.to_string().contains('7'));
    }
}
